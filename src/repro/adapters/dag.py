"""A Parsl/Dask-flavoured DAG layer over the TaskVine manager.

The paper (§6) prototypes running Parsl and Dask workflows "by simply
mapping each high-level task into one low-level TaskVine task".  This
adapter is that mapping: applications compose Python functions into a
graph of :class:`NodeFuture` values; each node becomes a
:class:`~repro.core.task.PythonTask` whose upstream results are
delivered as arguments, and the graph executes with maximum available
parallelism as dependencies resolve.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.core.manager import Manager
from repro.core.task import PythonTask, TaskState

__all__ = ["TaskGraph", "NodeFuture", "GraphError"]


class GraphError(RuntimeError):
    """A node failed or the graph could not complete."""


class NodeFuture:
    """Handle to one graph node's eventual result."""

    _ids = itertools.count(1)

    def __init__(self, graph: "TaskGraph", func: Callable, args: tuple, kwargs: dict):
        self.node_id = f"n{next(self._ids)}"
        self.graph = graph
        self.func = func
        self.args = args
        self.kwargs = kwargs
        self.task: Optional[PythonTask] = None
        self._value: Any = None
        self._resolved = False
        self._failed: Optional[str] = None

    def dependencies(self) -> list["NodeFuture"]:
        """Upstream futures appearing in this node's arguments."""
        deps = [a for a in self.args if isinstance(a, NodeFuture)]
        deps.extend(v for v in self.kwargs.values() if isinstance(v, NodeFuture))
        return deps

    @property
    def done(self) -> bool:
        """True once the node has a value (or failed)."""
        return self._resolved

    def result(self) -> Any:
        """The node's value; runs the graph if it has not run yet."""
        if not self._resolved:
            self.graph.run()
        if self._failed is not None:
            raise GraphError(f"node {self.node_id} failed: {self._failed}")
        return self._value


class TaskGraph:
    """Build a DAG of Python function calls and execute it on workers.

    Usage::

        g = TaskGraph(manager)
        a = g.add(load, "part1")
        b = g.add(load, "part2")
        total = g.add(combine, a, b)      # futures as arguments
        print(total.result())             # executes the whole graph

    Nodes with no unresolved dependencies are submitted immediately;
    the rest follow as their inputs complete, so independent branches
    run in parallel across the cluster.
    """

    def __init__(self, manager: Manager, task_timeout: float = 300.0):
        self.manager = manager
        self.task_timeout = task_timeout
        self.nodes: dict[str, NodeFuture] = {}
        self._by_task: dict[str, NodeFuture] = {}

    def add(self, func: Callable, *args: Any, **kwargs: Any) -> NodeFuture:
        """Declare one node; futures among the arguments become edges."""
        future = NodeFuture(self, func, args, kwargs)
        for dep in future.dependencies():
            if dep.graph is not self:
                raise GraphError("cannot mix futures from different graphs")
        self.nodes[future.node_id] = future
        return future

    # -- execution ------------------------------------------------------

    def _ready_nodes(self) -> list[NodeFuture]:
        return [
            n
            for n in self.nodes.values()
            if n.task is None
            and not n._resolved
            and all(d._resolved and d._failed is None for d in n.dependencies())
        ]

    def _submit(self, node: NodeFuture) -> None:
        args = tuple(
            a._value if isinstance(a, NodeFuture) else a for a in node.args
        )
        kwargs = {
            k: (v._value if isinstance(v, NodeFuture) else v)
            for k, v in node.kwargs.items()
        }
        node.task = PythonTask(node.func, *args, **kwargs)
        node.task.set_category("dag")
        self.manager.submit(node.task)
        self._by_task[node.task.task_id] = node

    def run(self) -> None:
        """Execute until every node resolves; raises on stalls.

        Failed nodes mark their downstream subgraph failed, but
        independent branches still complete — matching how dynamic
        workflow systems handle partial failure.
        """
        for node in self._ready_nodes():
            self._submit(node)
        outstanding = len(self._by_task)
        while outstanding > 0:
            task = self.manager.wait(timeout=self.task_timeout)
            if task is None:
                raise GraphError(
                    f"graph stalled waiting on {outstanding} running node(s)"
                )
            node = self._by_task.get(task.task_id)
            if node is None:
                continue  # a non-graph task owned by the caller
            outstanding -= 1
            self._collect(node, task)
            for ready in self._ready_nodes():
                self._submit(ready)
                outstanding += 1
        # anything never submitted is downstream of a failure
        for node in self.nodes.values():
            if not node._resolved and node.task is None:
                node._resolved = True
                node._failed = "upstream dependency failed"

    def _collect(self, node: NodeFuture, task: PythonTask) -> None:
        node._resolved = True
        if task.state != TaskState.DONE:
            node._failed = (task.result.failure if task.result else None) or "task failed"
            return
        value = task.output()
        if isinstance(value, BaseException):
            node._failed = repr(value)
            return
        node._value = value

    def results(self) -> dict[str, Any]:
        """Run the graph and return {node_id: value} for successful nodes."""
        self.run()
        return {
            nid: n._value
            for nid, n in self.nodes.items()
            if n._resolved and n._failed is None
        }
