"""Automatic serverless transformation of repeated function calls.

The paper's future work (§6): "more performance gains are possible when
there is a high degree of similarity in the code and data needs that
can be distributed once and then invoked multiple times.  Future work
will explore the automatic transformation of these workflow models into
serverless-style computations."

:class:`ServerlessMap` implements that transformation: it watches which
functions an application submits, and once a function crosses a
repetition threshold it is compiled into a
:class:`~repro.core.library.Library`, installed on every worker, and
all further submissions of that function become
:class:`~repro.core.library.FunctionCall` tasks — paying interpreter
and import startup once per worker instead of once per task.  Functions
below the threshold keep running as ordinary PythonTasks.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.core.library import FunctionCall
from repro.core.manager import Manager
from repro.core.resources import Resources
from repro.core.task import PythonTask, Task, TaskState

__all__ = ["ServerlessMap", "MapFuture"]


class MapFuture:
    """Result handle for one submitted invocation."""

    def __init__(self, task: Task):
        self.task = task

    @property
    def done(self) -> bool:
        """True once the underlying task reached a terminal state."""
        return self.task.is_done

    def result(self) -> Any:
        """The invocation's return value (task must be complete)."""
        if not self.task.is_done:
            raise RuntimeError("invocation not complete; drain with .wait_all()")
        if self.task.state != TaskState.DONE:
            failure = self.task.result.failure if self.task.result else None
            raise RuntimeError(f"invocation failed: {failure}")
        value = self.task.output()  # PythonTask and FunctionCall both expose it
        if isinstance(value, BaseException):
            raise value
        return value


class ServerlessMap:
    """Adaptive executor: plain tasks below a threshold, serverless above.

    ``threshold`` is the number of submissions of one function after
    which it is promoted into a library.  ``slots`` bounds concurrent
    invocations per worker instance.
    """

    _lib_ids = itertools.count(1)

    def __init__(
        self,
        manager: Manager,
        threshold: int = 3,
        slots: int = 4,
        library_resources: Resources = Resources(cores=1),
    ) -> None:
        self.manager = manager
        self.threshold = max(1, threshold)
        self.slots = slots
        self.library_resources = library_resources
        self._counts: dict[Callable, int] = {}
        self._library_of: dict[Callable, Optional[str]] = {}
        self._futures: list[MapFuture] = []

    # -- submission ------------------------------------------------------

    def submit(self, func: Callable, *args: Any, **kwargs: Any) -> MapFuture:
        """Submit one invocation; the executor picks the execution mode."""
        count = self._counts.get(func, 0) + 1
        self._counts[func] = count
        library = self._library_of.get(func)
        if library is None and count >= self.threshold:
            library = self._promote(func)
        if library is not None:
            task: Task = FunctionCall(library, func.__name__, *args, **kwargs)
        else:
            task = PythonTask(func, *args, **kwargs)
        self.manager.submit(task)
        future = MapFuture(task)
        self._futures.append(future)
        return future

    def map(self, func: Callable, iterable) -> list[MapFuture]:
        """Submit ``func`` over every item; returns futures in order."""
        return [self.submit(func, item) for item in iterable]

    def _promote(self, func: Callable) -> str:
        """Compile ``func`` into a library and install it everywhere."""
        name = f"auto-{func.__name__}-{next(self._lib_ids)}"
        self.manager.create_library(
            name,
            [func],
            resources=self.library_resources,
            function_slots=self.slots,
        )
        self.manager.install_library(name)
        self._library_of[func] = name
        return name

    # -- completion -----------------------------------------------------

    def wait_all(self, timeout: float = 300.0) -> list[MapFuture]:
        """Drain the manager until every submitted invocation completes."""
        self.manager.run_until_done(timeout=timeout)
        return list(self._futures)

    def promoted(self, func: Callable) -> bool:
        """True if ``func`` has been transformed into a library."""
        return self._library_of.get(func) is not None
