"""Higher-level workflow adapters over the TaskVine manager (paper §6)."""

from repro.adapters.dag import GraphError, NodeFuture, TaskGraph
from repro.adapters.serverless import MapFuture, ServerlessMap

__all__ = ["GraphError", "NodeFuture", "TaskGraph", "MapFuture", "ServerlessMap"]

from repro.adapters.histflow import ExecutorReport, HistogramExecutor  # noqa: E402

__all__ += ["ExecutorReport", "HistogramExecutor"]
