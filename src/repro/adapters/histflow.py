"""A Coffea-style executor: columnar analysis over TaskVine.

The paper integrates TaskVine into Coffea as an execution module
("about 1300 lines of Python"), so TopEFT's preprocess/process/
accumulate pipeline runs with partial histograms kept in-cluster.
This adapter is that executor for :mod:`repro.apps.minihist`:

* each event chunk becomes a PythonTask running the processor,
* partial :class:`~repro.apps.minihist.processor.HistogramSet` results
  stay at the workers as TempFiles,
* accumulation tasks merge them up a fan-in tree, and
* only the single final merge is fetched back to the application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.apps.minihist.events import EventBatch, to_bytes
from repro.apps.minihist.processor import HistogramSet
from repro.core.files import File
from repro.core.manager import Manager
from repro.core.task import PythonTask, TaskState

__all__ = ["HistogramExecutor", "ExecutorReport"]


def _default_processor(events_path: str, out_path: str, selection_pt: float) -> int:
    """Worker-side processor: events file → partial histogram file."""
    from repro.apps.minihist import from_bytes, process

    with open(events_path, "rb") as f:
        batch = from_bytes(f.read())
    result = process(batch, selection_pt=selection_pt)
    with open(out_path, "wb") as f:
        f.write(result.to_bytes())
    return result.n_events


def _merge(part_paths: list[str], out_path: str) -> int:
    """Worker-side accumulator: partial files → one merged file."""
    from repro.apps.minihist import HistogramSet, accumulate

    parts = []
    for path in part_paths:
        with open(path, "rb") as f:
            parts.append(HistogramSet.from_bytes(f.read()))
    merged = accumulate(parts)
    with open(out_path, "wb") as f:
        f.write(merged.to_bytes())
    return len(merged.hists)


@dataclass
class ExecutorReport:
    """Outcome of one executor run."""

    result: HistogramSet
    n_process_tasks: int
    n_accumulate_tasks: int
    tree_depth: int
    failed_chunks: list[int]


class HistogramExecutor:
    """Run a columnar histogram analysis on a TaskVine manager.

    ``fan_in`` bounds how many partials one accumulator merges;
    ``processor`` may be replaced with any callable of signature
    ``(events_path, out_path, selection_pt) -> n_events`` — it executes
    at the workers, so it must be self-importing like the default.
    """

    def __init__(
        self,
        manager: Manager,
        fan_in: int = 4,
        selection_pt: float = 25.0,
        processor: Optional[Callable] = None,
        task_timeout: float = 300.0,
    ) -> None:
        if fan_in < 2:
            raise ValueError("fan_in must be at least 2")
        self.manager = manager
        self.fan_in = fan_in
        self.selection_pt = selection_pt
        self.processor = processor or _default_processor
        self.task_timeout = task_timeout

    def run(self, batches: Sequence[EventBatch]) -> ExecutorReport:
        """Process every batch and reduce to one HistogramSet."""
        if not batches:
            return ExecutorReport(HistogramSet(), 0, 0, 0, [])
        m = self.manager
        partials: list[File] = []
        process_tasks: list[tuple[int, PythonTask]] = []
        for i, batch in enumerate(batches):
            events = m.declare_buffer(to_bytes(batch))
            out = m.declare_temp()
            t = PythonTask(
                self.processor, "events.npz", "hists.bin", self.selection_pt
            )
            t.set_category("process")
            t.inputs.append(("events.npz", events))
            t.outputs.insert(0, ("hists.bin", out))
            m.submit(t)
            process_tasks.append((i, t))
            partials.append(out)

        n_accumulate = 0
        depth = 0
        level = partials
        while len(level) > 1:
            depth += 1
            next_level: list[File] = []
            for j in range(0, len(level), self.fan_in):
                group = level[j : j + self.fan_in]
                if len(group) == 1:
                    next_level.append(group[0])
                    continue
                merged = m.declare_temp()
                names = [f"part{k}.bin" for k in range(len(group))]
                t = PythonTask(_merge, names, "merged.bin")
                t.set_category("accumulate")
                for name, part in zip(names, group):
                    t.inputs.append((name, part))
                t.outputs.insert(0, ("merged.bin", merged))
                m.submit(t)
                n_accumulate += 1
                next_level.append(merged)
            level = next_level

        m.run_until_done(timeout=self.task_timeout)
        failed = [i for i, t in process_tasks if t.state != TaskState.DONE]
        final = HistogramSet.from_bytes(m.fetch_bytes(level[0]))
        return ExecutorReport(
            result=final,
            n_process_tasks=len(process_tasks),
            n_accumulate_tasks=n_accumulate,
            tree_depth=depth,
            failed_chunks=failed,
        )
