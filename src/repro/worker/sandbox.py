"""Task sandboxes: private per-task namespaces (paper Fig. 4).

Each task executes in a sandbox directory where every input object is
linked in under the user-visible name the command expects, and from
which declared outputs are harvested into the cache when the task
completes.  The sandbox is deleted afterwards, so the only persistent
data objects are those explicitly extracted from the completed task.

Inputs are hard-linked when possible (same filesystem, regular file)
and symlinked otherwise; either way the cache object is never copied,
which is how concurrent tasks on one worker share immutable inputs at
zero storage cost.
"""

from __future__ import annotations

import os
import shutil
from typing import Iterable

from repro.core.files import CacheLevel
from repro.worker.cache import WorkerCache

__all__ = ["Sandbox", "SandboxError"]


class SandboxError(RuntimeError):
    """Sandbox setup or output harvesting failed."""


class Sandbox:
    """One task's private execution directory."""

    def __init__(self, root: str, task_id: str) -> None:
        self.task_id = task_id
        self.path = os.path.join(os.path.abspath(root), f"sandbox-{task_id}")
        os.makedirs(self.path, exist_ok=True)

    def link_inputs(
        self, cache: WorkerCache, inputs: Iterable[tuple[str, str]]
    ) -> None:
        """Materialize ``(sandbox_name, cache_name)`` pairs inside the sandbox.

        ``sandbox_name`` may contain subdirectories (``data/ref.fa``);
        parents are created.  Raises :class:`SandboxError` if an input
        object is missing from the cache — the manager must never let
        that happen (it dispatches only when inputs are present).
        """
        for sandbox_name, cache_name in inputs:
            if not cache.has(cache_name):
                raise SandboxError(
                    f"input {cache_name} for task {self.task_id} not in cache"
                )
            dest = self._resolve(sandbox_name)
            os.makedirs(os.path.dirname(dest), exist_ok=True)
            src = cache.path_of(cache_name)
            if os.path.isdir(src):
                os.symlink(src, dest)
            else:
                try:
                    os.link(src, dest)
                except OSError:
                    os.symlink(src, dest)

    def harvest_outputs(
        self,
        cache: WorkerCache,
        outputs: Iterable[tuple[str, str, CacheLevel]],
        now: float = 0.0,
    ) -> list[str]:
        """Move declared outputs into the cache; returns cached names.

        Raises :class:`SandboxError` naming the first declared output
        the task failed to produce.
        """
        cached = []
        for sandbox_name, cache_name, level in outputs:
            src = self._resolve(sandbox_name)
            if not os.path.lexists(src):
                raise SandboxError(
                    f"task {self.task_id} did not produce declared output "
                    f"{sandbox_name!r}"
                )
            staged = cache.staging_path(cache_name)
            shutil.move(src, staged)
            cache.insert_from(staged, cache_name, level, now)
            cached.append(cache_name)
        return cached

    def _resolve(self, sandbox_name: str) -> str:
        """Resolve a sandbox-relative name, refusing escapes."""
        dest = os.path.normpath(os.path.join(self.path, sandbox_name))
        if not dest.startswith(self.path + os.sep):
            raise SandboxError(
                f"sandbox name {sandbox_name!r} escapes the sandbox"
            )
        return dest

    def disk_usage(self) -> int:
        """Bytes written inside the sandbox (excluding linked inputs)."""
        total = 0
        for root, _dirs, files in os.walk(self.path):
            for name in files:
                fp = os.path.join(root, name)
                if os.path.islink(fp):
                    continue
                try:
                    st = os.stat(fp)
                except OSError:
                    continue
                if st.st_nlink > 1:
                    continue  # hard-linked input, not task-produced data
                total += st.st_size
        return total

    def destroy(self) -> None:
        """Delete the sandbox and everything left inside it."""
        shutil.rmtree(self.path, ignore_errors=True)
