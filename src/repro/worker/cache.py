"""Worker-side on-disk object cache.

Worker storage is organized as a flat cache of data objects, each with
a unique name assigned by the manager (paper §2.2, Fig. 4).  Objects
may be regular files or directory trees.  A small JSON index records
each object's cache level and size so that ``WORKER``-lifetime objects
survive worker restarts and can serve future workflows, while anything
shorter-lived is discarded on startup.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from dataclasses import dataclass
from repro.core.files import CacheLevel
from repro.core.gc import CacheEntryInfo

__all__ = ["WorkerCache", "CacheEntry"]

_INDEX_NAME = "index.json"


@dataclass
class CacheEntry:
    """Metadata for one cached object."""

    cache_name: str
    size: int
    level: CacheLevel
    last_used: float
    is_dir: bool


def _tree_size(path: str) -> int:
    """Total bytes of a file or directory tree."""
    if not os.path.isdir(path):
        return os.path.getsize(path)
    total = 0
    for root, _dirs, files in os.walk(path):
        for name in files:
            fp = os.path.join(root, name)
            if not os.path.islink(fp):
                total += os.path.getsize(fp)
    return total


class WorkerCache:
    """A directory of cache objects plus a persisted metadata index.

    With a ``metrics`` registry the cache keeps ``cache.objects`` and
    ``cache.bytes`` gauges current, so a metrics snapshot shows cache
    occupancy (and its peak) without walking the disk.
    """

    def __init__(self, root: str, metrics=None) -> None:
        self.root = os.path.abspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        self.staging_dir = os.path.join(self.root, "staging")
        os.makedirs(self.objects_dir, exist_ok=True)
        os.makedirs(self.staging_dir, exist_ok=True)
        self._entries: dict[str, CacheEntry] = {}
        # the worker mutates the cache from its control-message reader
        # thread (unlink, put) and from per-task execution threads
        # (output harvest) concurrently
        self._lock = threading.RLock()
        self._staging_seq = 0
        self._g_objects = metrics.gauge("cache.objects") if metrics else None
        self._g_bytes = metrics.gauge("cache.bytes") if metrics else None
        self._load_index()

    def _sync_metrics(self) -> None:
        if self._g_objects is not None:
            self._g_objects.set(len(self._entries))
            self._g_bytes.set(self.total_bytes())

    # -- index persistence -----------------------------------------------

    def _index_path(self) -> str:
        return os.path.join(self.root, _INDEX_NAME)

    def _load_index(self) -> None:
        """Recover worker-lifetime objects; purge everything else.

        Only ``WORKER``-lifetime entries whose object still exists are
        kept — anything shorter-lived belonged to a finished (or dead)
        workflow and must not pollute future runs.
        """
        index: dict = {}
        try:
            with open(self._index_path()) as f:
                index = json.load(f)
        except (OSError, json.JSONDecodeError):
            index = {}
        for name in os.listdir(self.objects_dir):
            path = os.path.join(self.objects_dir, name)
            meta = index.get(name)
            if meta is not None and meta.get("level") == int(CacheLevel.WORKER):
                self._entries[name] = CacheEntry(
                    cache_name=name,
                    size=int(meta["size"]),
                    level=CacheLevel.WORKER,
                    last_used=float(meta.get("last_used", 0.0)),
                    is_dir=os.path.isdir(path),
                )
            else:
                self._delete_path(path)
        shutil.rmtree(self.staging_dir, ignore_errors=True)
        os.makedirs(self.staging_dir, exist_ok=True)
        self._save_index()
        self._sync_metrics()

    def _save_index(self) -> None:
        with self._lock:
            data = {
                name: {
                    "size": e.size,
                    "level": int(e.level),
                    "last_used": e.last_used,
                }
                for name, e in self._entries.items()
            }
            tmp = self._index_path() + ".tmp"
            with open(tmp, "w") as f:
                json.dump(data, f)
            os.replace(tmp, self._index_path())

    # -- queries ------------------------------------------------------

    def path_of(self, cache_name: str) -> str:
        """Filesystem path where the object lives (whether or not present)."""
        if "/" in cache_name or cache_name in (".", ".."):
            raise ValueError(f"illegal cache name {cache_name!r}")
        return os.path.join(self.objects_dir, cache_name)

    def has(self, cache_name: str) -> bool:
        """True if the object is present."""
        return cache_name in self._entries

    def entry(self, cache_name: str) -> CacheEntry:
        """Metadata for one object (KeyError if absent)."""
        return self._entries[cache_name]

    def entries(self) -> list[CacheEntry]:
        """Snapshot of all entries."""
        return list(self._entries.values())

    def eviction_view(self) -> list[CacheEntryInfo]:
        """Entries in the shape the shared eviction planner expects."""
        return [
            CacheEntryInfo(e.cache_name, e.size, e.level, e.last_used)
            for e in self._entries.values()
        ]

    def total_bytes(self) -> int:
        """Bytes currently cached."""
        return sum(e.size for e in self._entries.values())

    def names(self) -> set[str]:
        """All cached object names."""
        return set(self._entries)

    # -- mutation ---------------------------------------------------------

    def staging_path(self, hint: str) -> str:
        """A fresh path in the staging area for an in-progress download."""
        with self._lock:
            # a process-unique suffix keeps concurrent downloads of the
            # same object from colliding on one in-progress path
            self._staging_seq += 1
            base = os.path.join(
                self.staging_dir, f"{hint.replace('/', '_')}.{self._staging_seq}"
            )
            path, n = base, 0
            while os.path.exists(path):
                n += 1
                path = f"{base}.{n}"
            return path

    def insert_from(
        self, src_path: str, cache_name: str, level: CacheLevel, now: float = 0.0
    ) -> CacheEntry:
        """Move a staged file/directory into the cache under ``cache_name``.

        The source must be on the same filesystem (the staging area
        guarantees this).  Idempotent if the object already exists.
        """
        with self._lock:
            if self.has(cache_name):
                self._delete_path(src_path)
                return self._entries[cache_name]
            dst = self.path_of(cache_name)
            os.replace(src_path, dst) if not os.path.isdir(src_path) else shutil.move(
                src_path, dst
            )
            entry = CacheEntry(
                cache_name=cache_name,
                size=_tree_size(dst),
                level=level,
                last_used=now,
                is_dir=os.path.isdir(dst),
            )
            self._entries[cache_name] = entry
            self._save_index()
            self._sync_metrics()
            return entry

    def insert_bytes(
        self, data: bytes, cache_name: str, level: CacheLevel, now: float = 0.0
    ) -> CacheEntry:
        """Write literal bytes into the cache (buffer files)."""
        staged = self.staging_path(cache_name)
        with open(staged, "wb") as f:
            f.write(data)
        return self.insert_from(staged, cache_name, level, now)

    def touch(self, cache_name: str, now: float) -> None:
        """Record a use for LRU accounting."""
        e = self._entries.get(cache_name)
        if e is not None:
            e.last_used = now

    def remove(self, cache_name: str) -> bool:
        """Delete an object; returns False if it was absent."""
        with self._lock:
            entry = self._entries.pop(cache_name, None)
            if entry is None:
                return False
            self._delete_path(self.path_of(cache_name))
            self._save_index()
            self._sync_metrics()
            return True

    @staticmethod
    def _delete_path(path: str) -> None:
        if os.path.isdir(path) and not os.path.islink(path):
            shutil.rmtree(path, ignore_errors=True)
        elif os.path.lexists(path):
            os.unlink(path)
