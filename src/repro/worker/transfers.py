"""Worker-side data movement: the peer transfer server and fetch client.

Workers can "fetch data from remote data services or from peer
workers" (paper §2.1); transfers are *supervised by the manager* —
a worker only ever fetches what a ``fetch_file`` command told it to,
from the source the manager chose, so the per-source concurrency
limits decided centrally are what actually happens on the wire.

Objects may be files or directory trees; directories travel as tar
streams.  Every peer reply carries an ``md5`` of the bytes the server
holds, which the receiver checks against what actually arrived, so
in-flight corruption is caught for any object; content-named objects
(``file-md5-...``/``buffer-md5-...``) are additionally verified against
the digest embedded in their name, so even a peer serving a wrong (but
self-consistently hashed) object cannot poison a cache.
"""

from __future__ import annotations

import os
import shutil
import tarfile
import tempfile
import threading
import urllib.request
from typing import Callable, Optional

from repro.protocol.connection import Connection, ProtocolError, listen
from repro.protocol.messages import M
from repro.util.hashing import hash_file

__all__ = [
    "PeerTransferServer",
    "fetch_from_peer",
    "fetch_from_url",
    "TransferFailed",
    "CorruptTransfer",
    "verify_content_name",
    "verify_outcome",
]


class TransferFailed(RuntimeError):
    """A commanded transfer could not be completed."""


class CorruptTransfer(TransferFailed):
    """The bytes arrived but failed content verification.

    Distinguished from plain failure so the manager can treat the
    *source's* copy as suspect (corruption is a replica-loss signal,
    not just a flaky link).
    """


def pack_directory(path: str, dest_tar: str) -> None:
    """Pack a directory tree into an uncompressed tar for streaming."""
    with tarfile.open(dest_tar, "w") as tar:
        tar.add(path, arcname=".")


def unpack_directory(tar_path: str, dest_dir: str) -> None:
    """Unpack a directory object received as a tar stream."""
    os.makedirs(dest_dir, exist_ok=True)
    with tarfile.open(tar_path, "r") as tar:
        tar.extractall(dest_dir, filter="data")


def verify_outcome(cache_name: str, path: str) -> str:
    """Verify a received object; returns "passed", "skipped" or "failed".

    Only names of the form ``file-md5-<digest>`` / ``buffer-md5-<digest>``
    embed a content hash; all other names (url-meta, task-spec, random)
    skip verification, as do directory objects, which are trusted from
    their tar (re-deriving a Merkle root is possible but not done on
    the hot path).  The three-way outcome feeds the worker's
    ``verify.*`` counters so a chaos run can tell "nothing was
    checkable" apart from "everything checked out".
    """
    for prefix in ("file-md5-", "buffer-md5-"):
        if cache_name.startswith(prefix):
            if not os.path.isfile(path):
                return "skipped"
            return (
                "passed"
                if hash_file(path) == cache_name[len(prefix):]
                else "failed"
            )
    return "skipped"


def verify_content_name(cache_name: str, path: str) -> bool:
    """True unless the object demonstrably fails content verification."""
    return verify_outcome(cache_name, path) != "failed"


def _corrupted_copy(path: str) -> str:
    """A temp copy of ``path`` with its first byte flipped."""
    fd, tmp = tempfile.mkstemp(suffix=".corrupt")
    os.close(fd)
    shutil.copyfile(path, tmp)
    with open(tmp, "r+b") as fh:
        first = fh.read(1)
        fh.seek(0)
        fh.write(bytes([first[0] ^ 0xFF]) if first else b"\x00")
    return tmp


class PeerTransferServer:
    """Serves this worker's cache objects to peers over TCP.

    One accept loop, one thread per request.  ``lookup`` resolves a
    cache name to a local path (or None); the manager's scheduling
    already throttles how many peers hit us concurrently.
    """

    def __init__(
        self,
        lookup: Callable[[str], Optional[str]],
        host: str = "127.0.0.1",
        metrics=None,
    ):
        self._lookup = lookup
        #: chaos hook: called with each served cache name, may return
        #: "fail" (drop the connection without replying) or "corrupt"
        #: (serve a damaged copy); None/falsy serves faithfully
        self.tamper: Optional[Callable[[str], Optional[str]]] = None
        self._c_serves = metrics.counter("peer.serves") if metrics else None
        self._c_bytes = metrics.counter("peer.bytes_served") if metrics else None
        self._g_open = metrics.gauge("peer.serving") if metrics else None
        self._sock = listen(host, 0)
        self.host, self.port = self._sock.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _ = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(Connection(sock),), daemon=True
            ).start()

    def _count_served(self, size: int) -> None:
        if self._c_serves is not None:
            self._c_serves.inc()
            self._c_bytes.inc(size)

    def _serve(self, conn: Connection) -> None:
        if self._g_open is not None:
            self._g_open.inc()
        try:
            msg = conn.recv_message()
            if msg.get("type") != M.GET:
                conn.send_message({"type": M.FILE_DATA, "cache_name": "", "found": False, "size": 0})
                return
            cache_name = msg["cache_name"]
            path = self._lookup(cache_name)
            if path is None or not os.path.lexists(path):
                conn.send_message(
                    {"type": M.FILE_DATA, "cache_name": cache_name, "found": False, "size": 0}
                )
                return
            verdict = self.tamper(cache_name) if self.tamper is not None else None
            if verdict == "fail":
                return  # injected failure: vanish mid-handshake
            if verdict == "corrupt" and os.path.isfile(path):
                # the reply advertises the digest of the *pristine* copy
                # while damaged bytes flow — exactly what in-transit
                # corruption looks like to the receiver
                tmp = _corrupted_copy(path)
                try:
                    size = os.path.getsize(tmp)
                    conn.send_message(
                        {
                            "type": M.FILE_DATA,
                            "cache_name": cache_name,
                            "found": True,
                            "size": size,
                            "format": "file",
                            "md5": hash_file(path),
                        }
                    )
                    conn.send_file(tmp, size)
                    self._count_served(size)
                finally:
                    os.unlink(tmp)
                return
            if os.path.isdir(path):
                with tempfile.NamedTemporaryFile(suffix=".tar", delete=False) as tf:
                    tar_path = tf.name
                try:
                    pack_directory(path, tar_path)
                    size = os.path.getsize(tar_path)
                    conn.send_message(
                        {
                            "type": M.FILE_DATA,
                            "cache_name": cache_name,
                            "found": True,
                            "size": size,
                            "format": "tar",
                            "md5": hash_file(tar_path),
                        }
                    )
                    conn.send_file(tar_path, size)
                    self._count_served(size)
                finally:
                    os.unlink(tar_path)
            else:
                size = os.path.getsize(path)
                conn.send_message(
                    {
                        "type": M.FILE_DATA,
                        "cache_name": cache_name,
                        "found": True,
                        "size": size,
                        "format": "file",
                        "md5": hash_file(path),
                    }
                )
                conn.send_file(path, size)
                self._count_served(size)
        except (ProtocolError, OSError):
            pass  # peer went away mid-transfer; manager will reschedule
        finally:
            if self._g_open is not None:
                self._g_open.dec()
            conn.close()

    def stop(self) -> None:
        """Shut the server down (idempotent)."""
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass


def fetch_from_peer(
    host: str,
    port: int,
    cache_name: str,
    dest_path: str,
    timeout: float = 60.0,
    on_verify: Optional[Callable[[str], None]] = None,
) -> int:
    """Download one object from a peer worker into ``dest_path``.

    Returns the object's size in bytes.  Directory objects arrive as
    tar and are unpacked at ``dest_path``.  Received bytes are checked
    against the transit digest the peer advertised (any object) and
    against the digest embedded in content-based names; ``on_verify``
    (if given) receives the combined outcome
    ("passed"/"skipped"/"failed").  Raises :class:`CorruptTransfer` on
    any digest mismatch, :class:`TransferFailed` on any other protocol
    error or absence.
    """
    try:
        conn = Connection.connect(host, port, timeout=timeout)
    except OSError as exc:
        raise TransferFailed(f"cannot reach peer {host}:{port}: {exc}") from exc
    try:
        conn.send_message({"type": M.GET, "cache_name": cache_name})
        reply = conn.recv_message()
        if not reply.get("found"):
            raise TransferFailed(f"peer {host}:{port} does not hold {cache_name}")
        size = int(reply["size"])
        transit_md5 = reply.get("md5")
        if reply.get("format") == "tar":
            with tempfile.NamedTemporaryFile(suffix=".tar", delete=False) as tf:
                tar_path = tf.name
            try:
                conn.recv_to_file(tar_path, size)
                if transit_md5 is not None and hash_file(tar_path) != transit_md5:
                    if on_verify is not None:
                        on_verify("failed")
                    raise CorruptTransfer(
                        f"transit verification failed for {cache_name} from peer"
                    )
                unpack_directory(tar_path, dest_path)
            finally:
                os.unlink(tar_path)
            outcome = verify_outcome(cache_name, dest_path)
            if outcome == "skipped" and transit_md5 is not None:
                outcome = "passed"
            if on_verify is not None:
                on_verify(outcome)
        else:
            conn.recv_to_file(dest_path, size)
            outcome = verify_outcome(cache_name, dest_path)
            if transit_md5 is not None:
                if hash_file(dest_path) != transit_md5:
                    outcome = "failed"
                elif outcome == "skipped":
                    outcome = "passed"
            if on_verify is not None:
                on_verify(outcome)
            if outcome == "failed":
                os.unlink(dest_path)
                raise CorruptTransfer(
                    f"content verification failed for {cache_name} from peer"
                )
        return size
    except (ProtocolError, OSError) as exc:
        raise TransferFailed(f"peer transfer of {cache_name} failed: {exc}") from exc
    finally:
        conn.close()


def fetch_from_url(
    url: str,
    dest_path: str,
    timeout: float = 300.0,
    cache_name: Optional[str] = None,
    on_verify: Optional[Callable[[str], None]] = None,
) -> int:
    """Download a URL into ``dest_path``; returns bytes received.

    Supports ``file://`` (the offline archive used in tests/examples)
    and ``http(s)://``.  A local *directory* behind ``file://`` is
    copied recursively, standing in for an archive that serves trees.
    When ``cache_name`` is given, content-named downloads are verified
    like peer transfers (``on_verify`` sees the outcome) and a mismatch
    raises :class:`CorruptTransfer`.
    """
    if url.startswith("file://"):
        src = url[len("file://"):]
        if not os.path.exists(src):
            raise TransferFailed(f"url source missing: {url}")
        if os.path.isdir(src):
            shutil.copytree(src, dest_path)
            size = sum(
                os.path.getsize(os.path.join(r, f))
                for r, _d, fs in os.walk(dest_path)
                for f in fs
            )
        else:
            shutil.copyfile(src, dest_path)
            size = os.path.getsize(dest_path)
    else:
        try:
            with urllib.request.urlopen(url, timeout=timeout) as resp, open(
                dest_path, "wb"
            ) as out:
                shutil.copyfileobj(resp, out)
        except OSError as exc:
            raise TransferFailed(f"url fetch of {url} failed: {exc}") from exc
        size = os.path.getsize(dest_path)
    if cache_name is not None:
        outcome = verify_outcome(cache_name, dest_path)
        if on_verify is not None:
            on_verify(outcome)
        if outcome == "failed":
            if os.path.isfile(dest_path):
                os.unlink(dest_path)
            raise CorruptTransfer(
                f"content verification failed for {cache_name} from {url}"
            )
    return size
