"""Worker-side data movement: the peer transfer server and fetch client.

Workers can "fetch data from remote data services or from peer
workers" (paper §2.1); transfers are *supervised by the manager* —
a worker only ever fetches what a ``fetch_file`` command told it to,
from the source the manager chose, so the per-source concurrency
limits decided centrally are what actually happens on the wire.

Objects may be files or directory trees; directories travel as tar
streams.  Content-named objects (``file-md5-...``/``buffer-md5-...``)
are verified against their embedded digest on receipt, so a corrupt or
malicious peer cannot poison a cache.
"""

from __future__ import annotations

import os
import shutil
import tarfile
import tempfile
import threading
import urllib.request
from typing import Callable, Optional

from repro.protocol.connection import Connection, ProtocolError, listen
from repro.protocol.messages import M
from repro.util.hashing import hash_file

__all__ = [
    "PeerTransferServer",
    "fetch_from_peer",
    "fetch_from_url",
    "TransferFailed",
    "verify_content_name",
]


class TransferFailed(RuntimeError):
    """A commanded transfer could not be completed."""


def pack_directory(path: str, dest_tar: str) -> None:
    """Pack a directory tree into an uncompressed tar for streaming."""
    with tarfile.open(dest_tar, "w") as tar:
        tar.add(path, arcname=".")


def unpack_directory(tar_path: str, dest_dir: str) -> None:
    """Unpack a directory object received as a tar stream."""
    os.makedirs(dest_dir, exist_ok=True)
    with tarfile.open(tar_path, "r") as tar:
        tar.extractall(dest_dir, filter="data")


def verify_content_name(cache_name: str, path: str) -> bool:
    """Check a received *file* object against its content-derived name.

    Only names of the form ``file-md5-<digest>`` / ``buffer-md5-<digest>``
    embed a content hash; all other names (url-meta, task-spec, random)
    vacuously verify.  Directory objects are trusted from their tar
    (re-deriving a Merkle root is possible but not done on the hot path).
    """
    for prefix in ("file-md5-", "buffer-md5-"):
        if cache_name.startswith(prefix) and os.path.isfile(path):
            return hash_file(path) == cache_name[len(prefix):]
    return True


class PeerTransferServer:
    """Serves this worker's cache objects to peers over TCP.

    One accept loop, one thread per request.  ``lookup`` resolves a
    cache name to a local path (or None); the manager's scheduling
    already throttles how many peers hit us concurrently.
    """

    def __init__(
        self,
        lookup: Callable[[str], Optional[str]],
        host: str = "127.0.0.1",
        metrics=None,
    ):
        self._lookup = lookup
        self._c_serves = metrics.counter("peer.serves") if metrics else None
        self._c_bytes = metrics.counter("peer.bytes_served") if metrics else None
        self._g_open = metrics.gauge("peer.serving") if metrics else None
        self._sock = listen(host, 0)
        self.host, self.port = self._sock.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _ = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(Connection(sock),), daemon=True
            ).start()

    def _count_served(self, size: int) -> None:
        if self._c_serves is not None:
            self._c_serves.inc()
            self._c_bytes.inc(size)

    def _serve(self, conn: Connection) -> None:
        if self._g_open is not None:
            self._g_open.inc()
        try:
            msg = conn.recv_message()
            if msg.get("type") != M.GET:
                conn.send_message({"type": M.FILE_DATA, "cache_name": "", "found": False, "size": 0})
                return
            cache_name = msg["cache_name"]
            path = self._lookup(cache_name)
            if path is None or not os.path.lexists(path):
                conn.send_message(
                    {"type": M.FILE_DATA, "cache_name": cache_name, "found": False, "size": 0}
                )
                return
            if os.path.isdir(path):
                with tempfile.NamedTemporaryFile(suffix=".tar", delete=False) as tf:
                    tar_path = tf.name
                try:
                    pack_directory(path, tar_path)
                    size = os.path.getsize(tar_path)
                    conn.send_message(
                        {
                            "type": M.FILE_DATA,
                            "cache_name": cache_name,
                            "found": True,
                            "size": size,
                            "format": "tar",
                        }
                    )
                    conn.send_file(tar_path, size)
                    self._count_served(size)
                finally:
                    os.unlink(tar_path)
            else:
                size = os.path.getsize(path)
                conn.send_message(
                    {
                        "type": M.FILE_DATA,
                        "cache_name": cache_name,
                        "found": True,
                        "size": size,
                        "format": "file",
                    }
                )
                conn.send_file(path, size)
                self._count_served(size)
        except (ProtocolError, OSError):
            pass  # peer went away mid-transfer; manager will reschedule
        finally:
            if self._g_open is not None:
                self._g_open.dec()
            conn.close()

    def stop(self) -> None:
        """Shut the server down (idempotent)."""
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass


def fetch_from_peer(
    host: str,
    port: int,
    cache_name: str,
    dest_path: str,
    timeout: float = 60.0,
) -> int:
    """Download one object from a peer worker into ``dest_path``.

    Returns the object's size in bytes.  Directory objects arrive as
    tar and are unpacked at ``dest_path``.  Raises
    :class:`TransferFailed` on any protocol error, absence, or hash
    mismatch for content-named files.
    """
    try:
        conn = Connection.connect(host, port, timeout=timeout)
    except OSError as exc:
        raise TransferFailed(f"cannot reach peer {host}:{port}: {exc}") from exc
    try:
        conn.send_message({"type": M.GET, "cache_name": cache_name})
        reply = conn.recv_message()
        if not reply.get("found"):
            raise TransferFailed(f"peer {host}:{port} does not hold {cache_name}")
        size = int(reply["size"])
        if reply.get("format") == "tar":
            with tempfile.NamedTemporaryFile(suffix=".tar", delete=False) as tf:
                tar_path = tf.name
            try:
                conn.recv_to_file(tar_path, size)
                unpack_directory(tar_path, dest_path)
            finally:
                os.unlink(tar_path)
        else:
            conn.recv_to_file(dest_path, size)
            if not verify_content_name(cache_name, dest_path):
                os.unlink(dest_path)
                raise TransferFailed(
                    f"content verification failed for {cache_name} from peer"
                )
        return size
    except (ProtocolError, OSError) as exc:
        raise TransferFailed(f"peer transfer of {cache_name} failed: {exc}") from exc
    finally:
        conn.close()


def fetch_from_url(url: str, dest_path: str, timeout: float = 300.0) -> int:
    """Download a URL into ``dest_path``; returns bytes received.

    Supports ``file://`` (the offline archive used in tests/examples)
    and ``http(s)://``.  A local *directory* behind ``file://`` is
    copied recursively, standing in for an archive that serves trees.
    """
    if url.startswith("file://"):
        src = url[len("file://"):]
        if not os.path.exists(src):
            raise TransferFailed(f"url source missing: {url}")
        if os.path.isdir(src):
            shutil.copytree(src, dest_path)
            return sum(
                os.path.getsize(os.path.join(r, f))
                for r, _d, fs in os.walk(dest_path)
                for f in fs
            )
        shutil.copyfile(src, dest_path)
        return os.path.getsize(dest_path)
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp, open(
            dest_path, "wb"
        ) as out:
            shutil.copyfileobj(resp, out)
    except OSError as exc:
        raise TransferFailed(f"url fetch of {url} failed: {exc}") from exc
    return os.path.getsize(dest_path)
