"""Sandbox-side runner for PythonTasks.

Invoked by the task command line as::

    python -m repro.worker.pytask_runner <payload> <result>

The payload file contains the serialized function, args, and kwargs
(:mod:`repro.protocol.serialization`); the result file receives the
serialized return value, or the exception if the function raised.
The process exit code tells the worker whether the function completed
(0), raised (1), or the payload itself was unusable (2).
"""

from __future__ import annotations

import sys
import traceback

from repro.protocol import serialization as ser

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = argv if argv is not None else sys.argv[1:]
    if len(args) != 2:
        print("usage: pytask_runner <payload> <result>", file=sys.stderr)
        return 2
    payload_path, result_path = args
    try:
        with open(payload_path, "rb") as f:
            payload = ser.loads_portable(f.read())
        func = payload["func"]
        call_args = payload.get("args", ())
        call_kwargs = payload.get("kwargs", {})
    except Exception as exc:
        print(f"pytask payload unusable: {exc}", file=sys.stderr)
        return 2
    try:
        value = func(*call_args, **call_kwargs)
        result = {"ok": True, "value": value}
        code = 0
    except BaseException as exc:  # the exception itself is the result
        result = {
            "ok": False,
            "error": exc,
            "traceback": traceback.format_exc(),
        }
        code = 1
    try:
        blob = ser.dumps(result)
    except ser.SerializationError:
        # unpicklable return value: fall back to its repr
        blob = ser.dumps(
            {
                "ok": result["ok"],
                "value": repr(result.get("value")),
                "error": repr(result.get("error")),
                "unserializable": True,
            }
        )
    with open(result_path, "wb") as f:
        f.write(blob)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
