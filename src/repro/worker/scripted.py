"""A scripted worker: speaks the wire protocol, executes nothing.

The manager-throughput load generator needs hundreds of workers whose
only job is to acknowledge commands instantly, so the measured cost is
the manager's networking and dispatch path, not sandbox setup or
subprocess execution.  :class:`ScriptedWorker` registers like a real
worker and answers every command with the protocol-correct reply —
``cache_update`` for anything it was told to materialize, ``task_done``
(exit 0) for every execution — without touching the filesystem.

Each instance is one thread reading the command connection, plus its
:class:`~repro.protocol.batching.BatchSender` flusher, so a single
benchmark process can host 128 of them; they are in-process stand-ins,
not subprocess workers like the integration-test clusters.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.resources import Resources
from repro.protocol import serialization as ser
from repro.protocol.batching import BatchSender
from repro.protocol.connection import Connection, ProtocolError
from repro.protocol.messages import M, validate

__all__ = ["ScriptedWorker"]


class ScriptedWorker:
    """Protocol-conformant worker stub for load generation and tests.

    ``batch_delay=0`` makes every reply its own frame (the historical
    wire behaviour, for baseline measurements); a positive delay
    coalesces replies into ``batch`` envelopes like the real worker.
    """

    def __init__(
        self,
        manager_host: str,
        manager_port: int,
        cores: float = 4,
        memory: int = 4_000,
        disk: int = 10_000,
        batch_max: int = 128,
        batch_delay: float = 0.002,
    ) -> None:
        self.capacity = Resources(cores=cores, memory=memory, disk=disk)
        self.tasks_completed = 0
        self._conn = Connection.connect(manager_host, manager_port)
        self._sender = BatchSender(
            self._conn, max_batch=batch_max, max_delay=batch_delay
        )
        self._sender.send(
            {
                "type": M.REGISTER,
                "capacity": self.capacity.to_dict(),
                "transfer_port": 1,  # never contacted: nothing is served
                "cached": [],
            }
        )
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    # -- command handling ----------------------------------------------

    def _loop(self) -> None:
        try:
            while True:
                msg = self._conn.recv_message()
                mtype = validate(msg)
                if mtype == M.SHUTDOWN:
                    return
                self._handle(mtype, msg)
        except (ProtocolError, OSError):
            return

    def _handle(self, mtype: str, msg: dict) -> None:
        if mtype == M.EXECUTE:
            harvested = []
            for _name, cache_name, _level in (tuple(o) for o in msg["outputs"]):
                self._sender.notice(
                    {"type": M.CACHE_UPDATE, "cache_name": cache_name, "size": 1}
                )
                harvested.append(cache_name)
            self.tasks_completed += 1
            self._sender.notice(
                {
                    "type": M.TASK_DONE,
                    "task_id": msg["task_id"],
                    "exit_code": 0,
                    "output": "",
                    "harvested": harvested,
                    "execution_time": 0.0,
                    "staging_time": 0.0,
                }
            )
        elif mtype == M.PUT_FILE:
            self._conn.recv_bytes(int(msg["size"]))  # drain, keep framing
            self._ack_transfer(msg)
        elif mtype in (M.FETCH_FILE, M.STAGE_MINITASK):
            self._ack_transfer(msg)
        elif mtype == M.INSTALL_LIBRARY:
            self._conn.recv_bytes(int(msg["payload_size"]))
            self._sender.notice(
                {
                    "type": M.LIBRARY_READY,
                    "library": msg["library"],
                    "task_id": msg["task_id"],
                }
            )
        elif mtype == M.INVOKE:
            self._conn.recv_bytes(int(msg["payload_size"]))
            result = ser.dumps({"ok": True, "value": None})
            self._sender.send(
                {
                    "type": M.TASK_DONE,
                    "task_id": msg["task_id"],
                    "exit_code": 0,
                    "output": "",
                    "result_size": len(result),
                },
                result,
            )
        elif mtype == M.SEND_BACK:
            self._sender.send(
                {
                    "type": M.FILE_DATA,
                    "cache_name": msg["cache_name"],
                    "found": False,
                    "size": 0,
                }
            )
        # UNLINK / CANCEL_TASK / ACK need no reply

    def _ack_transfer(self, msg: dict) -> None:
        self._sender.notice(
            {
                "type": M.CACHE_UPDATE,
                "cache_name": msg["cache_name"],
                "size": int(msg.get("size", 1)),
                "transfer_id": msg.get("transfer_id"),
            }
        )

    # -- lifecycle ------------------------------------------------------

    def drain(self) -> None:
        """Announce a graceful departure; the manager answers shutdown."""
        self._sender.send({"type": M.DRAINING})

    def join(self, timeout: Optional[float] = 5.0) -> None:
        """Wait for the reader thread to exit (manager-ordered shutdown)."""
        self._thread.join(timeout=timeout)

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the reader and release the connection (idempotent)."""
        self._sender.close()
        self._conn.close()
        self._thread.join(timeout=timeout)
