"""The TaskVine worker process.

A worker manages the resources of one node (paper §2.1): it keeps a
flat cache of named objects, executes tasks in private sandboxes,
performs transfers asynchronously as commanded, hosts library
instances, and reports every status change of interest to the manager
(``cache-update`` / ``cache-invalid`` / ``task-done`` messages).

Structure: the main loop reads manager commands (and any attached byte
payloads) from the command connection; long-running work — task
execution, fetches, mini-task staging, function invocations — runs on
worker threads; all outgoing messages go through one
:class:`~repro.protocol.batching.BatchSender`, which serializes them
and coalesces payload-free notices into ``batch`` frames.  A
:class:`~repro.worker.transfers.PeerTransferServer` serves this
worker's cache to peers on a separate port.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from typing import Optional

from repro.core.files import CacheLevel
from repro.core.resources import Resources
from repro.protocol.batching import BatchSender
from repro.protocol.connection import Connection, ProtocolError
from repro.protocol.messages import M, validate
from repro.observe.metrics import MetricsRegistry, SnapshotDumper
from repro.util.logging import get_logger
from repro.worker.cache import WorkerCache
from repro.worker.executor import run_command
from repro.worker.library_instance import LibraryInstanceHandle
from repro.worker.sandbox import Sandbox, SandboxError
from repro.worker.transfers import (
    CorruptTransfer,
    PeerTransferServer,
    TransferFailed,
    fetch_from_peer,
    fetch_from_url,
    verify_outcome,
)

__all__ = ["Worker"]

log = get_logger(__name__)


class Worker:
    """One worker node's mechanisms, driven by manager policy."""

    def __init__(
        self,
        manager_host: str,
        manager_port: int,
        workdir: str,
        cores: float = 4,
        memory: int = 4_000,
        disk: int = 10_000,
        gpus: int = 0,
        task_timeout: Optional[float] = 600.0,
        max_cache_bytes: Optional[int] = None,
        eviction_grace: float = 5.0,
        fault_config=None,
        batch_max: int = 128,
        batch_delay: float = 0.002,
        reconnect_window: float = 0.0,
    ) -> None:
        self.workdir = os.path.abspath(workdir)
        os.makedirs(self.workdir, exist_ok=True)
        # the worker is a separate process from the manager, so it keeps
        # its own registry; snapshots land in <workdir>/metrics.json for
        # repro-status --metrics and post-mortem inspection
        self.metrics = MetricsRegistry()
        self._m_fetch_url = self.metrics.histogram("fetch.url_seconds")
        self._m_fetch_peer = self.metrics.histogram("fetch.peer_seconds")
        self._m_fetch_failures = self.metrics.counter("fetch.failures")
        self._m_sandbox = self.metrics.histogram("sandbox.setup_seconds")
        self._m_exec = self.metrics.histogram("task.execution_seconds")
        self._m_invoke = self.metrics.histogram("library.invoke_seconds")
        self._m_evictions = self.metrics.counter("cache.evictions")
        self._m_eviction_bytes = self.metrics.counter("cache.eviction_bytes")
        # content-verification accounting: skips (nothing checkable)
        # must be distinguishable from passes for chaos-run forensics
        self._m_verify = {
            outcome: self.metrics.counter(f"verify.{outcome}")
            for outcome in ("passed", "skipped", "failed")
        }
        self.cache = WorkerCache(
            os.path.join(self.workdir, "cache"), metrics=self.metrics
        )
        self.sandbox_root = os.path.join(self.workdir, "sandboxes")
        os.makedirs(self.sandbox_root, exist_ok=True)
        self.capacity = Resources(cores=cores, memory=memory, disk=disk, gpus=gpus)
        self.task_timeout = task_timeout
        #: cache admission bound; exceeding it evicts LRU unpinned
        #: objects (paper §2.2: cached files must not exhaust the disk)
        self.max_cache_bytes = max_cache_bytes
        #: objects younger than this are never evicted: they were just
        #: transferred for a task whose EXECUTE (and pin) is in flight
        self.eviction_grace = eviction_grace
        self._peer_server = PeerTransferServer(self._lookup, metrics=self.metrics)
        self._metrics_dumper = SnapshotDumper(
            self.metrics, os.path.join(self.workdir, "metrics.json")
        ).start()
        self._manager_addr = (manager_host, manager_port)
        #: how long (seconds) to keep retrying the manager address after
        #: the connection drops.  0 preserves the historical behaviour:
        #: a lost manager ends the worker.  Non-zero makes the worker
        #: survive a crash-safe manager restart — it reconnects with
        #: exponential backoff and re-registers its cache inventory so
        #: the new manager life re-adopts the surviving replicas.
        self.reconnect_window = reconnect_window
        self._batch_max = batch_max
        self._batch_delay = batch_delay
        #: set when the manager *told* us to shut down; reconnect never
        #: overrides an explicit SHUTDOWN
        self._shutdown_ordered = False
        self._conn = Connection.connect(manager_host, manager_port)
        #: all outbound traffic funnels through the batch sender, which
        #: both serializes writers and coalesces payload-free notices
        #: (batch_delay=0 restores the historical one-frame-per-message
        #: wire behaviour)
        self._sender = BatchSender(
            self._conn,
            max_batch=batch_max,
            max_delay=batch_delay,
            metrics=self.metrics,
        )
        self._stop = threading.Event()
        self._libraries: dict[str, LibraryInstanceHandle] = {}
        #: live subprocess handles by task id, for cancellation
        self._procs: dict[str, "object"] = {}
        self._procs_lock = threading.Lock()
        #: cache names pinned by in-flight work (inputs being used)
        self._pinned: dict[str, int] = {}
        self._pin_lock = threading.Lock()
        #: chaos-run self-sabotage instructions (WorkerFaultConfig)
        self.fault_config = fault_config
        self._tasks_executed = 0
        self._fault_rng = None
        self._fault_lock = threading.Lock()
        self._register()
        if fault_config is not None and not fault_config.empty:
            self._arm_faults(fault_config)
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, daemon=True
        )
        self._heartbeat_thread.start()

    # -- fault injection (chaos runs) ----------------------------------

    def _arm_faults(self, cfg) -> None:
        if cfg.corrupt_serve_p > 0 or cfg.fail_serve_p > 0:
            self._fault_rng = cfg.rng()
            self._peer_server.tamper = self._serve_tamper
        if cfg.crash_at is not None:
            timer = threading.Timer(cfg.crash_at, self._fault_crash, ("crash",))
            timer.daemon = True
            timer.start()
        if cfg.disconnect_at is not None:
            timer = threading.Timer(cfg.disconnect_at, self._fault_disconnect)
            timer.daemon = True
            timer.start()
        if cfg.drain_at is not None:
            timer = threading.Timer(cfg.drain_at, self.announce_drain)
            timer.daemon = True
            timer.start()

    def _notify_fault(self, category: str, cache_name: Optional[str] = None) -> None:
        """Best-effort fault notice so the manager's log shows the cause."""
        msg = {"type": M.FAULT, "category": category}
        if cache_name is not None:
            msg["cache_name"] = cache_name
        try:
            self._send(msg)
        except (ProtocolError, OSError):
            pass

    def _fault_crash(self, category: str) -> None:
        log.warning("injected %s: exiting abruptly", category)
        self._notify_fault(category)
        os._exit(17)  # no cleanup: a crash leaves everything behind

    def _fault_disconnect(self) -> None:
        log.warning("injected disconnect: dropping manager connection")
        self._notify_fault("disconnect")
        try:
            self._conn.close()
        except OSError:
            pass

    def announce_drain(self, reason: Optional[str] = None) -> None:
        """Announce a graceful departure (elastic scale-down).

        The worker keeps serving running tasks and peer transfers; the
        manager migrates this worker's sole-holder objects to survivors
        and then answers with ``shutdown``, which ends the run loop
        without triggering a reconnect.
        """
        log.info("announcing graceful drain to manager")
        msg: dict = {"type": M.DRAINING}
        if reason is not None:
            msg["reason"] = reason
        try:
            self._send(msg)
        except (ProtocolError, OSError):
            pass

    def _serve_tamper(self, cache_name: str) -> Optional[str]:
        with self._fault_lock:
            verdict = self.fault_config.serve_verdict(self._fault_rng)
        if verdict is not None:
            log.warning("injected peer-serve %s for %s", verdict, cache_name[:32])
            self._notify_fault(f"serve_{verdict}", cache_name)
        return verdict

    def _heartbeat_loop(self, interval: float = 5.0) -> None:
        """Periodic liveness signal so a silently hung worker is detectable."""
        while not self._stop.wait(interval):
            try:
                self._notice({"type": M.HEARTBEAT})
            except (ProtocolError, OSError):
                # with reconnect enabled the sender is replaced under
                # us; keep beating so the next life gets heartbeats too
                if self.reconnect_window <= 0:
                    return

    # -- cache pressure -----------------------------------------------------

    def _pin(self, names: list[str]) -> None:
        with self._pin_lock:
            for n in names:
                self._pinned[n] = self._pinned.get(n, 0) + 1

    def _unpin(self, names: list[str]) -> None:
        with self._pin_lock:
            for n in names:
                count = self._pinned.get(n, 0) - 1
                if count > 0:
                    self._pinned[n] = count
                else:
                    self._pinned.pop(n, None)

    def _enforce_cache_bound(self) -> None:
        """Evict least-valuable objects when over the admission bound.

        The worker provides the mechanism; each eviction is reported
        with a ``cache-invalid`` so the manager's replica table stays
        truthful (the manager remains the policy authority for
        everything it *directed*; local pressure relief is the one
        autonomous action, exactly as a disk-full worker must behave).
        """
        if self.max_cache_bytes is None:
            return
        from repro.core.gc import plan_eviction

        overflow = self.cache.total_bytes() - self.max_cache_bytes
        if overflow <= 0:
            return
        now = time.time()
        with self._pin_lock:
            pinned = set(self._pinned)
        pinned |= {
            e.cache_name
            for e in self.cache.entries()
            if now - e.last_used < self.eviction_grace
        }
        for victim in plan_eviction(self.cache.eviction_view(), overflow, pinned):
            size = self.cache.entry(victim).size if self.cache.has(victim) else 0
            if self.cache.remove(victim):
                log.info("evicted %s under cache pressure", victim[:32])
                self._m_evictions.inc()
                self._m_eviction_bytes.inc(size)
                self._cache_invalid(victim, "evicted: cache pressure")

    # -- outbound ----------------------------------------------------------

    def _send(self, message: dict, payload: Optional[bytes] = None) -> None:
        """Transmit immediately (flushes queued notices first)."""
        self._sender.send(message, payload)

    def _notice(self, message: dict) -> None:
        """Queue a payload-free status notice for the next batch window."""
        self._sender.notice(message)

    def _send_with_file(self, message: dict, path: str, size: int) -> None:
        self._sender.send_with_file(message, path, size)

    def _register(self, rejoin: bool = False) -> None:
        cached = [
            [e.cache_name, e.size, int(e.level)] for e in self.cache.entries()
        ]
        msg = {
            "type": M.REGISTER,
            "capacity": self.capacity.to_dict(),
            "transfer_port": self._peer_server.port,
            "transfer_host": self._peer_server.host,
            "workdir": self.workdir,
            "cached": cached,
        }
        if rejoin:
            # the cached inventory above is what lets a restarted
            # manager re-adopt surviving replicas during its grace window
            msg["rejoin"] = True
        self._send(msg)

    def _reconnect(self) -> bool:
        """Retry the manager address with exponential backoff.

        Returns True once a fresh connection is registered, False when
        the window expires (or shutdown intervenes).  The old sender and
        connection are torn down first so in-flight worker threads fail
        fast instead of writing into a dead socket.
        """
        deadline = time.monotonic() + self.reconnect_window
        try:
            self._sender.close()
        except (ProtocolError, OSError):
            pass
        try:
            self._conn.close()
        except OSError:
            pass
        delay = 0.2
        while not self._stop.is_set() and time.monotonic() < deadline:
            try:
                conn = Connection.connect(*self._manager_addr)
            except OSError:
                time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
                delay = min(delay * 2, 5.0)
                continue
            self._conn = conn
            self._sender = BatchSender(
                conn,
                max_batch=self._batch_max,
                max_delay=self._batch_delay,
                metrics=self.metrics,
            )
            try:
                self._register(rejoin=True)
            except (ProtocolError, OSError):
                continue  # manager died again mid-handshake; keep trying
            log.info("reconnected to manager at %s:%d", *self._manager_addr)
            return True
        return False

    def _lookup(self, cache_name: str) -> Optional[str]:
        return self.cache.path_of(cache_name) if self.cache.has(cache_name) else None

    def _cache_update(self, cache_name: str, size: int, transfer_id: Optional[str] = None) -> None:
        msg = {"type": M.CACHE_UPDATE, "cache_name": cache_name, "size": size}
        if transfer_id is not None:
            msg["transfer_id"] = transfer_id
        self._notice(msg)
        self._enforce_cache_bound()

    def _cache_invalid(
        self,
        cache_name: str,
        reason: str,
        transfer_id: Optional[str] = None,
        corrupt: bool = False,
    ) -> None:
        msg = {"type": M.CACHE_INVALID, "cache_name": cache_name, "reason": reason}
        if transfer_id is not None:
            msg["transfer_id"] = transfer_id
        if corrupt:
            # tells the manager the *source's* copy is suspect, not just
            # the link: corruption feeds replica-loss handling
            msg["corrupt"] = True
        self._notice(msg)

    def _count_verify(self, outcome: str, cache_name: str = "") -> None:
        self._m_verify[outcome].inc()
        if outcome == "failed":
            log.warning("content verification failed for %s", cache_name[:48])

    # -- main loop --------------------------------------------------------

    def run(self) -> None:
        """Serve manager commands until shutdown or disconnect.

        With a non-zero ``reconnect_window`` a dropped connection is
        not fatal: the worker re-dials the manager address (covering a
        crash-safe manager restart) and resumes serving.  An explicit
        SHUTDOWN from the manager always ends the worker.
        """
        try:
            while not self._stop.is_set():
                try:
                    msg = self._conn.recv_message()
                except (ProtocolError, OSError):
                    if self.reconnect_window > 0 and not self._shutdown_ordered:
                        log.warning(
                            "manager connection lost; retrying for %.0fs",
                            self.reconnect_window,
                        )
                        if self._reconnect():
                            continue
                    break
                mtype = validate(msg)
                # attached payloads must be drained on this thread to keep framing
                payload: Optional[bytes] = None
                if mtype in (M.INSTALL_LIBRARY, M.INVOKE):
                    payload = self._conn.recv_bytes(int(msg["payload_size"]))
                if mtype == M.PUT_FILE:
                    self._handle_put_file(msg)  # streams to disk inline
                    continue
                if mtype == M.SHUTDOWN:
                    self._shutdown_ordered = True
                    break
                self._dispatch(mtype, msg, payload)
        finally:
            self.shutdown()

    def _dispatch(self, mtype: str, msg: dict, payload: Optional[bytes]) -> None:
        handlers = {
            M.FETCH_FILE: self._handle_fetch,
            M.STAGE_MINITASK: self._handle_stage,
            M.EXECUTE: self._handle_execute,
            M.SEND_BACK: self._handle_send_back,
            M.UNLINK: self._handle_unlink,
            M.INSTALL_LIBRARY: self._handle_install_library,
            M.INVOKE: self._handle_invoke,
            M.CANCEL_TASK: self._handle_cancel,
        }
        handler = handlers.get(mtype)
        if handler is None:
            return
        if mtype in (M.UNLINK, M.SEND_BACK, M.CANCEL_TASK):
            handler(msg)  # quick, stay on the command thread
        elif payload is not None:
            threading.Thread(target=handler, args=(msg, payload), daemon=True).start()
        else:
            threading.Thread(target=handler, args=(msg,), daemon=True).start()

    # -- file movement -----------------------------------------------------

    def _handle_put_file(self, msg: dict) -> None:
        """Receive manager-sourced bytes; must run inline for framing."""
        cache_name = msg["cache_name"]
        size = int(msg["size"])
        level = CacheLevel(int(msg["level"]))
        staged = self.cache.staging_path(cache_name)
        self._conn.recv_to_file(staged, size)
        if msg.get("format") == "tar":
            from repro.worker.transfers import unpack_directory

            unpacked = self.cache.staging_path(cache_name + ".dir")
            unpack_directory(staged, unpacked)
            os.unlink(staged)
            staged = unpacked
        outcome = verify_outcome(cache_name, staged)
        self._count_verify(outcome, cache_name)
        if outcome == "failed":
            os.unlink(staged)
            self._cache_invalid(
                cache_name,
                "content verification failed for manager push",
                msg.get("transfer_id"),
                corrupt=True,
            )
            return
        entry = self.cache.insert_from(staged, cache_name, level, time.time())
        self._cache_update(cache_name, entry.size, msg.get("transfer_id"))

    def _handle_fetch(self, msg: dict) -> None:
        cache_name = msg["cache_name"]
        level = CacheLevel(int(msg["level"]))
        source = msg["source"]
        transfer_id = msg["transfer_id"]
        staged = self.cache.staging_path(cache_name)
        fetch_started = time.monotonic()

        def on_verify(outcome: str) -> None:
            self._count_verify(outcome, cache_name)

        try:
            if source["kind"] == "url":
                fetch_from_url(
                    source["url"], staged, cache_name=cache_name, on_verify=on_verify
                )
                self._m_fetch_url.observe(time.monotonic() - fetch_started)
            elif source["kind"] == "worker":
                fetch_from_peer(
                    source["host"], int(source["port"]), cache_name, staged,
                    on_verify=on_verify,
                )
                self._m_fetch_peer.observe(time.monotonic() - fetch_started)
            else:
                raise TransferFailed(f"unknown source kind {source['kind']!r}")
            entry = self.cache.insert_from(staged, cache_name, level, time.time())
            self._cache_update(cache_name, entry.size, transfer_id)
        except CorruptTransfer as exc:
            self._m_fetch_failures.inc()
            self._cache_invalid(cache_name, str(exc), transfer_id, corrupt=True)
        except (TransferFailed, OSError) as exc:
            self._m_fetch_failures.inc()
            self._cache_invalid(cache_name, str(exc), transfer_id)

    def _handle_send_back(self, msg: dict) -> None:
        cache_name = msg["cache_name"]
        path = self._lookup(cache_name)
        if path is None:
            self._send(
                {"type": M.FILE_DATA, "cache_name": cache_name, "found": False, "size": 0}
            )
            return
        if os.path.isdir(path):
            import tempfile

            from repro.worker.transfers import pack_directory

            with tempfile.NamedTemporaryFile(suffix=".tar", delete=False) as tf:
                tar_path = tf.name
            try:
                pack_directory(path, tar_path)
                size = os.path.getsize(tar_path)
                self._send_with_file(
                    {
                        "type": M.FILE_DATA,
                        "cache_name": cache_name,
                        "found": True,
                        "size": size,
                        "format": "tar",
                    },
                    tar_path,
                    size,
                )
            finally:
                os.unlink(tar_path)
        else:
            size = os.path.getsize(path)
            self._send_with_file(
                {
                    "type": M.FILE_DATA,
                    "cache_name": cache_name,
                    "found": True,
                    "size": size,
                    "format": "file",
                },
                path,
                size,
            )

    def _handle_unlink(self, msg: dict) -> None:
        self.cache.remove(msg["cache_name"])

    def _handle_cancel(self, msg: dict) -> None:
        """Kill a running task's whole process group (it setsid'd)."""
        import signal

        with self._procs_lock:
            proc = self._procs.get(msg["task_id"])
        if proc is None:
            return
        try:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass

    # -- mini-task staging ------------------------------------------------

    def _handle_stage(self, msg: dict) -> None:
        """Materialize a file by running its mini-task (paper §2.4)."""
        spec = msg["spec"]
        cache_name = msg["cache_name"]
        level = CacheLevel(int(msg["level"]))
        transfer_id = msg["transfer_id"]
        sandbox = Sandbox(self.sandbox_root, f"stage-{transfer_id}")
        input_names = [p[1] for p in spec["inputs"]]
        self._pin(input_names)
        try:
            sandbox.link_inputs(self.cache, [tuple(p) for p in spec["inputs"]])
            outcome = run_command(
                spec["command"],
                sandbox.path,
                spec.get("env", {}),
                Resources.from_dict(spec.get("resources", {})),
                timeout=self.task_timeout,
            )
            if outcome.exit_code != 0:
                raise SandboxError(
                    f"mini task exited {outcome.exit_code}: {outcome.output[:500]}"
                )
            sandbox.harvest_outputs(
                self.cache, [(spec["output_name"], cache_name, level)], time.time()
            )
            entry = self.cache.entry(cache_name)
            self._cache_update(cache_name, entry.size, transfer_id)
        except (SandboxError, OSError) as exc:
            self._cache_invalid(cache_name, str(exc), transfer_id)
        finally:
            self._unpin(input_names)
            sandbox.destroy()

    # -- task execution --------------------------------------------------

    def _handle_execute(self, msg: dict) -> None:
        task_id = msg["task_id"]
        log.debug("execute %s: %s", task_id, msg["command"][:60])
        cfg = self.fault_config
        if cfg is not None and cfg.crash_after_tasks is not None:
            with self._fault_lock:
                self._tasks_executed += 1
                nth = self._tasks_executed
            if nth == cfg.crash_after_tasks:
                # die mid-task: the manager never hears TASK_DONE and
                # must recover via connection loss
                self._fault_crash("crash")
        sandbox = Sandbox(self.sandbox_root, task_id)
        staging_started = time.time()
        input_names = [p[1] for p in msg["inputs"]]
        self._pin(input_names)
        try:
            sandbox.link_inputs(self.cache, [tuple(p) for p in msg["inputs"]])
        except SandboxError as exc:
            self._unpin(input_names)
            sandbox.destroy()
            self._notice(
                {
                    "type": M.TASK_DONE,
                    "task_id": task_id,
                    "exit_code": 126,
                    "output": str(exc),
                    "failure": "sandbox",
                }
            )
            return
        allocation = Resources.from_dict(msg["resources"])

        def register(proc):
            with self._procs_lock:
                self._procs[task_id] = proc

        outcome = run_command(
            msg["command"],
            sandbox.path,
            msg.get("env", {}),
            allocation,
            sandbox_usage=sandbox.disk_usage,
            timeout=self.task_timeout,
            on_start=register,
        )
        with self._procs_lock:
            self._procs.pop(task_id, None)
        failure = None
        harvested: list[tuple[str, int]] = []
        # exit code 1 may still produce declared outputs (e.g. a PythonTask
        # whose function raised writes the serialized exception)
        try:
            for sandbox_name, cache_name, level in (
                tuple(o) for o in msg["outputs"]
            ):
                self.cache.remove(cache_name)  # never trust a stale partial
                sandbox.harvest_outputs(
                    self.cache,
                    [(sandbox_name, cache_name, CacheLevel(int(level)))],
                    time.time(),
                )
                harvested.append((cache_name, self.cache.entry(cache_name).size))
        except SandboxError as exc:
            if outcome.exit_code == 0:
                failure = f"missing output: {exc}"
        except OSError as exc:
            # a harvest that dies without TASK_DONE stalls the workflow
            failure = f"output harvest failed: {exc}"
        self._unpin(input_names)
        sandbox.destroy()
        for cache_name, size in harvested:
            self._cache_update(cache_name, size)
        staging_time = max(0.0, time.time() - staging_started - outcome.execution_time)
        self._m_sandbox.observe(staging_time)
        self._m_exec.observe(outcome.execution_time)
        # a notice, like the cache updates above: the FIFO batch queue
        # preserves the harvested-before-done ordering contract
        self._notice(
            {
                "type": M.TASK_DONE,
                "task_id": task_id,
                "exit_code": outcome.exit_code,
                "output": outcome.output,
                "failure": failure,
                "exceeded": outcome.exceeded,
                "measured": outcome.measured.to_dict(),
                # outputs whose cache updates were sent (in order) just
                # above on this same connection — the manager can rely
                # on having seen them before this message
                "harvested": [name for name, _ in harvested],
                "execution_time": outcome.execution_time,
                "staging_time": staging_time,
            }
        )

    # -- serverless -----------------------------------------------------

    def _handle_install_library(self, msg: dict, payload: bytes) -> None:
        name = msg["library"]
        task_id = msg["task_id"]
        try:
            handle = LibraryInstanceHandle(
                name, payload, function_slots=int(msg.get("slots", 1))
            )
            self._libraries[name] = handle
            self._notice({"type": M.LIBRARY_READY, "library": name, "task_id": task_id})
        except Exception as exc:
            self._notice(
                {
                    "type": M.TASK_DONE,
                    "task_id": task_id,
                    "exit_code": 1,
                    "output": f"library install failed: {exc}",
                    "failure": "library",
                }
            )

    def _handle_invoke(self, msg: dict, payload: bytes) -> None:
        task_id = msg["task_id"]
        library = msg["library"]
        handle = self._libraries.get(library)
        if handle is None or not handle.alive():
            self._notice(
                {
                    "type": M.TASK_DONE,
                    "task_id": task_id,
                    "exit_code": 1,
                    "output": f"library {library!r} not running",
                    "failure": "library",
                }
            )
            return
        result_name = msg.get("result_name")
        input_names = [str(n) for n in msg.get("inputs", [])]
        self._pin(input_names)
        try:
            invoke_started = time.monotonic()
            # argument blob: inline invoke payload, or (remote form) a
            # buffer previously staged into the cache
            args_blob = payload
            args_cache = msg.get("args_cache")
            if not args_blob and args_cache:
                path = self._lookup(args_cache)
                if path is None:
                    raise RuntimeError(f"argument blob {args_cache} not cached")
                with open(path, "rb") as f:
                    args_blob = f.read()
            if result_name is None:
                # legacy inline result: the envelope rides the reply
                handle.invoke(task_id, msg["function"], args_blob)
                result = handle.wait_result(task_id, timeout=self.task_timeout)
                self._m_invoke.observe(time.monotonic() - invoke_started)
                self._send(
                    {
                        "type": M.TASK_DONE,
                        "task_id": task_id,
                        "exit_code": 0,
                        "output": "",
                        "result_size": len(result),
                    },
                    result,
                )
                return
            # by-reference result: proxy arguments dereference against
            # this worker's cache, and the envelope lands in the cache
            # instead of the reply — only metadata returns
            paths = {
                cn: p for cn in input_names if (p := self._lookup(cn)) is not None
            }
            handle.invoke(task_id, msg["function"], args_blob, paths=paths)
            blob, meta = handle.wait_result_full(task_id, timeout=self.task_timeout)
            self._m_invoke.observe(time.monotonic() - invoke_started)
            if meta is None or meta.get("ok"):
                level = CacheLevel(
                    int(msg.get("result_level", int(CacheLevel.WORKFLOW)))
                )
                staged = self.cache.staging_path(result_name)
                with open(staged, "wb") as f:
                    f.write(blob)
                entry = self.cache.insert_from(
                    staged, result_name, level, time.time()
                )
                # FIFO notices keep the harvested-before-done contract
                self._cache_update(result_name, entry.size)
                self._notice(
                    {
                        "type": M.TASK_DONE,
                        "task_id": task_id,
                        "exit_code": 0,
                        "output": "",
                        "harvested": [result_name],
                    }
                )
            else:
                # a failure envelope is never cached: a cached failure
                # under a content-addressed name would shadow a later
                # successful retry (insert_from keeps the existing entry)
                tb = meta.get("traceback") or ""
                self._notice(
                    {
                        "type": M.TASK_DONE,
                        "task_id": task_id,
                        "exit_code": 1,
                        "output": tb[-1000:],
                        "failure": tb[-1000:] or "invoke",
                    }
                )
        except Exception as exc:
            self._notice(
                {
                    "type": M.TASK_DONE,
                    "task_id": task_id,
                    "exit_code": 1,
                    "output": f"{exc}\n{traceback.format_exc()[:1000]}",
                    "failure": str(exc)[:500] or "invoke",
                }
            )
        finally:
            self._unpin(input_names)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop libraries, the peer server, and the command channel."""
        if self._stop.is_set():
            return
        self._stop.set()
        for handle in self._libraries.values():
            handle.stop()
        self._libraries.clear()
        self._peer_server.stop()
        self._metrics_dumper.stop()
        self._sender.close()
        self._conn.close()
