"""Library instances: resident serverless processes at the worker.

The paper's serverless model (§3.4, Fig. 8): after receiving a
LibraryTask, the worker creates a pipe, forks a *Library Instance*,
and waits for an initialization message describing its functions.  To
run a FunctionCall, the worker sends an invocation message; the
instance **forks** to run the already-loaded code so per-call state
cannot pollute the resident process, and returns the serialized result.

Implementation: :class:`LibraryInstanceHandle` lives in the worker and
owns a ``multiprocessing`` child running :func:`_instance_main`.  The
instance deserializes the function table once (the expensive
initialization the model amortizes), then forks one short-lived
process per invocation, with results flowing back over a shared queue.
Multiple invocations run concurrently up to ``function_slots``.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import traceback
from typing import Any, Callable, Optional

from repro.protocol import serialization as ser

__all__ = ["LibraryInstanceHandle", "LibraryError"]

#: fork start method gives true paper semantics (shared loaded state)
_CTX = mp.get_context("fork")


class LibraryError(RuntimeError):
    """Library failed to initialize or died mid-workflow."""


def _materialize(obj: Any) -> Any:
    """Recursively replace :class:`ResultProxy` objects with their values.

    Runs in the forked invocation child *after* the worker-local cache
    paths are installed, so each dereference is a local file read — the
    by-reference bytes were already staged to this worker as task
    inputs, never through the manager.
    """
    from repro.core.resultref import ResultProxy

    if isinstance(obj, ResultProxy):
        return obj.resolve()
    if isinstance(obj, list):
        return [_materialize(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_materialize(x) for x in obj)
    if isinstance(obj, set):
        return {_materialize(x) for x in obj}
    if isinstance(obj, dict):
        return {_materialize(k): _materialize(v) for k, v in obj.items()}
    return obj


def _invoke_child(
    functions_blob: bytes,
    function: str,
    args_blob: bytes,
    result_queue,
    invocation_id: str,
    paths: Optional[dict] = None,
) -> None:  # pragma: no cover - runs in a forked child
    """Run one invocation in a forked process and post the result.

    Posts ``(invocation_id, blob, meta)``: the serialized result
    envelope plus a plain-dict sidechannel (``ok``, ``traceback``) the
    worker can act on without unpickling the envelope — result values
    may reference classes that only exist inside this child.
    """
    try:
        functions = _invoke_child._cache  # populated pre-fork, see below
    except AttributeError:
        functions = ser.loads(functions_blob)
    try:
        if paths:
            from repro.core.resultref import install_local_paths

            install_local_paths(paths)
        payload = ser.loads(args_blob)
        fn = functions[function]
        args = _materialize(tuple(payload.get("args", ())))
        kwargs = _materialize(dict(payload.get("kwargs", {})))
        value = fn(*args, **kwargs)
        blob = ser.dumps({"ok": True, "value": value})
        meta = {"ok": True, "traceback": None}
    except BaseException as exc:
        tb = traceback.format_exc()
        blob = ser.dumps({"ok": False, "error": exc, "traceback": tb})
        meta = {"ok": False, "traceback": tb}
    result_queue.put((invocation_id, blob, meta))


def _instance_main(
    conn, result_queue, payload: bytes
) -> None:  # pragma: no cover - separate process
    """Main loop of the resident library process.

    Loads the function table once, announces readiness, then forks a
    child per invocation message until told to stop.
    """
    try:
        functions: dict[str, Callable] = ser.loads_portable(payload)
        _invoke_child._cache = functions  # type: ignore[attr-defined]
        conn.send({"type": "init", "functions": sorted(functions)})
    except Exception as exc:
        conn.send({"type": "init_error", "error": repr(exc)})
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg.get("type") == "stop":
            break
        if msg.get("type") != "invoke":
            continue
        _CTX.active_children()  # reap finished invocation forks
        child = _CTX.Process(
            target=_invoke_child,
            args=(
                b"",
                msg["function"],
                msg["args_blob"],
                result_queue,
                msg["id"],
                msg.get("paths"),
            ),
        )
        child.start()
    for child in _CTX.active_children():
        child.join(timeout=5)


class LibraryInstanceHandle:
    """Worker-side handle to one running library instance."""

    def __init__(self, name: str, payload: bytes, function_slots: int = 1) -> None:
        self.name = name
        self.function_slots = max(1, function_slots)
        self._parent_conn, child_conn = _CTX.Pipe()
        self._results: mp.Queue = _CTX.Queue()
        # not a daemon: the instance must be able to fork per invocation
        self._proc = _CTX.Process(
            target=_instance_main,
            args=(child_conn, self._results, payload),
        )
        self._proc.start()
        child_conn.close()
        init = self._wait_init()
        self.functions: list[str] = init
        self._lock = threading.Lock()
        self._waiters: dict[str, "threading.Event"] = {}
        self._done: dict[str, tuple[bytes, Optional[dict]]] = {}
        self._in_flight = 0
        self._collector = threading.Thread(target=self._collect, daemon=True)
        self._collector.start()

    def _wait_init(self, timeout: float = 60.0) -> list[str]:
        if not self._parent_conn.poll(timeout):
            self.stop()
            raise LibraryError(f"library {self.name!r} did not initialize in time")
        msg = self._parent_conn.recv()
        if msg.get("type") != "init":
            self.stop()
            raise LibraryError(
                f"library {self.name!r} failed to initialize: {msg.get('error')}"
            )
        return msg["functions"]

    # -- invocation -------------------------------------------------------

    def has_free_slot(self) -> bool:
        """True if another invocation may start under the slot limit."""
        with self._lock:
            return self._in_flight < self.function_slots

    def invoke(
        self,
        invocation_id: str,
        function: str,
        args_blob: bytes,
        paths: Optional[dict] = None,
    ) -> None:
        """Start an invocation; result arrives via :meth:`wait_result`.

        ``paths`` maps cache names to worker-local file paths; the
        invocation child installs it so proxy arguments dereference
        against this worker's cache instead of the network.
        """
        if function not in self.functions:
            raise LibraryError(
                f"library {self.name!r} has no function {function!r}"
            )
        with self._lock:
            self._in_flight += 1
            self._waiters[invocation_id] = threading.Event()
        self._parent_conn.send(
            {
                "type": "invoke",
                "id": invocation_id,
                "function": function,
                "args_blob": args_blob,
                "paths": dict(paths or {}),
            }
        )

    def wait_result(self, invocation_id: str, timeout: Optional[float] = None) -> bytes:
        """Block until an invocation's serialized result is available."""
        blob, _meta = self.wait_result_full(invocation_id, timeout)
        return blob

    def wait_result_full(
        self, invocation_id: str, timeout: Optional[float] = None
    ) -> tuple[bytes, Optional[dict]]:
        """Like :meth:`wait_result`, but also returns the meta sidechannel.

        ``meta`` is a plain dict (``ok``, ``traceback``) the worker can
        inspect without unpickling the result envelope — envelope values
        may reference classes that only exist in the invocation child.

        Waits in short slices so a crash of the resident instance is
        detected within a second rather than after the full call
        timeout — a dead instance can no longer fork the invocation, so
        waiting out the deadline would just stall the worker slot.
        """
        event = self._waiters[invocation_id]
        deadline = None if timeout is None else time.monotonic() + timeout
        while not event.wait(0.1):
            if not self._proc.is_alive():
                # grace period: an already-forked invocation child can
                # still post its result after the resident dies
                if event.wait(0.5):
                    break
                with self._lock:
                    self._waiters.pop(invocation_id, None)
                    self._in_flight = max(0, self._in_flight - 1)
                raise LibraryError(
                    f"library {self.name!r} instance died before invocation "
                    f"{invocation_id} returned"
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise LibraryError(f"invocation {invocation_id} timed out")
        with self._lock:
            del self._waiters[invocation_id]
            return self._done.pop(invocation_id)

    def _collect(self) -> None:
        while True:
            try:
                item = self._results.get()
            except (EOFError, OSError):
                return
            invocation_id, blob = item[0], item[1]
            meta = item[2] if len(item) > 2 else None
            if invocation_id is None:
                return
            with self._lock:
                self._done[invocation_id] = (blob, meta)
                self._in_flight -= 1
                waiter = self._waiters.get(invocation_id)
            if waiter is not None:
                waiter.set()

    # -- lifecycle --------------------------------------------------------

    def alive(self) -> bool:
        """True while the resident process is running."""
        return self._proc.is_alive()

    def stop(self) -> None:
        """Terminate the instance and its collector (idempotent)."""
        try:
            self._parent_conn.send({"type": "stop"})
        except (OSError, BrokenPipeError):
            pass
        self._proc.join(timeout=2)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=2)
        try:
            self._results.put((None, b""))
        except (OSError, ValueError):
            pass


def build_payload(functions: dict[str, Callable]) -> bytes:
    """Serialize a function table for shipment to workers."""
    return ser.dumps_portable(functions)


def pack_invocation(args: tuple, kwargs: dict) -> bytes:
    """Serialize one invocation's arguments."""
    return ser.dumps({"args": args, "kwargs": kwargs})


def unpack_result(blob: bytes) -> Any:
    """Decode an invocation result; re-raises the remote exception."""
    result = ser.loads(blob)
    if result.get("ok"):
        return result.get("value")
    error = result.get("error")
    if isinstance(error, BaseException):
        raise error
    raise LibraryError(f"remote invocation failed: {result.get('traceback')}")
