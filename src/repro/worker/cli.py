"""Command-line entry point for a TaskVine worker.

Mirrors the paper's deployment model: workers are submitted as batch
jobs pointing at the manager's address.  On one machine::

    repro-worker --manager 127.0.0.1:9123 --workdir /tmp/w1 --cores 4
"""

from __future__ import annotations

import argparse
import sys

from repro.worker.worker import Worker

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, start the worker, and serve until shutdown."""
    parser = argparse.ArgumentParser(description="TaskVine reproduction worker")
    parser.add_argument(
        "--manager",
        required=True,
        help="manager address as host:port",
    )
    parser.add_argument("--workdir", required=True, help="cache + sandbox directory")
    parser.add_argument("--cores", type=float, default=4)
    parser.add_argument("--memory", type=int, default=4000, help="MB")
    parser.add_argument("--disk", type=int, default=10000, help="MB")
    parser.add_argument("--gpus", type=int, default=0)
    parser.add_argument(
        "--task-timeout", type=float, default=600.0, help="seconds per task"
    )
    parser.add_argument(
        "--max-cache-mb",
        type=int,
        default=None,
        help="evict LRU cache objects beyond this bound (MB)",
    )
    parser.add_argument(
        "--reconnect",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "keep retrying the manager address for this long after the "
            "connection drops (0 = exit on disconnect); lets workers "
            "survive a crash-safe manager restart"
        ),
    )
    parser.add_argument(
        "--fault-config",
        default=None,
        metavar="PATH",
        help="JSON WorkerFaultConfig for chaos runs (self-injected faults)",
    )
    args = parser.parse_args(argv)
    host, _, port = args.manager.rpartition(":")
    if not host or not port.isdigit():
        parser.error("--manager must be host:port")
    fault_config = None
    if args.fault_config is not None:
        from repro.faults.real import WorkerFaultConfig

        with open(args.fault_config, encoding="utf-8") as fh:
            fault_config = WorkerFaultConfig.from_json(fh.read())
    worker = Worker(
        host,
        int(port),
        args.workdir,
        cores=args.cores,
        memory=args.memory,
        disk=args.disk,
        gpus=args.gpus,
        task_timeout=args.task_timeout,
        max_cache_bytes=(
            args.max_cache_mb * 1_000_000 if args.max_cache_mb else None
        ),
        fault_config=fault_config,
        reconnect_window=args.reconnect,
    )
    worker.run()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
