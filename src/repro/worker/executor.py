"""Task execution with resource enforcement (paper §2.1).

Each task runs as a subprocess inside its sandbox with the declared
resource allocation *enforced*: memory via ``RLIMIT_AS``, and disk by
measuring sandbox usage after execution.  A task that exceeds its
allocation is reported with the offending dimensions so the manager
can retry it with a larger allocation or fail it, per the user's
configuration — this is what lets a worker pack many small tasks
without one rogue task taking down its neighbours.
"""

from __future__ import annotations

import os
import resource
import subprocess
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.resources import Resources

__all__ = ["ExecutionOutcome", "run_command"]

#: cap captured stdout/stderr so a chatty task cannot exhaust manager memory
MAX_OUTPUT_BYTES = 1 << 20

#: the source tree this worker is running from; tasks execute with the
#: sandbox as cwd, so a relative PYTHONPATH inherited from the harness
#: (e.g. ``PYTHONPATH=src``) would no longer resolve — make it absolute
_SRC_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@dataclass
class ExecutionOutcome:
    """Result of running one command in a sandbox."""

    exit_code: int
    output: str
    execution_time: float
    #: resource dimensions the task exceeded (empty = within allocation)
    exceeded: list[str]
    #: observed usage, for manager-side accounting
    measured: Resources


def _limit_preexec(memory_mb: int, wall_seconds: Optional[float]):
    """Build a ``preexec_fn`` installing rlimits in the child."""

    def apply() -> None:
        os.setsid()  # own process group: kill() reaps grandchildren too
        if memory_mb > 0:
            limit = memory_mb * 1_000_000
            try:
                resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
            except (ValueError, OSError):
                pass
        if wall_seconds is not None and wall_seconds > 0:
            cpu = int(wall_seconds) + 1
            try:
                resource.setrlimit(resource.RLIMIT_CPU, (cpu, cpu))
            except (ValueError, OSError):
                pass

    return apply


def run_command(
    command: str,
    cwd: str,
    env: dict[str, str],
    allocation: Resources,
    sandbox_usage=None,
    timeout: Optional[float] = None,
    on_start=None,
) -> ExecutionOutcome:
    """Run ``command`` in ``cwd`` under the declared ``allocation``.

    ``env`` extends (not replaces) the worker environment, matching the
    paper's ``set_env`` semantics.  ``sandbox_usage`` is a callable
    returning bytes written in the sandbox, checked against the disk
    allocation after the command exits.  ``timeout`` (seconds) kills
    runaway tasks; hitting it reports exit code -9.  ``on_start``
    receives the :class:`subprocess.Popen` handle, letting the caller
    cancel the task by killing its process group.
    """
    full_env = dict(os.environ)
    full_env.update(env)
    existing = full_env.get("PYTHONPATH", "")
    if _SRC_ROOT not in existing.split(os.pathsep):
        full_env["PYTHONPATH"] = (
            _SRC_ROOT + os.pathsep + existing if existing else _SRC_ROOT
        )
    start = time.monotonic()
    exceeded: list[str] = []
    try:
        proc = subprocess.Popen(
            command,
            shell=True,
            cwd=cwd,
            env=full_env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            preexec_fn=_limit_preexec(allocation.memory, timeout),
        )
        if on_start is not None:
            on_start(proc)
        try:
            raw_output, _ = proc.communicate(timeout=timeout)
            exit_code = proc.returncode
        except subprocess.TimeoutExpired:
            proc.kill()
            raw_output, _ = proc.communicate()
            exit_code = -9
            exceeded.append("wall_time")
    except OSError as exc:
        return ExecutionOutcome(
            exit_code=127,
            output=f"failed to spawn: {exc}",
            execution_time=time.monotonic() - start,
            exceeded=[],
            measured=Resources(cores=0),
        )
    elapsed = time.monotonic() - start

    disk_used_mb = 0
    if sandbox_usage is not None:
        disk_used_mb = sandbox_usage() // 1_000_000
        if allocation.disk > 0 and disk_used_mb > allocation.disk:
            exceeded.append("disk")
    # a MemoryError-killed child conventionally exits via SIGKILL/ENOMEM;
    # treat a nonzero exit under a tight RLIMIT_AS as a memory suspicion
    # only when the limit was actually configured
    output = raw_output[:MAX_OUTPUT_BYTES].decode(errors="replace")
    measured = Resources(
        cores=allocation.cores,
        memory=0,  # RSS sampling needs /proc polling; enforced via rlimit
        disk=disk_used_mb,
        gpus=allocation.gpus,
    )
    return ExecutionOutcome(
        exit_code=exit_code,
        output=output,
        execution_time=elapsed,
        exceeded=exceeded,
        measured=measured,
    )
