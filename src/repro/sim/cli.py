"""Command-line driver for the simulated experiments.

Regenerate any of the paper's evaluation scenarios without pytest::

    python -m repro.sim.cli fig9            # BLAST cold vs hot cache
    python -m repro.sim.cli fig10           # shared mini-tasks
    python -m repro.sim.cli fig11 --mode managed --limit 3
    python -m repro.sim.cli colmena
    python -m repro.sim.cli bgd --calls 500
    python -m repro.sim.cli topeft --shared-storage

Each subcommand prints the figure's headline numbers plus ASCII task
and worker views (the paper's Fig 12-style panels).
"""

from __future__ import annotations

import argparse
import sys

from repro.sim.trace import ascii_task_view, ascii_worker_view, run_summary
from repro.sim.workloads import (
    bgd_workflow,
    blast_cluster,
    blast_workflow,
    colmena_workflow,
    distribution_workflow,
    envshare_workflow,
    topeft_workflow,
)

__all__ = ["main"]


def _print_views(log, label: str, width: int = 78) -> None:
    print(f"\n--- {label}: worker view ---")
    print(ascii_worker_view(log, width=width, max_workers=16))
    summary = run_summary(log)
    print(
        f"tasks={summary['tasks']} workers={summary['workers']} "
        f"makespan={summary['makespan']:.1f}s "
        f"exec={summary['exec_fraction']:.0%} "
        f"transfer={summary['transfer_fraction']:.0%} "
        f"idle={summary['idle_fraction']:.0%}"
    )


def _cmd_fig9(args) -> None:
    cluster = blast_cluster(n_workers=args.workers)
    cold = blast_workflow(cluster, n_tasks=args.tasks, seed=0)
    hot = blast_workflow(cluster, n_tasks=args.tasks, seed=1)
    print(f"cold: {cold.makespan:.1f}s  transfers={dict(cold.transfer_counts)}")
    print(f"hot:  {hot.makespan:.1f}s  transfers={dict(hot.transfer_counts)}")
    _print_views(cold.log, "cold cache")
    _print_views(hot.log, "hot cache")


def _cmd_fig10(args) -> None:
    independent = envshare_workflow(shared=False, n_tasks=args.tasks)
    shared = envshare_workflow(shared=True, n_tasks=args.tasks)
    print(f"independent: {independent.makespan:.1f}s")
    print(
        f"shared mini-task: {shared.makespan:.1f}s "
        f"({shared.transfer_counts.get('stage', 0)} unpacks)"
    )


def _cmd_fig11(args) -> None:
    result = distribution_workflow(
        args.mode,
        n_workers=args.workers,
        limit=args.limit,
        server_bps=5e9,
        worker_bps=4e8,
        transfer_latency=1.0,
    )
    times = result.completion_times
    print(
        f"mode={args.mode} limit={args.limit}: "
        f"p50={times[len(times)//2]:.1f}s last={times[-1]:.1f}s "
        f"sources={dict(result.stats.transfer_counts)}"
    )
    _print_views(result.stats.log, f"{args.mode} distribution")


def _cmd_colmena(args) -> None:
    result = colmena_workflow(peer_transfers=not args.no_peers)
    print(
        f"shared-FS loads: {result.sharedfs_loads}, "
        f"peer transfers: {result.peer_loads}, "
        f"makespan: {result.stats.makespan:.0f}s"
    )
    _print_views(result.stats.log, "colmena")


def _cmd_bgd(args) -> None:
    result = bgd_workflow(n_calls=args.calls, n_workers=args.workers)
    ready = result.library_ready_times
    print(
        f"{args.calls} calls on {args.workers} workers: "
        f"makespan={result.stats.makespan:.0f}s, "
        f"libraries ready {ready[0]:.0f}s..{ready[-1]:.0f}s"
    )
    print("\n--- task view ---")
    print(ascii_task_view(result.stats.log, width=78, max_tasks=24))
    _print_views(result.stats.log, "bgd serverless")


def _cmd_topeft(args) -> None:
    result = topeft_workflow(
        in_cluster=not args.shared_storage,
        n_chunks=args.chunks,
        manager_bps=0.125e9,
        growth=4.0,
    )
    mode = "shared storage" if args.shared_storage else "in-cluster temps"
    print(
        f"{mode}: {result.n_tasks} tasks, makespan {result.stats.makespan:.0f}s, "
        f"{result.stats.bytes_by_source.get('retrieve', 0)/1e9:.1f} GB via manager"
    )
    _print_views(result.stats.log, mode)


def main(argv: list[str] | None = None) -> int:
    """Entry point for the simulated-experiment CLI."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig9", help="BLAST cold vs hot persistent cache")
    p.add_argument("--workers", type=int, default=100)
    p.add_argument("--tasks", type=int, default=1000)
    p.set_defaults(func=_cmd_fig9)

    p = sub.add_parser("fig10", help="independent tasks vs shared mini-tasks")
    p.add_argument("--tasks", type=int, default=1000)
    p.set_defaults(func=_cmd_fig10)

    p = sub.add_parser("fig11", help="transfer method comparison")
    p.add_argument("--mode", choices=["url", "unmanaged", "managed"], default="managed")
    p.add_argument("--limit", type=int, default=3)
    p.add_argument("--workers", type=int, default=500)
    p.set_defaults(func=_cmd_fig11)

    p = sub.add_parser("colmena", help="peer distribution of a software env")
    p.add_argument("--no-peers", action="store_true")
    p.set_defaults(func=_cmd_colmena)

    p = sub.add_parser("bgd", help="serverless BGD ramp")
    p.add_argument("--calls", type=int, default=2000)
    p.add_argument("--workers", type=int, default=200)
    p.set_defaults(func=_cmd_bgd)

    p = sub.add_parser("topeft", help="histogram accumulation tree")
    p.add_argument("--shared-storage", action="store_true")
    p.add_argument("--chunks", type=int, default=256)
    p.set_defaults(func=_cmd_topeft)

    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
