"""Textual rendering of run traces in the paper's figure idioms.

The paper's evaluation figures are (a) task views — one row per task,
showing its execution interval, sorted by start time — and (b) worker
views — one row per worker colored by activity (dark = task running,
orange = transferring, gray = idle).  These helpers render both as
ASCII timelines plus numeric series, so the benchmark harness can
print directly comparable artifacts.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import EventLog, completion_series, task_rows, worker_busy

__all__ = ["ascii_worker_view", "ascii_task_view", "run_summary", "series_table"]

#: glyphs for the worker view, mirroring the figure legend
GLYPH_EXEC = "#"      # dark blue: task running
GLYPH_TRANSFER = "~"  # orange: data transfer / staging
GLYPH_IDLE = "."      # light gray: connected but idle
GLYPH_ABSENT = " "    # not yet joined


def _paint(row: list[str], start: float, end: float, t0: float, scale: float, glyph: str, priority: dict) -> None:
    width = len(row)
    lo = max(0, int((start - t0) * scale))
    hi = min(width, int((end - t0) * scale) + 1)
    for i in range(lo, hi):
        if priority[glyph] >= priority[row[i]]:
            row[i] = glyph


def ascii_worker_view(
    log: EventLog,
    width: int = 80,
    t0: float = 0.0,
    horizon: Optional[float] = None,
    max_workers: int = 40,
) -> str:
    """Render the worker view (paper Fig. 9/10/11/12 bottom row).

    One line per worker; execution paints over transfer paints over
    idle.  ``max_workers`` rows are shown (evenly sampled) so huge
    clusters stay readable.
    """
    if horizon is None:
        horizon = max((e.time for e in log), default=1.0)
    span = max(horizon - t0, 1e-9)
    scale = width / span
    priority = {GLYPH_ABSENT: 0, GLYPH_IDLE: 1, GLYPH_TRANSFER: 2, GLYPH_EXEC: 3}
    rows: dict[str, list[str]] = {}
    join_time: dict[str, float] = {}
    opens: dict[tuple[str, str], list[float]] = {}
    glyph_of = {
        "task_start": GLYPH_EXEC,
        "transfer_start": GLYPH_TRANSFER,
        "stage_start": GLYPH_TRANSFER,
    }
    enders = {
        "task_end": "task_start",
        "transfer_end": "transfer_start",
        "stage_end": "stage_start",
    }
    for e in log:
        if e.worker is None:
            continue
        if e.worker not in rows:
            rows[e.worker] = [GLYPH_ABSENT] * width
            join_time[e.worker] = e.time
        row = rows[e.worker]
        if e.kind == "worker_join":
            join_time[e.worker] = e.time
            _paint(row, e.time, horizon, t0, scale, GLYPH_IDLE, priority)
        elif e.kind in glyph_of:
            opens.setdefault((e.worker, e.kind), []).append(e.time)
        elif e.kind in enders:
            stack = opens.get((e.worker, enders[e.kind]))
            if stack:
                start = stack.pop()
                _paint(row, start, e.time, t0, scale, glyph_of[enders[e.kind]], priority)
    # close dangling intervals at the horizon
    for (worker, kind), stack in opens.items():
        for start in stack:
            _paint(rows[worker], start, horizon, t0, scale, glyph_of[kind], priority)
    names = sorted(rows)
    if len(names) > max_workers:
        step = len(names) / max_workers
        names = [names[int(i * step)] for i in range(max_workers)]
    lines = [f"{name:>8s} |{''.join(rows[name])}|" for name in names]
    legend = f"legend: '{GLYPH_EXEC}'=executing '{GLYPH_TRANSFER}'=transfer/stage '{GLYPH_IDLE}'=idle"
    return "\n".join(lines + [legend])


def ascii_task_view(
    log: EventLog,
    width: int = 80,
    t0: float = 0.0,
    horizon: Optional[float] = None,
    max_tasks: int = 50,
) -> str:
    """Render the task view (paper Fig. 12 top row).

    One row per task (sampled), sorted by start time; the painted span
    is the execution interval.
    """
    rows = task_rows(log)
    if not rows:
        return "(no completed tasks)"
    if horizon is None:
        horizon = max(r.end for r in rows)
    span = max(horizon - t0, 1e-9)
    scale = width / span
    if len(rows) > max_tasks:
        step = len(rows) / max_tasks
        rows = [rows[int(i * step)] for i in range(max_tasks)]
    lines = []
    for r in rows:
        line = [" "] * width
        lo = max(0, int((r.start - t0) * scale))
        hi = min(width, int((r.end - t0) * scale) + 1)
        for i in range(lo, hi):
            line[i] = GLYPH_EXEC
        lines.append(f"{r.task_id:>8s} |{''.join(line)}| {r.category}")
    return "\n".join(lines)


def run_summary(log: EventLog, horizon: Optional[float] = None) -> dict:
    """Aggregate a run the way the paper's prose does.

    Returns makespan, counts, and cluster-wide busy fractions
    (execution / transfer / idle shares of total connected time).
    """
    rows = task_rows(log)
    busy = worker_busy(log, horizon=horizon)
    connected = sum(b.connected for b in busy.values()) or 1.0
    return {
        "tasks": len(rows),
        "workers": len(busy),
        "makespan": max((r.end for r in rows), default=0.0),
        "exec_fraction": sum(b.executing for b in busy.values()) / connected,
        "transfer_fraction": (
            sum(b.transferring + b.staging for b in busy.values()) / connected
        ),
        "idle_fraction": sum(b.idle for b in busy.values()) / connected,
    }


def series_table(
    log: EventLog, points: int = 20, category: Optional[str] = None
) -> str:
    """Cumulative completion curve as a printable two-column table."""
    rows = completion_series(log, points=points, category=category)
    lines = [f"{'time(s)':>10s} {'completed':>10s}"]
    for t, n in rows:
        lines.append(f"{t:10.1f} {n:10d}")
    return "\n".join(lines)
