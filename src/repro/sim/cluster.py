"""Simulated cluster: workers, the manager node, and data servers.

A :class:`SimCluster` owns the virtual-time engine, the bandwidth-shared
network, and the set of :class:`SimWorker` nodes.  Worker *caches
persist at the cluster level*, not per workflow run, which is what lets
a second workflow find a hot cache (paper Fig. 9): run two
:class:`~repro.sim.simmanager.SimManager` workflows against one cluster
and the worker-lifetime objects survive between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.files import CacheLevel
from repro.core.resources import ResourcePool, Resources
from repro.sim.engine import Simulation
from repro.sim.network import Network

__all__ = ["CacheObject", "SimWorker", "SimCluster", "MANAGER_NODE"]

#: network-node name of the manager (matches the transfer-table source key)
MANAGER_NODE = "@manager"

#: 10 Gb Ethernet, the paper's interconnect, in bytes/second
TEN_GBE = 1.25e9


@dataclass
class CacheObject:
    """One object in a worker's flat storage cache."""

    cache_name: str
    size: int
    level: CacheLevel
    last_used: float = 0.0


class SimWorker:
    """The simulator's model of one worker node.

    Owns a resource pool (cores/memory/disk/gpus for task packing), a
    flat cache of objects keyed by cache name, and the set of library
    instances currently resident.
    """

    def __init__(
        self,
        worker_id: str,
        capacity: Resources,
        disk_capacity: int,
    ) -> None:
        self.worker_id = worker_id
        self.pool = ResourcePool(capacity)
        #: bytes of local storage available for the cache
        self.disk_capacity = disk_capacity
        self.cache: dict[str, CacheObject] = {}
        #: names of libraries with a ready instance on this worker
        self.libraries: set[str] = set()
        self.joined_at: Optional[float] = None
        self.connected = False

    def cache_bytes(self) -> int:
        """Total bytes currently cached."""
        return sum(o.size for o in self.cache.values())

    def has(self, cache_name: str) -> bool:
        """True if the object is present in the cache."""
        return cache_name in self.cache

    def insert(self, cache_name: str, size: int, level: CacheLevel, now: float) -> None:
        """Add an object to the cache (idempotent for identical objects)."""
        obj = self.cache.get(cache_name)
        if obj is None:
            self.cache[cache_name] = CacheObject(cache_name, size, level, now)
        else:
            obj.last_used = now
            # a later declaration may extend the lifetime of a shared object
            if level > obj.level:
                obj.level = level

    def touch(self, cache_name: str, now: float) -> None:
        """Record a use of a cached object (for LRU eviction)."""
        obj = self.cache.get(cache_name)
        if obj is not None:
            obj.last_used = now

    def remove(self, cache_name: str) -> Optional[CacheObject]:
        """Drop an object from the cache; returns it if present."""
        return self.cache.pop(cache_name, None)


class SimCluster:
    """A set of simulated workers joined by a bandwidth-shared network."""

    def __init__(
        self,
        manager_up_bps: float = TEN_GBE,
        manager_down_bps: Optional[float] = None,
        transfer_latency: float = 0.0,
    ) -> None:
        self.sim = Simulation()
        self.network = Network(self.sim, latency=transfer_latency)
        self.network.add_node(MANAGER_NODE, manager_up_bps, manager_down_bps)
        self.workers: dict[str, SimWorker] = {}
        self._counter = 0
        #: observers notified with (worker,) when a worker joins
        self.join_callbacks: list[Callable[[SimWorker], None]] = []
        #: observers notified with (worker,) when a worker departs
        self.leave_callbacks: list[Callable[[SimWorker], None]] = []

    def add_url_server(self, host: str, up_bps: float = TEN_GBE) -> str:
        """Register a remote data server; returns its source key ``url:host``."""
        key = f"url:{host}"
        if key not in self.network.nodes:
            self.network.add_node(key, up_bps)
        return key

    def add_worker(
        self,
        cores: float = 4,
        memory: int = 16_000,
        disk: int = 100_000,
        gpus: int = 0,
        disk_capacity: Optional[int] = None,
        up_bps: float = TEN_GBE,
        down_bps: Optional[float] = None,
        at: float = 0.0,
        worker_id: Optional[str] = None,
    ) -> SimWorker:
        """Create a worker that joins the cluster at virtual time ``at``.

        ``disk`` is the schedulable task-disk resource in MB;
        ``disk_capacity`` is the cache capacity in bytes (defaults to
        ``disk`` MB converted to bytes).
        """
        self._counter += 1
        wid = worker_id or f"w{self._counter:04d}"
        if wid in self.workers:
            raise ValueError(f"duplicate worker id {wid}")
        capacity = Resources(cores=cores, memory=memory, disk=disk, gpus=gpus)
        worker = SimWorker(
            wid,
            capacity,
            disk_capacity if disk_capacity is not None else disk * 1_000_000,
        )
        self.workers[wid] = worker
        self.network.add_node(wid, up_bps, down_bps)
        self.sim.schedule_at(at, self._join, worker)
        return worker

    def add_workers(self, count: int, **kwargs) -> list[SimWorker]:
        """Convenience: add ``count`` identical workers."""
        return [self.add_worker(**kwargs) for _ in range(count)]

    def _join(self, worker: SimWorker) -> None:
        worker.connected = True
        worker.joined_at = self.sim.now
        for cb in list(self.join_callbacks):
            cb(worker)

    def remove_worker(self, worker_id: str, at: float = 0.0) -> None:
        """Schedule a worker's departure at virtual time ``at``.

        Models preemption on a shared cluster (paper §2.2: workers "may
        join and leave the system dynamically").  The worker's cache
        contents are lost; its node stays registered so in-flight model
        transfers drain harmlessly.
        """
        worker = self.workers[worker_id]
        self.sim.schedule_at(at, self._leave, worker)

    def _leave(self, worker: SimWorker) -> None:
        if not worker.connected:
            return
        worker.connected = False
        worker.cache.clear()
        worker.libraries.clear()
        for holder in list(worker.pool.holders()):
            worker.pool.release(holder)
        for cb in list(self.leave_callbacks):
            cb(worker)

    def connected_workers(self) -> list[SimWorker]:
        """Workers currently connected, in id order."""
        return [w for _, w in sorted(self.workers.items()) if w.connected]
