"""Dependency-free SVG rendering of task and worker views.

Generates the paper's figure panels (Fig. 9/10/11/12/13 styles) as
standalone SVG files straight from an :class:`~repro.core.events.EventLog`:
the *task view* (one row per task, execution interval filled) and the
*worker view* (per-worker timeline: blue = executing, orange =
transfer/stage, light gray = idle).  Pure string assembly — no plotting
library required — so figures regenerate anywhere the tests run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import EventLog, task_rows

__all__ = ["svg_task_view", "svg_worker_view"]

#: the figure legend's colors
COLOR_EXEC = "#27517c"      # dark blue: task running
COLOR_TRANSFER = "#e8833a"  # orange: data transfer / staging
COLOR_IDLE = "#d9d9d9"      # light gray: connected but idle
COLOR_BG = "#ffffff"

#: rotating palette for per-category task-view coloring
CATEGORY_PALETTE = [
    "#27517c",  # blue
    "#2e7d32",  # green
    "#b23c17",  # rust
    "#6a4c93",  # purple
    "#00838f",  # teal
    "#9e7b00",  # ochre
]


def _svg_header(width: int, height: int, title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<title>{title}</title>',
        f'<rect width="{width}" height="{height}" fill="{COLOR_BG}"/>',
    ]


def _rect(x: float, y: float, w: float, h: float, color: str) -> str:
    return (
        f'<rect x="{x:.2f}" y="{y:.2f}" width="{max(w, 0.3):.2f}" '
        f'height="{h:.2f}" fill="{color}"/>'
    )


def svg_task_view(
    log: EventLog,
    path: str,
    width: int = 800,
    row_height: int = 3,
    max_tasks: int = 300,
    t0: float = 0.0,
    horizon: Optional[float] = None,
    title: str = "task view",
    color_by_category: bool = False,
) -> str:
    """Write the task view (paper Fig. 12 top row) as an SVG file.

    Rows are tasks sorted by start time (sampled down to ``max_tasks``);
    each row's filled span is the execution interval.  With
    ``color_by_category`` each task category gets its own color (the
    figures distinguish e.g. processors from accumulators).  Returns
    ``path``.
    """
    rows = task_rows(log)
    if horizon is None:
        horizon = max((r.end for r in rows), default=1.0)
    span = max(horizon - t0, 1e-9)
    if len(rows) > max_tasks:
        step = len(rows) / max_tasks
        rows = [rows[int(i * step)] for i in range(max_tasks)]
    height = row_height * max(1, len(rows)) + 2
    scale = width / span
    parts = _svg_header(width, height, title)
    color_of: dict[str, str] = {}
    for i, r in enumerate(rows):
        if color_by_category:
            if r.category not in color_of:
                color_of[r.category] = CATEGORY_PALETTE[
                    len(color_of) % len(CATEGORY_PALETTE)
                ]
            color = color_of[r.category]
        else:
            color = COLOR_EXEC
        x = (r.start - t0) * scale
        w = (r.end - r.start) * scale
        parts.append(_rect(x, 1 + i * row_height, w, row_height * 0.85, color))
    parts.append("</svg>")
    with open(path, "w") as f:
        f.write("\n".join(parts))
    return path


def svg_worker_view(
    log: EventLog,
    path: str,
    width: int = 800,
    row_height: int = 8,
    max_workers: int = 120,
    t0: float = 0.0,
    horizon: Optional[float] = None,
    title: str = "worker view",
) -> str:
    """Write the worker view (paper Fig. 12 bottom row) as an SVG file.

    One band per worker: idle-gray from its join time, with orange
    transfer/stage intervals and blue execution intervals painted on
    top.  Returns ``path``.
    """
    if horizon is None:
        horizon = max((e.time for e in log), default=1.0)
    span = max(horizon - t0, 1e-9)
    scale = width / span
    joins: dict[str, float] = {}
    spans: dict[str, dict[str, list[tuple[float, float]]]] = {}
    opens: dict[tuple[str, str], list[float]] = {}
    kind_of = {
        "task_start": "exec",
        "transfer_start": "move",
        "stage_start": "move",
    }
    enders = {
        "task_end": "task_start",
        "transfer_end": "transfer_start",
        "stage_end": "stage_start",
    }
    for e in log:
        if e.worker is None:
            continue
        if e.kind == "worker_join":
            joins.setdefault(e.worker, e.time)
        elif e.kind in kind_of:
            joins.setdefault(e.worker, e.time)
            opens.setdefault((e.worker, kind_of[e.kind]), []).append(e.time)
        elif e.kind in enders:
            stack = opens.get((e.worker, kind_of[enders[e.kind]]))
            if stack:
                start = stack.pop()
                spans.setdefault(e.worker, {}).setdefault(
                    kind_of[enders[e.kind]], []
                ).append((start, e.time))
    for (worker, kind), stack in opens.items():
        for start in stack:
            spans.setdefault(worker, {}).setdefault(kind, []).append((start, horizon))

    workers = sorted(joins)
    if len(workers) > max_workers:
        step = len(workers) / max_workers
        workers = [workers[int(i * step)] for i in range(max_workers)]
    height = row_height * max(1, len(workers)) + 2
    parts = _svg_header(width, height, title)
    for i, worker in enumerate(workers):
        y = 1 + i * row_height
        h = row_height * 0.85
        join_x = (joins[worker] - t0) * scale
        parts.append(_rect(join_x, y, width - join_x, h, COLOR_IDLE))
        for kind, color in (("move", COLOR_TRANSFER), ("exec", COLOR_EXEC)):
            for start, end in spans.get(worker, {}).get(kind, []):
                x = (start - t0) * scale
                parts.append(_rect(x, y, (end - start) * scale, h, color))
    parts.append("</svg>")
    with open(path, "w") as f:
        f.write("\n".join(parts))
    return path
