"""Workload builders reproducing the paper's evaluation scenarios.

Each function constructs and executes one of the paper's experiments on
a simulated cluster and returns its :class:`~repro.sim.simmanager.SimRunStats`
(plus experiment-specific extras).  Sizes, durations, and scales default
to the paper's numbers but every knob is a parameter so the benchmark
harness can also run scaled-down versions quickly.

Experiment ↔ figure map:

* :func:`blast_workflow` — Fig. 9 (cold vs hot persistent cache)
* :func:`envshare_workflow` — Fig. 10 (independent vs shared mini-tasks)
* :func:`distribution_workflow` — Fig. 11 (transfer methods for common data)
* :func:`topeft_workflow` — Fig. 12 a/d and Fig. 13 (in-cluster vs shared storage)
* :func:`colmena_workflow` — Fig. 12 b/e (peer distribution of a software env)
* :func:`bgd_workflow` — Fig. 12 c/f (serverless ramp-up)

Beyond the paper's figures, :func:`streaming_genome_workload` drives a
1000-genome-style wide fan-out/fan-in as a *continuous arrival stream*
(jobs land at Poisson or trace-driven times, not as one batch), and
:class:`Autoscaler` + :class:`SimAutoscaleDriver` grow/shrink the
simulated fleet against ready-queue depth — the elastic-cluster
scenarios of ROADMAP item 5.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.core.library import FunctionCall
from repro.core.resources import Resources
from repro.core.task import Task
from repro.sim.cluster import SimCluster, TEN_GBE
from repro.sim.simmanager import SimManager, SimRunStats

__all__ = [
    "blast_cluster",
    "blast_workflow",
    "envshare_workflow",
    "distribution_workflow",
    "topeft_workflow",
    "colmena_workflow",
    "bgd_workflow",
    "StreamingResult",
    "streaming_arrivals",
    "streaming_genome_workload",
    "Autoscaler",
    "SimAutoscaleDriver",
]

MB = 1_000_000


# ---------------------------------------------------------------------------
# Fig. 9 — BLAST with persistent caching
# ---------------------------------------------------------------------------

def blast_cluster(n_workers: int = 100, cores: int = 4) -> SimCluster:
    """The Fig. 9 cluster: 100 4-core workers on 10 GbE."""
    cluster = SimCluster()
    cluster.add_workers(n_workers, cores=cores, disk=200_000)
    return cluster


def blast_workflow(
    cluster: SimCluster,
    n_tasks: int = 1000,
    software_mb: int = 610,
    db_mb: int = 500,
    unpack_time: float = 30.0,
    mean_task_time: float = 30.0,
    seed: int = 0,
) -> SimRunStats:
    """One BLAST run: software + DB tarballs from an archive, unpacked
    once per worker, shared by every query task (paper Fig. 3).

    Run twice against the same cluster for the cold/hot comparison —
    all big assets are ``worker``-lifetime, so the second run finds
    them cached.
    """
    rng = random.Random(seed)
    m = SimManager(cluster, seed=seed)
    software_url = m.declare_url(
        "https://archive.example/blast.tar.gz", software_mb * MB, cache="worker"
    )
    software = m.declare_untar(
        software_url, unpacked_size=3 * software_mb * MB,
        stage_time=unpack_time, cache="worker",
    )
    db_url = m.declare_url(
        "https://archive.example/landmark.tar.gz", db_mb * MB, cache="worker"
    )
    database = m.declare_untar(
        db_url, unpacked_size=2 * db_mb * MB, stage_time=unpack_time, cache="worker"
    )
    for i in range(n_tasks):
        query = m.declare_dataset(f"query-{i}", 2_000, cache="task")
        t = Task("blast/bin/blast -db landmark -q query").set_category("blast")
        t.add_input(query, "query")
        t.add_input(software, "blast")
        t.add_input(database, "landmark")
        t.set_env("BLASTDB", "landmark")
        m.submit(t, duration=rng.expovariate(1.0 / mean_task_time) + 5.0)
    return m.run()


# ---------------------------------------------------------------------------
# Fig. 10 — independent tasks vs shared mini-tasks
# ---------------------------------------------------------------------------

def envshare_workflow(
    shared: bool,
    n_tasks: int = 1000,
    n_workers: int = 50,
    cores: int = 4,
    env_mb: int = 610,
    unpack_time: float = 30.0,
    task_time: float = 10.0,
    seed: int = 0,
) -> SimRunStats:
    """The Fig. 10 experiment: 1000 sleep-10s tasks needing a 610 MB env.

    ``shared=True`` declares one unpack mini-task whose product every
    task mounts (unpacked once per worker); ``shared=False`` gives each
    task its own logically distinct expansion, so every task pays the
    unpack (the tarball itself is still cached per worker — TaskVine
    cannot dedup work the user declared as distinct).
    """
    cluster = SimCluster()
    cluster.add_workers(n_workers, cores=cores, disk=2_000_000)
    m = SimManager(cluster, seed=seed)
    tarball = m.declare_dataset("env.tar.gz", env_mb * MB, cache="workflow")
    shared_env = None
    if shared:
        shared_env = m.declare_untar(
            tarball, unpacked_size=3 * env_mb * MB, stage_time=unpack_time
        )
    for i in range(n_tasks):
        t = Task("app --sleep").set_category("sleep")
        if shared:
            t.add_input(shared_env, "env")
            m.submit(t, duration=task_time)
        else:
            # expansion is part of the task itself: same unpack cost,
            # paid inside every task execution
            t.add_input(tarball, "env.tar.gz")
            m.submit(t, duration=task_time + unpack_time)
    return m.run()


# ---------------------------------------------------------------------------
# Fig. 11 — transfer methods for common data
# ---------------------------------------------------------------------------

@dataclass
class DistributionResult:
    """Fig. 11 outcome: per-task completion times for one policy."""

    stats: SimRunStats
    completion_times: list[float]

    @property
    def makespan(self) -> float:
        return max(self.completion_times) if self.completion_times else 0.0


def distribution_workflow(
    mode: str,
    n_workers: int = 500,
    file_mb: int = 200,
    limit: Optional[int] = 3,
    server_bps: float = TEN_GBE,
    worker_bps: float = TEN_GBE,
    transfer_latency: float = 0.0,
    seed: int = 0,
) -> DistributionResult:
    """Distribute one common file to every worker (paper Fig. 11).

    Modes:

    * ``"url"`` — every worker downloads from the remote URL
      independently (Fig. 11a): peer transfers disabled.
    * ``"unmanaged"`` — worker-to-worker transfers with **no**
      concurrency limit (Fig. 11b): the first replica holder becomes a
      hotspot.
    * ``"managed"`` — worker-to-worker transfers with a per-source
      limit (Fig. 11c; the paper found 3 slightly better than 2 or 4).
    """
    cluster = SimCluster(transfer_latency=transfer_latency)
    cluster.add_workers(n_workers, cores=1, disk=10_000_000, up_bps=worker_bps)
    if mode == "url":
        m = SimManager(
            cluster, worker_transfer_limit=0, source_transfer_limit=None, seed=seed
        )
    elif mode == "unmanaged":
        m = SimManager(
            cluster, worker_transfer_limit=None, source_transfer_limit=1, seed=seed
        )
    elif mode == "managed":
        m = SimManager(
            cluster, worker_transfer_limit=limit, source_transfer_limit=1, seed=seed
        )
    else:
        raise ValueError(f"unknown mode {mode!r}")
    data = m.declare_url(
        "https://data.example/common.bin", file_mb * MB, server_bps=server_bps
    )
    tasks = []
    for _ in range(n_workers):
        t = Task("consume common.bin").set_category("consume")
        t.add_input(data, "common.bin")
        tasks.append(t)
        m.submit(t, duration=1.0)
    stats = m.run()
    completions = sorted(t.finished_at - stats.started for t in tasks)
    return DistributionResult(stats=stats, completion_times=completions)


# ---------------------------------------------------------------------------
# Fig. 12 a/d + Fig. 13 — TopEFT
# ---------------------------------------------------------------------------

@dataclass
class TopEFTResult:
    """TopEFT run outcome with reduction-tree bookkeeping."""

    stats: SimRunStats
    n_tasks: int
    final_output_bytes: int


def topeft_workflow(
    in_cluster: bool = True,
    n_chunks: int = 256,
    fan_in: int = 8,
    n_workers: int = 64,
    cores: int = 4,
    real_fraction: float = 0.2,
    chunk_mb: float = 50.0,
    hist_mb: float = 4.0,
    growth: float = 2.0,
    process_time: float = 30.0,
    mc_multiplier: float = 2.0,
    worker_ramp: float = 0.0,
    manager_bps: Optional[float] = None,
    seed: int = 0,
) -> TopEFTResult:
    """The TopEFT analysis shape: process chunks → accumulate up a tree.

    ``in_cluster=True`` keeps partial histograms as TempFiles at the
    workers (Fig. 13b); ``False`` returns every output to the manager
    and re-distributes it for accumulation (Fig. 13a, "shared
    storage").  Accumulation outputs grow by ``growth`` per tree level,
    reproducing the paper's exponentially growing accumulations.
    ``worker_ramp`` > 0 staggers worker arrival (Fig. 12d).
    ``manager_bps`` caps the manager/head-node link (the shared-storage
    bottleneck of Fig. 13a).
    """
    rng = random.Random(seed)
    cluster = SimCluster(
        manager_up_bps=manager_bps if manager_bps is not None else TEN_GBE,
        manager_down_bps=manager_bps,
    )
    for i in range(n_workers):
        cluster.add_worker(
            cores=cores, disk=2_000_000, at=i * worker_ramp
        )
    m = SimManager(cluster, seed=seed)

    def declare_partial(size: int):
        if in_cluster:
            return m.declare_temp(size=size)
        return m.declare_output(size=size, bring_back=True)

    n_tasks = 0
    # processing: one task per chunk, outputs one partial histogram set
    partials = []
    n_real = int(n_chunks * real_fraction)
    for i in range(n_chunks):
        is_real = i < n_real
        dataset = m.declare_dataset(
            f"chunk-{i}", int(chunk_mb * MB), cache="workflow"
        )
        out = declare_partial(int(hist_mb * MB))
        t = Task(f"process chunk {i}")
        t.set_category("process-data" if is_real else "process-mc")
        if not is_real:
            t.set_resources(Resources(cores=1, memory=2000))
        t.add_input(dataset, "events")
        t.add_output(out, "hists")
        duration = rng.expovariate(1.0 / process_time) + 5.0
        if not is_real:
            duration *= mc_multiplier
        m.submit(t, duration=duration)
        partials.append(out)
        n_tasks += 1

    # accumulation tree: merge fan_in partials per task, level by level
    level = 0
    size = hist_mb * MB
    while len(partials) > 1:
        level += 1
        size *= growth
        merged_level = []
        for j in range(0, len(partials), fan_in):
            group = partials[j : j + fan_in]
            if len(group) == 1:
                merged_level.append(group[0])
                continue
            out = declare_partial(int(size))
            t = Task(f"accumulate L{level}.{j}").set_category("accumulate")
            for idx, p in enumerate(group):
                t.add_input(p, f"part{idx}")
            t.add_output(out, "merged")
            m.submit(t, duration=5.0 + 2.0 * len(group))
            merged_level.append(out)
            n_tasks += 1
        partials = merged_level

    stats = m.run()
    return TopEFTResult(
        stats=stats, n_tasks=n_tasks, final_output_bytes=int(size)
    )


# ---------------------------------------------------------------------------
# Fig. 12 b/e — Colmena-XTB
# ---------------------------------------------------------------------------

@dataclass
class ColmenaResult:
    """Colmena run outcome with shared-filesystem load accounting."""

    stats: SimRunStats
    #: transfers served by the shared filesystem (the paper's 108 vs 3)
    sharedfs_loads: int
    peer_loads: int


def colmena_workflow(
    peer_transfers: bool = True,
    n_inference: int = 228,
    n_simulation: int = 1000,
    n_workers: int = 108,
    cores: int = 4,
    env_mb: int = 1400,
    unpack_time: float = 60.0,
    inference_time: float = 15.0,
    simulation_time: float = 120.0,
    sharedfs_bps: float = 5e9,
    seed: int = 0,
) -> ColmenaResult:
    """The Colmena-XTB shape: every task needs one 1.4 GB software env.

    With ``peer_transfers`` the tarball is fetched from the shared
    filesystem a handful of times and then spread worker-to-worker
    (limit 3/source); without, every worker hits the shared FS.
    """
    rng = random.Random(seed)
    cluster = SimCluster()
    cluster.add_workers(n_workers, cores=cores, disk=4_000_000)
    # with peer transfers on, the shared filesystem is also throttled to
    # 3 concurrent reads — that is what forces the remaining workers to
    # wait for peers and yields the paper's 108 → 3 shared-FS load drop;
    # without, every worker hits the shared FS directly
    m = SimManager(
        cluster,
        worker_transfer_limit=3 if peer_transfers else 0,
        source_transfer_limit=3 if peer_transfers else None,
        seed=seed,
    )
    env_url = m.declare_url(
        "https://sharedfs/colmena-env.tar.gz", env_mb * MB,
        cache="workflow", server_bps=sharedfs_bps,
    )
    env = m.declare_untar(
        env_url, unpacked_size=3 * env_mb * MB, stage_time=unpack_time
    )
    for i in range(n_inference):
        t = Task(f"inference {i}").set_category("inference")
        t.add_input(env, "env")
        m.submit(t, duration=rng.expovariate(1.0 / inference_time) + 2.0)
    for i in range(n_simulation):
        t = Task(f"simulation {i}").set_category("simulation")
        t.add_input(env, "env")
        m.submit(t, duration=rng.expovariate(1.0 / simulation_time) + 10.0)
    stats = m.run()
    return ColmenaResult(
        stats=stats,
        sharedfs_loads=stats.transfer_counts.get("url", 0),
        peer_loads=stats.transfer_counts.get("peer", 0),
    )


# ---------------------------------------------------------------------------
# Fig. 12 c/f — BGD serverless
# ---------------------------------------------------------------------------

@dataclass
class BGDSimResult:
    """BGD serverless run outcome."""

    stats: SimRunStats
    first_call_started: float
    library_ready_times: list[float]


def bgd_workflow(
    n_calls: int = 2000,
    n_workers: int = 200,
    cores: int = 4,
    env_mb: int = 89,
    library_startup: float = 20.0,
    call_time_range: tuple[float, float] = (50.0, 100.0),
    function_slots: int = 3,
    seed: int = 0,
) -> BGDSimResult:
    """The BGD shape: 2000 FunctionCalls through per-worker libraries.

    Library instances deploy (env transfer + startup) before any call
    can run; FunctionCall throughput ramps as instances come up and
    peaks once all workers host one (paper Fig. 12c/f).
    """
    rng = random.Random(seed)
    cluster = SimCluster()
    cluster.add_workers(n_workers, cores=cores, disk=2_000_000)
    m = SimManager(cluster, seed=seed)
    env = m.declare_dataset("bgd-env.tar.gz", env_mb * MB, cache="workflow")
    m.create_library(
        "bgd",
        env_files=[env],
        resources=Resources(cores=1),
        startup_time=library_startup,
        slots=function_slots,
    )
    m.install_library("bgd")
    calls = []
    lo, hi = call_time_range
    for i in range(n_calls):
        fc = FunctionCall("bgd", "gradient_descent", i)
        calls.append(fc)
        m.submit(fc, duration=rng.uniform(lo, hi))
    stats = m.run()
    ready = sorted(
        e.time - stats.started for e in stats.log.events("library_ready")
    )
    first = min((fc.started_at for fc in calls if fc.started_at is not None), default=0.0)
    return BGDSimResult(
        stats=stats,
        first_call_started=first - stats.started,
        library_ready_times=ready,
    )


# ---------------------------------------------------------------------------
# Elastic clusters: continuous-arrival streaming + autoscaling (ROADMAP 5a/5c)
# ---------------------------------------------------------------------------

@dataclass
class StreamingResult:
    """Outcome of one continuous-arrival streaming run."""

    stats: SimRunStats
    jobs: int
    #: virtual times each job arrived (was submitted)
    arrival_times: list[float]
    #: virtual time each job's merge output landed, by job index
    job_completions: list[float]
    #: merge-output cache name and size per job — the run's "outputs":
    #: same seed ⇒ same names, so two runs (static vs elastic fleet)
    #: are compared for identical products with these
    outputs: list[tuple[str, int]]


def streaming_arrivals(
    n_jobs: int, mean_interarrival: float, seed: int
) -> list[float]:
    """Seeded Poisson arrival times for ``n_jobs`` (strictly increasing)."""
    rng = random.Random(f"{seed}:arrivals")
    times, t = [], 0.0
    for _ in range(n_jobs):
        t += rng.expovariate(1.0 / mean_interarrival)
        times.append(t)
    return times


def streaming_genome_workload(
    m: SimManager,
    n_jobs: int = 20,
    fanout: int = 8,
    mean_interarrival: float = 10.0,
    input_mb: float = 8.0,
    partial_mb: float = 2.0,
    task_time: float = 12.0,
    merge_time: float = 6.0,
    seed: int = 0,
    arrivals: Optional[list[float]] = None,
    until: Optional[float] = None,
) -> StreamingResult:
    """A 1000-genome-style stream: wide fan-out/fan-in jobs arriving
    continuously (SNIPPETS.md Snippet 1 shape, driven as a stream).

    Each job is ``fanout`` independent alignment tasks over a shared
    per-job input, their partial outputs merged by one fan-in task.
    Jobs are submitted at Poisson arrival times (or an explicit
    ``arrivals`` trace) through the sim clock — the manager sees a
    living service workload, not a batch.  All per-job randomness is
    scoped to ``(seed, job index)``, so the task stream is identical
    regardless of fleet size or membership churn: two runs with the
    same seed produce the same outputs, which is what the elastic
    scenario tests assert.

    ``m`` is a ready :class:`SimManager` (fault injectors and
    autoscale drivers attach before this call).
    """
    times = (
        list(arrivals)
        if arrivals is not None
        else streaming_arrivals(n_jobs, mean_interarrival, seed)
    )
    if len(times) != n_jobs:
        raise ValueError("arrivals trace length must match n_jobs")
    completions: list[float] = [0.0] * n_jobs
    outputs: list[tuple[str, int]] = [("", 0)] * n_jobs

    def submit_job(i: int) -> None:
        m.pending_arrivals -= 1
        rng = random.Random(f"{seed}:job{i}")
        genome = m.declare_dataset(
            f"genome-{i}", int(input_mb * MB), cache="workflow"
        )
        partials = []
        for k in range(fanout):
            part = m.declare_temp(size=int(partial_mb * MB))
            t = Task(f"align job{i}.{k}").set_category("align")
            t.add_input(genome, "genome")
            t.add_output(part, "part")
            m.submit(t, duration=rng.expovariate(1.0 / task_time) + 1.0)
            partials.append(part)
        merged = m.declare_temp(size=int(partial_mb * MB * fanout))
        mt = Task(f"merge job{i}").set_category("merge")
        for idx, p in enumerate(partials):
            mt.add_input(p, f"part{idx}")
        mt.add_output(merged, "merged")
        m.submit(mt, duration=rng.expovariate(1.0 / merge_time) + 1.0)
        merge_tasks.append((i, mt, merged))

    merge_tasks: list[tuple[int, Task, object]] = []
    m.pending_arrivals += n_jobs
    for i, at in enumerate(times):
        m.sim.schedule_at(at, submit_job, i)
    stats = m.run(until=until)
    for i, mt, merged in merge_tasks:
        if mt.finished_at is not None:
            completions[i] = mt.finished_at
            outputs[i] = (merged.cache_name, merged.size or 0)
    return StreamingResult(
        stats=stats,
        jobs=n_jobs,
        arrival_times=times,
        job_completions=completions,
        outputs=outputs,
    )


class Autoscaler:
    """Fleet-size policy: target workers as a function of queue depth.

    Pure and runtime-agnostic — both :class:`SimAutoscaleDriver` and
    the ``repro-service`` daemon's fleet thread evaluate it.  The
    target is ``ceil(ready_depth / tasks_per_worker)`` clamped to
    ``[min_workers, max_workers]``; scale-up is prompt (queued work is
    waiting), scale-down only fires when the fleet exceeds the target
    by the hysteresis band, and any decision starts a cooldown that
    suppresses further ones — the classic anti-flap pair.
    """

    def __init__(
        self,
        min_workers: int = 1,
        max_workers: int = 32,
        tasks_per_worker: float = 4.0,
        hysteresis: float = 0.25,
        cooldown: float = 30.0,
    ) -> None:
        if min_workers < 1 or max_workers < min_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if tasks_per_worker <= 0:
            raise ValueError("tasks_per_worker must be positive")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.tasks_per_worker = tasks_per_worker
        self.hysteresis = hysteresis
        self.cooldown = cooldown
        self._last_action: Optional[float] = None

    def target(self, ready_depth: int) -> int:
        """The clamped ideal fleet size for one queue-depth sample."""
        want = math.ceil(ready_depth / self.tasks_per_worker)
        return max(self.min_workers, min(self.max_workers, want))

    def decide(self, now: float, ready_depth: int, current: int) -> int:
        """Workers to add (>0), drain (<0), or leave alone (0)."""
        if (
            self._last_action is not None
            and now - self._last_action < self.cooldown
        ):
            return 0
        want = self.target(ready_depth)
        delta = want - current
        if delta > 0:
            delta = min(delta, self.max_workers - current)
        elif delta < 0:
            # hysteresis: tolerate a modest surplus before draining
            band = max(1, int(self.hysteresis * max(current, 1)))
            if current - want < band:
                return 0
            delta = max(delta, self.min_workers - current)
        if delta != 0:
            self._last_action = now
        return delta


class SimAutoscaleDriver:
    """Applies an :class:`Autoscaler` to a simulated cluster.

    Samples ready-queue depth every ``interval`` virtual seconds;
    scale-up adds workers to the cluster, scale-down gracefully drains
    the emptiest ones (fewest running tasks, then fewest cached bytes)
    through :meth:`ControlPlane.drain_worker`.  Every decision lands in
    the transaction log as an ``autoscale`` event.
    """

    def __init__(
        self,
        manager: SimManager,
        policy: Autoscaler,
        interval: float = 5.0,
        cores: int = 4,
        memory: int = 16_000,
        disk: int = 100_000,
        prefix: str = "auto",
    ) -> None:
        self.m = manager
        self.policy = policy
        self.interval = interval
        self.cores = cores
        self.memory = memory
        self.disk = disk
        self.prefix = prefix
        self._spawned = 0
        self.joins = 0
        self.drains = 0
        manager.sim.schedule(interval, self._tick)

    def _fleet(self) -> list:
        draining = self.m.control.draining
        return [
            w
            for w in self.m.cluster.connected_workers()
            if w.worker_id not in draining
        ]

    def _tick(self) -> None:
        if self.m._crashed:
            return
        control = self.m.control
        fleet = self._fleet()
        delta = self.policy.decide(
            self.m.sim.now, control.ready_depth, len(fleet)
        )
        if delta > 0:
            control.record_autoscale("up", delta)
            for _ in range(delta):
                self._spawned += 1
                self.m.cluster.add_worker(
                    worker_id=f"{self.prefix}{self._spawned:03d}",
                    cores=self.cores,
                    memory=self.memory,
                    disk=self.disk,
                    at=self.m.sim.now,
                )
                self.joins += 1
        elif delta < 0:
            control.record_autoscale("down", -delta)
            victims = sorted(
                fleet,
                key=lambda w: (
                    len(control.workers[w.worker_id].running)
                    if w.worker_id in control.workers
                    else 0,
                    control.replicas.bytes_at(w.worker_id),
                    w.worker_id,
                ),
            )
            for w in victims[: -delta]:
                if control.drain_worker(w.worker_id):
                    self.drains += 1
        self.m.sim.schedule(self.interval, self._tick)
