"""Discrete-event simulation core.

A minimal, deterministic event loop: callbacks are scheduled at virtual
times and executed in (time, insertion order).  The simulated cluster
(:mod:`repro.sim.cluster`), network (:mod:`repro.sim.network`), and
manager (:mod:`repro.sim.simmanager`) all share one
:class:`Simulation`, so a 500-worker, multi-hour workflow executes in
milliseconds of real time with fully reproducible timings.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

__all__ = ["Simulation", "EventHandle"]


class EventHandle:
    """A scheduled callback that can be cancelled before it fires."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulation:
    """A deterministic virtual-time event loop."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[EventHandle] = []
        self._seq = itertools.count()

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds.

        ``delay`` must be non-negative; a zero delay runs after all
        events already scheduled for the current instant (FIFO within a
        timestamp).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        handle = EventHandle(self.now + delay, next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback, *args)

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        max_events: int = 50_000_000,
    ) -> float:
        """Process events until the queue drains (or a bound is hit).

        ``until`` bounds virtual time; ``stop_when`` is checked after
        every callback; ``max_events`` guards against runaway loops.
        Returns the virtual time when the run stopped.
        """
        processed = 0
        while self._queue:
            if self._queue[0].cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and self._queue[0].time > until:
                self.now = until
                return self.now
            event = heapq.heappop(self._queue)
            self.now = event.time
            event.callback(*event.args)
            processed += 1
            if stop_when is not None and stop_when():
                return self.now
            if processed >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled events."""
        return sum(1 for e in self._queue if not e.cancelled)
