"""Simulated TaskVine manager: discrete-event adapter over the control plane.

:class:`SimManager` mirrors the real manager's API (declare files,
submit tasks, install libraries, run) but executes against a
:class:`~repro.sim.cluster.SimCluster`.  Crucially it drives the *same*
policy engine as the real runtime — the shared
:class:`~repro.core.control_plane.ControlPlane` over
:class:`~repro.core.scheduler.Scheduler`,
:class:`~repro.core.replica_table.ReplicaTable`,
:class:`~repro.core.transfer_table.TransferTable` and
:mod:`repro.core.gc` — so the figure benchmarks exercise exactly the
policies the paper evaluates.  This module only provides virtual-time
*mechanisms* as a :class:`~repro.core.control_plane.RuntimePort`:
simulated byte movement over :class:`~repro.sim.network.SimNetwork`,
scheduled execution/staging/startup delays, and simulated cache
insertion with capacity eviction.  Any behavioural change belongs in
``control_plane.py``, never here.

Simulation-specific file declarations carry explicit sizes (and stage
times for mini tasks) instead of real content; tasks carry explicit
durations.  Everything else — placement, peer transfer selection,
per-source concurrency limits, caching, eviction, garbage collection,
retry/replication/regeneration — is the production logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.control_plane import (
    MINITASK_SOURCE,
    NO_SOURCE,
    ControlPlane,
    LibraryState,
    StagingJob,
)
from repro.core.events import EventLog, makespan
from repro.core.files import CacheLevel, File, MiniTaskFile, TempFile, URLFile
from repro.core.gc import CacheEntryInfo, collect_workflow, plan_eviction
from repro.core.naming import Namer, task_merkle
from repro.core.resources import Resources
from repro.core.task import MiniTask, Task, TaskResult, TaskState
from repro.core.transfer_table import MANAGER_SOURCE, Transfer
from repro.observe.txnlog import TransactionLogWriter
from repro.sim.cluster import MANAGER_NODE, SimCluster, SimWorker
from repro.util.hashing import hash_bytes

__all__ = ["SimManager", "SimLibrary", "SimRunStats", "NO_SOURCE"]


@dataclass
class _FileMeta:
    """Simulation metadata for one cache name."""

    size: int
    stage_time: float = 0.0
    mini: Optional[MiniTaskFile] = None


class _SimFetch:
    """One in-flight on-demand result fetch (sim mirror of the real
    manager's ``_FetchState``): callbacks waiting on the payload, the
    holder currently serving (None while parked on regeneration), and
    the holders already tried."""

    __slots__ = ("callbacks", "asked", "tried")

    def __init__(self) -> None:
        self.callbacks: list = []
        self.asked: Optional[str] = None
        self.tried: set[str] = set()


class SimLibrary(LibraryState):
    """Control-plane library state plus the simulated startup delay."""

    def __init__(
        self,
        name: str,
        env_files: Sequence[File] = (),
        resources: Optional[Resources] = None,
        startup_time: float = 1.0,
        slots: int = 1,
    ) -> None:
        super().__init__(name, env_files, resources, slots)
        self.startup_time = startup_time

    @property
    def deployments(self) -> dict[str, str]:
        """Worker id -> deployment phase (alias of the shared state)."""
        return self.state


@dataclass
class SimRunStats:
    """Outcome of one simulated workflow run."""

    started: float
    finished: float
    tasks_done: int
    log: EventLog
    #: completed transfer counts by source kind: "peer", "manager", "url"
    transfer_counts: dict[str, int]
    bytes_by_source: dict[str, float]
    evictions: int

    @property
    def makespan(self) -> float:
        """Virtual seconds from run start to workflow completion."""
        return self.finished - self.started


class SimManager:
    """One workflow run executing on a simulated cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        worker_transfer_limit: Optional[int] = 3,
        source_transfer_limit: Optional[int] = 100,
        locality: bool = True,
        seed: int = 0,
        run_nonce: Optional[str] = None,
        temp_replica_count: int = 1,
        max_task_retries: int = 3,
        txn_log_path: Optional[str] = None,
        transfer_backoff_base: float = 0.5,
        requeue_backoff_base: float = 0.0,
        blocklist_threshold: int = 5,
        fair_share: bool = True,
        memo_dir: Optional[str] = None,
        memo_store=None,
        memo_opt_out: Optional[Sequence[str]] = None,
        journal_dir: Optional[str] = None,
        journal_snapshot_every: int = 1024,
        recovery_grace: float = 10.0,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network
        self.namer = Namer(seed=seed, run_nonce=run_nonce)
        # stable pseudo-headers: URL content never changes inside a sim
        def _sim_headers(url: str) -> dict:
            return {"ETag": f"sim:{url}"}

        self.namer.header_fetcher = _sim_headers
        #: persistent memoization store shared across simulated runs —
        #: pass an existing ``MemoStore`` (several SimManagers over one
        #: cluster) or a directory to open one; validation in the sim is
        #: replica-backed only (no real bytes exist to retain)
        self.memo_store = memo_store
        if self.memo_store is None and memo_dir is not None:
            from repro.memo.store import MemoStore

            self.memo_store = MemoStore(memo_dir)
        #: durable write-ahead journal shared with the real runtime; a
        #: new SimManager over the same directory models a restarted
        #: manager process recovering mid-workflow
        self.journal = None
        if journal_dir is not None:
            from repro.core.journal import ControlPlaneJournal

            self.journal = ControlPlaneJournal(
                journal_dir, snapshot_every=journal_snapshot_every
            )
        self.control = ControlPlane(
            self,
            worker_transfer_limit=worker_transfer_limit,
            source_transfer_limit=source_transfer_limit,
            locality=locality,
            temp_replica_count=temp_replica_count,
            loss_retries=max_task_retries,
            strict_loss=True,
            transfer_backoff_base=transfer_backoff_base,
            requeue_backoff_base=requeue_backoff_base,
            blocklist_threshold=blocklist_threshold,
            rng_seed=seed,
            fair_share=fair_share,
            memo=self.memo_store,
            memo_opt_out=memo_opt_out,
            journal=self.journal,
        )
        #: installed by :class:`repro.faults.sim.SimFaultInjector`; when
        #: set, every outbound transfer asks it for an injected verdict
        self.fault_injector = None
        self.max_task_retries = max_task_retries
        #: same telemetry artifact as the real manager's, in virtual time
        self._txn_writer: Optional[TransactionLogWriter] = None
        if txn_log_path is not None:
            # a recovering manager appends a new @header segment so the
            # crashed life's events stay in place (same as the real one)
            self._txn_writer = TransactionLogWriter(
                txn_log_path,
                runtime="sim",
                resume=self.journal is not None and self.journal.recovered,
            )
            self.control.log.attach(self._txn_writer)

        self.meta: dict[str, _FileMeta] = {}
        self._retrieval_pending: dict[str, int] = {}
        #: cache_name -> in-flight on-demand result fetch
        self._fetch_states: dict[str, _SimFetch] = {}
        self.evictions = 0
        self._pump_scheduled = False
        self._finalized = False
        #: future arrivals a streaming driver has scheduled but not yet
        #: submitted; run() must not mistake an arrival gap (everything
        #: submitted so far done, more on the way) for completion
        self.pending_arrivals = 0
        #: set by :meth:`crash`; every scheduled callback belonging to
        #: this manager life becomes a no-op once it is set
        self._crashed = False
        #: True when this life restored state journaled by a prior one
        self.recovered = False
        if self.journal is not None:
            if self.control.restore_from_journal():
                self.recovered = True
                # rebuild the sim-only size metadata from restored state
                for name, size in self.control.sizes.items():
                    self.meta.setdefault(name, _FileMeta(size=size))
                # hold placements until the workers the journal knew
                # about rejoin (their caches re-adopt) or grace ends
                self.control.begin_recovery(recovery_grace)
            self.journal.record_meta(project="sim")

        # adopt pre-existing worker-level cache contents (hot cache, Fig 9)
        for worker in cluster.workers.values():
            if worker.connected:
                self._join(worker)
            else:
                for name, size in self._adoptable_cache(worker):
                    self.control.adopt_replica(worker.worker_id, name, size)
        cluster.join_callbacks.append(self._on_worker_join)
        cluster.leave_callbacks.append(self._on_worker_leave)

    # -- control-plane state views (single source of truth) --------------

    @property
    def registry(self):
        return self.control.registry

    @property
    def replicas(self):
        return self.control.replicas

    @property
    def transfers(self):
        return self.control.transfers

    @property
    def scheduler(self):
        return self.control.scheduler

    @property
    def log(self):
        return self.control.log

    @property
    def metrics(self):
        return self.control.metrics

    @property
    def tasks(self):
        return self.control.tasks

    @property
    def fixed_sources(self):
        return self.control.fixed_sources

    @property
    def libraries(self):
        return self.control.libraries

    @property
    def tasks_requeued(self) -> int:
        return self.control.tasks_requeued

    @property
    def temp_replica_count(self) -> int:
        return self.control.temp_replica_count

    # ------------------------------------------------------------------
    # RuntimePort: virtual-time mechanisms behind the control plane
    # ------------------------------------------------------------------

    def now(self) -> float:
        return self.sim.now

    def worker_connected(self, worker_id: str) -> bool:
        worker = self.cluster.workers.get(worker_id)
        return worker is not None and worker.connected

    def request_pump(self) -> None:
        """Coalesce pump requests into one zero-delay event."""
        if self._crashed:
            return
        if not self._pump_scheduled:
            self._pump_scheduled = True
            self.sim.schedule(0.0, self._fire_coalesced_pump)

    def _fire_coalesced_pump(self) -> None:
        self._pump_scheduled = False
        if self._crashed:
            return
        self.control.pump()

    def schedule_pump(self, delay: float) -> None:
        """Wake the control plane after ``delay`` virtual seconds."""
        self.sim.schedule(max(0.0, delay), self.request_pump)

    def _start_network_transfer(self, record: Transfer) -> None:
        if record.source not in self.network.nodes:
            raise RuntimeError(f"unknown transfer source {record.source!r}")
        verdict = (
            self.fault_injector.transfer_verdict(record)
            if self.fault_injector is not None
            else None
        )
        if verdict is None:
            self.network.start(
                record.source,
                record.dest_worker,
                record.size,
                lambda _t, tid=record.transfer_id: self._transfer_complete(tid),
            )
            return
        mode, fraction = verdict
        if mode == "corrupt":
            # every byte flows, but arrives damaged: checksum
            # verification at the destination rejects the object
            self.network.start(
                record.source,
                record.dest_worker,
                record.size,
                lambda _t, r=record: self._transfer_faulted(r, corrupt=True),
            )
        else:
            # the connection dies partway: only a fraction of the bytes
            # occupy the link before the failure surfaces
            self.network.start(
                record.source,
                record.dest_worker,
                record.size * fraction,
                lambda _t, r=record: self._transfer_faulted(r, corrupt=False),
            )

    def _transfer_complete(self, transfer_id: str) -> None:
        if self._crashed:
            return
        self.control.on_transfer_complete(transfer_id)

    def _transfer_faulted(self, record: Transfer, corrupt: bool) -> None:
        if self._crashed:
            return
        try:
            self.transfers.get(record.transfer_id)
        except KeyError:
            # the transfer died with its endpoint (e.g. the destination
            # crashed mid-flight) before the injected fault could land —
            # recovery already ran, so there is no fault to record
            return
        self.control.note_fault(
            record.dest_worker,
            "transfer_corrupt" if corrupt else "transfer_fail",
            record.cache_name,
        )
        self.control.on_cache_invalid(
            record.dest_worker,
            record.cache_name,
            record.transfer_id,
            reason="injected corrupt transfer" if corrupt else "injected transfer failure",
            corrupt=corrupt,
        )

    def push_object(self, record: Transfer, level: CacheLevel) -> None:
        self._start_network_transfer(record)  # the manager is a network node

    def send_fetch(self, record: Transfer, level: CacheLevel) -> None:
        self._start_network_transfer(record)

    def run_minitask(self, job: StagingJob) -> None:
        stage_time = self.meta[job.file.cache_name].stage_time
        self.sim.schedule(stage_time, self._stage_done, job)

    def _stage_done(self, job: StagingJob) -> None:
        if self._crashed:
            return
        self.control.on_stage_done(job)

    def start_task(self, task: Task) -> None:
        worker = self.cluster.workers[task.worker_id]
        for name in task.input_cache_names():
            worker.touch(name, self.sim.now)
        task._sim_finish_event = self.sim.schedule(  # type: ignore[attr-defined]
            task.sim_duration, self._finish_execution, task  # type: ignore[attr-defined]
        )

    def cancel_task(self, task: Task) -> None:
        event = getattr(task, "_sim_finish_event", None)
        if event is not None:
            event.cancel()

    def task_preempted(self, task: Task) -> None:
        event = getattr(task, "_sim_finish_event", None)
        if event is not None:
            event.cancel()

    def launch_library(self, lib: LibraryState, worker_id: str) -> None:
        assert isinstance(lib, SimLibrary)
        self.sim.schedule(lib.startup_time, self._library_up, lib, worker_id)

    def _library_up(self, lib: "SimLibrary", worker_id: str) -> None:
        if self._crashed:
            return
        # the control plane ignores stale reports (worker left meanwhile)
        self.control.on_library_ready(worker_id, lib.name)
        worker = self.cluster.workers.get(worker_id)
        if worker is not None and lib.state.get(worker_id) == "ready":
            worker.libraries.add(lib.name)

    def store_replica(
        self, worker_id: str, cache_name: str, size: int, level: CacheLevel
    ) -> None:
        """Insert into the simulated cache, evicting under disk pressure."""
        worker = self.cluster.workers[worker_id]
        overflow = worker.cache_bytes() + size - worker.disk_capacity
        if overflow > 0:
            pinned = self.control.pinned_at(worker_id)
            entries = [
                CacheEntryInfo(o.cache_name, o.size, o.level, o.last_used)
                for o in worker.cache.values()
            ]
            for victim in plan_eviction(entries, overflow, pinned):
                worker.remove(victim)
                self.control.replica_evicted(worker_id, victim)
                self.evictions += 1
        worker.insert(cache_name, size, level, self.sim.now)
        if self._fetch_states.get(cache_name) is not None:
            # a fetch parked on lineage regeneration: the regenerated
            # replica is landing, so the holder can serve it.  Deferred
            # one event: the replica table records the copy only after
            # this store returns.
            self.sim.schedule(0.0, self._poke_fetch, cache_name, worker_id)

    def _poke_fetch(self, cache_name: str, worker_id: str) -> None:
        if self._crashed:
            return
        st = self._fetch_states.get(cache_name)
        if st is not None and st.asked is None:
            st.tried.discard(worker_id)
            self._fetch_advance(cache_name, st)

    def delete_replica(self, worker_id: str, cache_name: str) -> None:
        worker = self.cluster.workers.get(worker_id)
        if worker is not None:
            worker.remove(cache_name)

    def deliver(self, task: Task, regenerated: bool) -> None:
        pass  # applications read task state directly after run()

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------

    def declare_dataset(
        self,
        key: str,
        size: int,
        cache: "CacheLevel | str" = CacheLevel.WORKFLOW,
        source: str = MANAGER_SOURCE,
    ) -> File:
        """Declare a dataset of ``size`` bytes served by ``source``.

        ``key`` stands in for content: worker-lifetime datasets with the
        same key get the same content-addressable name across runs.
        """
        f = File(cache)
        if f.cache_level == CacheLevel.WORKER:
            f.cache_name = f"file-md5-{hash_bytes(key.encode())}"
            self.namer._issued.add(f.cache_name)
        else:
            self.namer.assign(f)
        f.size = size
        self.control.declare(f, source, size)
        self.meta[f.cache_name] = _FileMeta(size=size)
        return f

    def declare_url(
        self,
        url: str,
        size: int,
        cache: "CacheLevel | str" = CacheLevel.WORKFLOW,
        server_bps: float = 1.25e9,
    ) -> URLFile:
        """Declare a remote URL of ``size`` bytes; registers its server node."""
        f = URLFile(url, cache)
        host = url.split("://", 1)[-1].split("/", 1)[0] or "server"
        source = self.cluster.add_url_server(host, up_bps=server_bps)
        self.namer.assign(f)
        f.size = size
        self.control.declare(f, source, size)
        self.meta[f.cache_name] = _FileMeta(size=size)
        return f

    def declare_minitask(
        self,
        mini: MiniTask,
        output_size: int,
        stage_time: float,
        cache: "CacheLevel | str" = CacheLevel.WORKFLOW,
    ) -> MiniTaskFile:
        """Wrap ``mini`` as a file materialized on demand at workers.

        ``stage_time`` is the virtual seconds the transformation takes
        (unpacking, recompiling, ...); ``output_size`` the product size.
        """
        f = MiniTaskFile(mini, cache)
        self.namer.assign(f)
        f.size = output_size
        self.control.declare(f, MINITASK_SOURCE, output_size)
        self.meta[f.cache_name] = _FileMeta(
            size=output_size, stage_time=stage_time, mini=f
        )
        return f

    def declare_untar(
        self,
        tarball: File,
        unpacked_size: int,
        stage_time: float,
        cache: "CacheLevel | str" = CacheLevel.WORKFLOW,
    ) -> MiniTaskFile:
        """The built-in unpack mini task (paper Fig. 3 ``declare_untar``)."""
        # the command must not embed per-run identifiers: the spec hash
        # has to be stable across workflow runs for worker-level caching
        mini = MiniTask("tar -xf input.tar.gz").set_output_name("unpacked")
        mini.add_input(tarball, "input.tar.gz")
        return self.declare_minitask(mini, unpacked_size, stage_time, cache)

    def declare_temp(self, size: int = 0) -> TempFile:
        """Declare an ephemeral in-cluster file (paper §2.3 TempFile)."""
        f = TempFile()
        self.namer.assign(f)
        f.size = size
        self.control.declare(f, NO_SOURCE, size)
        self.meta[f.cache_name] = _FileMeta(size=size)
        return f

    def declare_output(
        self, size: int = 0, bring_back: bool = True, keep_at_worker: bool = False
    ) -> File:
        """Declare a task output retrieved to the manager on completion.

        This is the shared-storage mode of Fig. 13a: every producing
        task's result travels back over the manager's downlink, and —
        unless ``keep_at_worker`` — the worker copy is dropped, so any
        downstream consumer must pull the data from the manager again
        (the round-trip TaskVine's TempFiles eliminate).
        """
        f = File(CacheLevel.WORKFLOW)
        self.namer.assign(f)
        f.bring_back = bring_back  # type: ignore[attr-defined]
        f.keep_at_worker = keep_at_worker  # type: ignore[attr-defined]
        f.size = size
        self.control.declare(f, NO_SOURCE, size)
        self.meta[f.cache_name] = _FileMeta(size=size)
        return f

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        task: Task,
        duration: float,
        output_sizes: Optional[dict[str, int]] = None,
    ) -> Task:
        """Submit a task that will execute for ``duration`` virtual seconds.

        ``output_sizes`` maps sandbox output names to produced sizes,
        overriding any size given at declaration time.
        """
        if task.state != TaskState.CREATED:
            raise RuntimeError(f"task {task.task_id} already submitted")
        task.sim_duration = float(duration)  # type: ignore[attr-defined]
        task.sim_output_sizes = dict(output_sizes or {})  # type: ignore[attr-defined]
        for _, f in task.inputs:
            self._require_declared(f)
        if (
            self.memo_store is not None
            and task.deterministic
            and task.outputs
            and task.tenant not in self.control.memo_opt_out
        ):
            # same recipe → same cache names across runs (see the real
            # manager's _memo_name_outputs); worker level so replicas
            # survive workflow GC and back later hits
            merkle = task_merkle(task)
            for _, f in task.outputs:
                if self.control.memo_renameable(f):
                    old = f.cache_name
                    f.cache_level = CacheLevel.WORKER
                    self.namer.name_task_output(f, task, merkle)
                    self.control.declare_output_file(f)
                    if old is not None and old != f.cache_name:
                        self.meta[f.cache_name] = self.meta.get(
                            old, _FileMeta(size=f.size or 0)
                        )
        for _, f in task.outputs:
            if f.cache_name is None:
                self.namer.assign(f)
                self.control.declare_output_file(f)
            self.meta.setdefault(f.cache_name, _FileMeta(size=f.size or 0))
        self.control.submit(task)
        return task

    def _require_declared(self, f: File) -> None:
        if f.cache_name is None or f.cache_name not in self.meta:
            raise RuntimeError(
                f"file {f.file_id} ({f.source_description()}) was not declared "
                "through this manager"
            )

    # -- libraries -----------------------------------------------------

    def create_library(
        self,
        name: str,
        env_files: Sequence[File] = (),
        resources: Resources = Resources(cores=1),
        startup_time: float = 1.0,
        slots: int = 1,
    ) -> SimLibrary:
        """Define a library (serverless host) for later installation."""
        if name in self.control.libraries:
            raise ValueError(f"library {name!r} already created")
        lib = SimLibrary(
            name=name,
            env_files=list(env_files),
            resources=resources,
            startup_time=startup_time,
            slots=slots,
        )
        for f in lib.env_files:
            self._require_declared(f)
        self.control.libraries[name] = lib
        return lib

    def install_library(self, name: str) -> None:
        """Begin deploying the library to every (current and future) worker."""
        self.control.install_library(name)

    # ------------------------------------------------------------------
    # run driver
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, finalize: bool = True) -> SimRunStats:
        """Execute until every submitted task completes; return statistics."""
        started = self.sim.now
        self.control.pump()
        self.sim.run(until=until, stop_when=self._workflow_done)
        if self._crashed:
            # an injected manager crash muted every callback and let the
            # event queue drain: not a stall, just this life's end — the
            # journal is what it leaves behind for the next one
            return SimRunStats(
                started=started,
                finished=self.sim.now,
                tasks_done=self.control.done_count,
                log=self.control.log,
                transfer_counts=dict(self.control.transfer_counts),
                bytes_by_source=dict(self.control.bytes_by_source),
                evictions=self.evictions,
            )
        if not self._workflow_done():
            raise RuntimeError(
                f"workflow stalled: {len(self.control._ready)} ready, "
                f"{len(self.control._dispatched)} dispatched "
                f"({len(self.control._deferred_staging)} waiting on source "
                f"capacity), {len(self.control._running)} running, "
                f"{sum(self._retrieval_pending.values())} retrievals outstanding "
                f"at t={self.sim.now:.1f}"
            )
        finished = self.sim.now
        if finalize:
            self.finalize()
        return SimRunStats(
            started=started,
            finished=finished,
            tasks_done=self.control.done_count,
            log=self.control.log,
            transfer_counts=dict(self.control.transfer_counts),
            bytes_by_source=dict(self.control.bytes_by_source),
            evictions=self.evictions,
        )

    def cancel(self, task: Task) -> bool:
        """Cancel a submitted task; returns False if already terminal."""
        return self.control.cancel(task)

    def _workflow_done(self) -> bool:
        return (
            self.control.idle()
            and not any(self._retrieval_pending.values())
            and not self._fetch_states
            and not self.pending_arrivals
            and not self.control.draining
        )

    def finalize(self) -> None:
        """End-of-workflow cleanup: stop libraries, collect garbage."""
        if self._finalized:
            return
        self._finalized = True
        for lib in self.control.libraries.values():
            for wid, phase in list(lib.state.items()):
                worker = self.cluster.workers[wid]
                if phase == "ready":
                    worker.libraries.discard(lib.name)
                    self.log.emit(
                        self.sim.now, "task_end",
                        worker=wid, task=f"{lib.name}@{wid}", category="library",
                    )
                try:
                    worker.pool.release(f"lib:{lib.name}")
                except KeyError:
                    pass
            lib.state.clear()
        deletions = collect_workflow(self.registry, self.replicas)
        # fixed order (workers, then declaration) keeps the log replayable
        for wid in sorted(deletions):
            worker = self.cluster.workers[wid]
            for name in self.registry.in_declaration_order(deletions[wid]):
                if worker.remove(name) is not None:
                    self.log.emit(self.sim.now, "file_deleted", worker=wid, file=name)
                self.replicas.remove_replica(name, wid)
        self.log.emit(self.sim.now, "workflow_done")
        if self._txn_writer is not None:
            self._txn_writer.close()

    # ------------------------------------------------------------------
    # execution and retrieval mechanisms
    # ------------------------------------------------------------------

    def _finish_execution(self, task: Task) -> None:
        if self._crashed:
            # the worker finished, but no manager was alive to hear the
            # TASK_DONE: the restarted life re-dispatches from READY
            return
        if task.state != TaskState.RUNNING:
            return  # stale completion: the task was requeued after a loss
        wid = task.worker_id
        assert wid is not None
        result = TaskResult(exit_code=0)
        got = self.control.on_task_result(wid, task.task_id, result)
        if got is None:
            return
        # register outputs into the simulated caches at their final sizes
        output_sizes = getattr(task, "sim_output_sizes", {})
        defer = False
        for sandbox_name, f in task.outputs:
            size = output_sizes.get(sandbox_name, self.meta[f.cache_name].size)
            self.meta[f.cache_name].size = size
            f.size = size
            self.control.sizes[f.cache_name] = size
            self.control.register_replica(wid, f.cache_name, size, store=True)
            if getattr(f, "bring_back", False):
                defer = True
                self._retrieval_pending[task.task_id] = (
                    self._retrieval_pending.get(task.task_id, 0) + 1
                )
                self.log.emit(
                    self.sim.now, "transfer_start",
                    worker=wid, file=f.cache_name, size=size, category="@retrieve",
                )
                self.network.start(
                    wid,
                    MANAGER_NODE,
                    size,
                    lambda _t, tid=task.task_id, name=f.cache_name, w=wid: (
                        self._on_retrieved(tid, name, w)
                    ),
                )
        self.control.complete_task(task, result, defer=defer)

    def _on_retrieved(self, task_id: str, cache_name: str, wid: str) -> None:
        if self._crashed:
            return
        size = self.meta[cache_name].size
        self.control.count_retrieval(wid, cache_name, size)
        # the manager now holds the data and can serve downstream readers
        self.control.fixed_sources[cache_name] = MANAGER_SOURCE
        f = self.registry.by_name(cache_name) if cache_name in self.registry else None
        if f is not None and not getattr(f, "keep_at_worker", True):
            # shared-storage semantics: the result left the cluster
            worker = self.cluster.workers.get(wid)
            if worker is not None and worker.remove(cache_name) is not None:
                self.control.replica_evicted(wid, cache_name)
        remaining = self._retrieval_pending.get(task_id, 0) - 1
        self._retrieval_pending[task_id] = remaining
        if remaining <= 0:
            self._retrieval_pending.pop(task_id, None)
            task = self.control.tasks[task_id]
            if task.state == TaskState.WAITING_RETRIEVAL:
                self.control.finish_deferred(
                    task, task.result or TaskResult(exit_code=0)
                )
        self.request_pump()

    # -- on-demand result fetch plane -------------------------------------

    def fetch_result(self, cache_name: str, on_done=None) -> None:
        """Pull a result payload back to the manager on demand.

        The sim mirror of the real manager's by-reference resolution
        path: bytes stay at workers until a fetch dereferences them.
        Concurrent fetches of the same name coalesce into one transfer;
        a holder dying mid-serve retries the remaining holders
        (``fetch_retried``), and a name with no live replica parks on
        lineage regeneration.  ``on_done`` is called with the serving
        worker id, or None when every source is exhausted.
        """
        st = self._fetch_states.get(cache_name)
        if st is not None:
            if on_done is not None:
                st.callbacks.append(on_done)
            return
        st = self._fetch_states[cache_name] = _SimFetch()
        if on_done is not None:
            st.callbacks.append(on_done)
        self._fetch_advance(cache_name, st)

    def _fetch_advance(self, name: str, st: _SimFetch) -> None:
        holders = [
            w
            for w in self.replicas.locate(name)
            if self.worker_connected(w) and w not in st.tried
        ]
        if holders:
            wid = min(holders)  # deterministic source order
            st.tried.add(wid)
            st.asked = wid
            size = self.control.sizes.get(name, 0)
            self.log.emit(
                self.sim.now, "transfer_start",
                worker=wid, file=name, size=size, category="@fetch",
            )
            self.network.start(
                wid,
                MANAGER_NODE,
                size,
                lambda _t, n=name, w=wid: self._fetch_done(n, w),
            )
            return
        if name in self.registry and self.control._regenerate(name):
            st.asked = None  # parked: store_replica advances it
            self.request_pump()
            return
        self._fetch_settle(name, None)

    def _fetch_done(self, name: str, wid: str) -> None:
        if self._crashed:
            return
        st = self._fetch_states.get(name)
        if st is None or st.asked != wid:
            return  # superseded: the fetch moved on while bytes flew
        self._fetch_settle(name, wid)

    def _fetch_settle(self, name: str, wid: Optional[str]) -> None:
        st = self._fetch_states.pop(name, None)
        if st is None:
            return
        if wid is not None:
            self.control.count_fetch(wid, name, self.control.sizes.get(name, 0))
        for cb in st.callbacks:
            cb(wid)
        self.request_pump()

    # -- worker membership ------------------------------------------------

    def finish_drain(self, worker_id: str) -> None:
        """RuntimePort drain hook: the control plane migrated everything
        off this worker, so the graceful departure can now complete.

        Deferring the actual removal to here (rather than leaving at
        drain-announce time) is the point of the protocol: the cluster
        ``_leave`` clears the worker's cache, which until this moment
        was the migration *source*.
        """
        self.cluster.remove_worker(worker_id, at=self.sim.now)

    def drain_worker(self, worker_id: str) -> bool:
        """Gracefully drain one simulated worker (autoscaler surface)."""
        return self.control.drain_worker(worker_id)

    @staticmethod
    def _worker_level_cache(worker: SimWorker) -> list[tuple[str, int]]:
        """Pre-existing worker-lifetime cache entries to adopt."""
        return [
            (obj.cache_name, obj.size)
            for obj in worker.cache.values()
            if obj.level == CacheLevel.WORKER
        ]

    def _adoptable_cache(self, worker: SimWorker) -> list[tuple[str, int]]:
        """Cache entries a (re)joining worker announces.

        Normally only worker-lifetime objects survive across manager
        lives; during a recovery grace window *everything* the worker
        still holds is announced — workflow-level replicas written by
        the crashed life are exactly what re-adoption must find.
        """
        if self.control._recovering:
            return [(obj.cache_name, obj.size) for obj in worker.cache.values()]
        return self._worker_level_cache(worker)

    def _join(self, worker: SimWorker) -> None:
        cached = self._adoptable_cache(worker)
        for name, size in cached:
            self.meta.setdefault(name, _FileMeta(size=size))
        self.control.worker_joined(worker.worker_id, worker.pool, cached=cached)

    def _on_worker_join(self, worker: SimWorker) -> None:
        if self._crashed:
            return
        self._join(worker)

    def _on_worker_leave(self, worker: SimWorker) -> None:
        if self._crashed:
            return
        self.control.worker_left(worker.worker_id)
        # fetches being served by the dead worker move on to the next
        # holder instead of stranding their waiters
        for name, st in list(self._fetch_states.items()):
            if st.asked == worker.worker_id:
                self.control.count_fetch_retry(name, worker.worker_id, "worker_lost")
                st.asked = None
                self._fetch_advance(name, st)

    # -- crash / restart ---------------------------------------------------

    def crash(self) -> None:
        """Model this manager process dying abruptly (``kill -9``).

        Every scheduled callback belonging to this life becomes a no-op,
        cluster membership callbacks are detached, and the journal and
        transaction-log handles are dropped with no graceful
        finalization — leaving exactly the on-disk state a restarted
        :class:`SimManager` over the same ``journal_dir`` must recover
        from.  Workers and their caches survive (they are cluster
        state, not manager state).
        """
        self._crashed = True
        for callbacks, cb in (
            (self.cluster.join_callbacks, self._on_worker_join),
            (self.cluster.leave_callbacks, self._on_worker_leave),
        ):
            try:
                callbacks.remove(cb)
            except ValueError:
                pass
        # the allocation ledgers were this manager's view of worker
        # capacity; the tasks behind them die unheard (their completions
        # are discarded above), so the next life sees full capacity —
        # exactly as a real worker's fresh registration would report
        for worker in self.cluster.workers.values():
            for holder in worker.pool.holders():
                worker.pool.release(holder)
            worker.libraries.clear()
        if self.journal is not None:
            self.journal.close()
        if self._txn_writer is not None:
            self._txn_writer.close()

    # -- reporting -------------------------------------------------------

    def makespan(self) -> float:
        """Time of the last task completion in this run's log."""
        return makespan(self.control.log)
