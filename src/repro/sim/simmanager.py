"""Simulated TaskVine manager: the paper's policy engine over virtual time.

:class:`SimManager` mirrors the real manager's API (declare files,
submit tasks, install libraries, run) but executes against a
:class:`~repro.sim.cluster.SimCluster`.  Crucially it drives the *same*
policy code as the real runtime — :class:`~repro.core.scheduler.Scheduler`,
:class:`~repro.core.replica_table.ReplicaTable`,
:class:`~repro.core.transfer_table.TransferTable`,
:class:`~repro.core.naming.Namer`, and :mod:`repro.core.gc` — so the
figure benchmarks exercise the policies the paper evaluates, with only
task execution and byte movement virtualized.

Simulation-specific file declarations carry explicit sizes (and stage
times for mini tasks) instead of real content; tasks carry explicit
durations.  Everything else — placement, peer transfer selection,
per-source concurrency limits, caching, eviction, garbage collection —
is the production logic.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.events import EventLog, makespan
from repro.core.files import (
    CacheLevel,
    File,
    FileRegistry,
    MiniTaskFile,
    TempFile,
    URLFile,
)
from repro.core.gc import CacheEntryInfo, collect_workflow, plan_eviction
from repro.core.library import FunctionCall
from repro.core.naming import Namer
from repro.core.replica_table import ReplicaTable
from repro.core.resources import Resources
from repro.core.scheduler import Scheduler, WorkerView
from repro.core.task import MiniTask, Task, TaskState
from repro.core.transfer_table import MANAGER_SOURCE, TransferTable
from repro.sim.cluster import MANAGER_NODE, SimCluster, SimWorker
from repro.util.hashing import hash_bytes

__all__ = ["SimManager", "SimLibrary", "SimRunStats", "NO_SOURCE"]

#: fixed-source marker for files that only ever exist at workers (temps)
NO_SOURCE = "@none"
#: fixed-source marker for files materialized by a mini task at the worker
MINITASK_SOURCE = "@minitask"


@dataclass
class _FileMeta:
    """Simulation metadata for one cache name."""

    size: int
    stage_time: float = 0.0
    mini: Optional[MiniTaskFile] = None


@dataclass
class SimLibrary:
    """A library definition plus its deployment state."""

    name: str
    env_files: list[File]
    resources: Resources
    startup_time: float
    slots: int
    installed: bool = False
    #: worker id -> deployment phase ("staging" | "starting" | "ready")
    deployments: dict[str, str] = field(default_factory=dict)
    #: internal pseudo-tasks used for input staging, by worker id
    staging_tasks: dict[str, Task] = field(default_factory=dict)


@dataclass
class SimRunStats:
    """Outcome of one simulated workflow run."""

    started: float
    finished: float
    tasks_done: int
    log: EventLog
    #: completed transfer counts by source kind: "peer", "manager", "url"
    transfer_counts: dict[str, int]
    bytes_by_source: dict[str, float]
    evictions: int

    @property
    def makespan(self) -> float:
        """Virtual seconds from run start to workflow completion."""
        return self.finished - self.started


@dataclass
class _StagingJob:
    """An in-progress mini-task materialization at one worker."""

    file: MiniTaskFile
    worker_id: str
    transfer_id: str
    started: bool = False


class SimManager:
    """One workflow run executing on a simulated cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        worker_transfer_limit: Optional[int] = 3,
        source_transfer_limit: Optional[int] = 100,
        locality: bool = True,
        seed: int = 0,
        run_nonce: Optional[str] = None,
        temp_replica_count: int = 1,
        max_task_retries: int = 3,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network
        self.namer = Namer(seed=seed, run_nonce=run_nonce)
        # stable pseudo-headers: URL content never changes inside a sim
        self.namer.header_fetcher = lambda url: {"ETag": f"sim:{url}"}
        self.registry = FileRegistry()
        self.replicas = ReplicaTable()
        self.transfers = TransferTable(
            worker_limit=worker_transfer_limit, source_limit=source_transfer_limit
        )
        self.scheduler = Scheduler(self.replicas, self.transfers, locality=locality)
        self.log = EventLog()

        self.tasks: dict[str, Task] = {}
        self._ready: list[Task] = []
        self._dispatched: dict[str, Task] = {}
        self._running: dict[str, Task] = {}
        self._retrieval_pending: dict[str, int] = {}
        self._done = 0

        self.fixed_sources: dict[str, str] = {}
        self.meta: dict[str, _FileMeta] = {}
        self.libraries: dict[str, SimLibrary] = {}
        self._lib_load: dict[tuple[str, str], int] = collections.Counter()

        self._running_at: dict[str, int] = collections.Counter()
        self._pinned: dict[str, collections.Counter] = collections.defaultdict(
            collections.Counter
        )
        self._input_refs: collections.Counter = collections.Counter()
        self._staging: list[_StagingJob] = []
        self.evictions = 0
        self._transfer_counts: dict[str, int] = collections.Counter()
        self._bytes_by_source: dict[str, float] = collections.Counter()
        self._pump_scheduled = False
        self._finalized = False
        #: target replica count for task-produced (temp) files — "the
        #: manager has a detailed picture ... duplicating items for
        #: reliability" (paper §2.2); 1 disables proactive replication
        self.temp_replica_count = max(1, temp_replica_count)
        #: times a task lost to a departing worker is re-dispatched
        self.max_task_retries = max_task_retries
        self.tasks_requeued = 0

        # adopt pre-existing worker-level cache contents (hot cache, Fig 9)
        for worker in cluster.workers.values():
            self._adopt_worker(worker)
        cluster.join_callbacks.append(self._on_worker_join)
        cluster.leave_callbacks.append(self._on_worker_leave)

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------

    def declare_dataset(
        self,
        key: str,
        size: int,
        cache: "CacheLevel | str" = CacheLevel.WORKFLOW,
        source: str = MANAGER_SOURCE,
    ) -> File:
        """Declare a dataset of ``size`` bytes served by ``source``.

        ``key`` stands in for content: worker-lifetime datasets with the
        same key get the same content-addressable name across runs.
        """
        f = File(cache)
        if f.cache_level == CacheLevel.WORKER:
            f.cache_name = f"file-md5-{hash_bytes(key.encode())}"
            self.namer._issued.add(f.cache_name)
        else:
            self.namer.assign(f)
        f.size = size
        self.registry.register(f)
        self.fixed_sources[f.cache_name] = source
        self.meta[f.cache_name] = _FileMeta(size=size)
        return f

    def declare_url(
        self,
        url: str,
        size: int,
        cache: "CacheLevel | str" = CacheLevel.WORKFLOW,
        server_bps: float = 1.25e9,
    ) -> URLFile:
        """Declare a remote URL of ``size`` bytes; registers its server node."""
        f = URLFile(url, cache)
        host = url.split("://", 1)[-1].split("/", 1)[0] or "server"
        source = self.cluster.add_url_server(host, up_bps=server_bps)
        self.namer.assign(f)
        f.size = size
        self.registry.register(f)
        self.fixed_sources[f.cache_name] = source
        self.meta[f.cache_name] = _FileMeta(size=size)
        return f

    def declare_minitask(
        self,
        mini: MiniTask,
        output_size: int,
        stage_time: float,
        cache: "CacheLevel | str" = CacheLevel.WORKFLOW,
    ) -> MiniTaskFile:
        """Wrap ``mini`` as a file materialized on demand at workers.

        ``stage_time`` is the virtual seconds the transformation takes
        (unpacking, recompiling, ...); ``output_size`` the product size.
        """
        f = MiniTaskFile(mini, cache)
        self.namer.assign(f)
        self.registry.register(f)
        self.fixed_sources[f.cache_name] = MINITASK_SOURCE
        self.meta[f.cache_name] = _FileMeta(
            size=output_size, stage_time=stage_time, mini=f
        )
        f.size = output_size
        return f

    def declare_untar(
        self,
        tarball: File,
        unpacked_size: int,
        stage_time: float,
        cache: "CacheLevel | str" = CacheLevel.WORKFLOW,
    ) -> MiniTaskFile:
        """The built-in unpack mini task (paper Fig. 3 ``declare_untar``)."""
        # the command must not embed per-run identifiers: the spec hash
        # has to be stable across workflow runs for worker-level caching
        mini = MiniTask("tar -xf input.tar.gz").set_output_name("unpacked")
        mini.add_input(tarball, "input.tar.gz")
        return self.declare_minitask(mini, unpacked_size, stage_time, cache)

    def declare_temp(self, size: int = 0) -> TempFile:
        """Declare an ephemeral in-cluster file (paper §2.3 TempFile)."""
        f = TempFile()
        self.namer.assign(f)
        self.registry.register(f)
        self.fixed_sources[f.cache_name] = NO_SOURCE
        self.meta[f.cache_name] = _FileMeta(size=size)
        f.size = size
        return f

    def declare_output(
        self, size: int = 0, bring_back: bool = True, keep_at_worker: bool = False
    ) -> File:
        """Declare a task output retrieved to the manager on completion.

        This is the shared-storage mode of Fig. 13a: every producing
        task's result travels back over the manager's downlink, and —
        unless ``keep_at_worker`` — the worker copy is dropped, so any
        downstream consumer must pull the data from the manager again
        (the round-trip TaskVine's TempFiles eliminate).
        """
        f = File(CacheLevel.WORKFLOW)
        self.namer.assign(f)
        self.registry.register(f)
        f.bring_back = bring_back  # type: ignore[attr-defined]
        f.keep_at_worker = keep_at_worker  # type: ignore[attr-defined]
        self.fixed_sources[f.cache_name] = NO_SOURCE
        self.meta[f.cache_name] = _FileMeta(size=size)
        f.size = size
        return f

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        task: Task,
        duration: float,
        output_sizes: Optional[dict[str, int]] = None,
    ) -> Task:
        """Submit a task that will execute for ``duration`` virtual seconds.

        ``output_sizes`` maps sandbox output names to produced sizes,
        overriding any size given at declaration time.
        """
        if task.state != TaskState.CREATED:
            raise RuntimeError(f"task {task.task_id} already submitted")
        task.sim_duration = float(duration)  # type: ignore[attr-defined]
        task.sim_output_sizes = dict(output_sizes or {})  # type: ignore[attr-defined]
        for _, f in task.inputs:
            self._require_declared(f)
            self._input_refs[f.cache_name] += 1
        for _, f in task.outputs:
            if f.cache_name is None:
                self.namer.assign(f)
                self.registry.register(f)
                self.fixed_sources[f.cache_name] = NO_SOURCE
                self.meta.setdefault(f.cache_name, _FileMeta(size=f.size or 0))
            # record lineage for regeneration after replica loss
            f.producer_task_id = task.task_id  # type: ignore[attr-defined]
        task.state = TaskState.READY
        task.submitted_at = self.sim.now
        self.tasks[task.task_id] = task
        self._ready.append(task)
        self._schedule_pump()
        return task

    def _require_declared(self, f: File) -> None:
        if f.cache_name is None or f.cache_name not in self.meta:
            raise RuntimeError(
                f"file {f.file_id} ({f.source_description()}) was not declared "
                "through this manager"
            )

    # -- libraries -----------------------------------------------------

    def create_library(
        self,
        name: str,
        env_files: Sequence[File] = (),
        resources: Resources = Resources(cores=1),
        startup_time: float = 1.0,
        slots: int = 1,
    ) -> SimLibrary:
        """Define a library (serverless host) for later installation."""
        if name in self.libraries:
            raise ValueError(f"library {name!r} already created")
        lib = SimLibrary(
            name=name,
            env_files=list(env_files),
            resources=resources,
            startup_time=startup_time,
            slots=slots,
        )
        for f in lib.env_files:
            self._require_declared(f)
        self.libraries[name] = lib
        return lib

    def install_library(self, name: str) -> None:
        """Begin deploying the library to every (current and future) worker."""
        lib = self.libraries[name]
        lib.installed = True
        for worker in self.cluster.connected_workers():
            self._deploy_library(lib, worker)
        self._schedule_pump()

    # ------------------------------------------------------------------
    # run driver
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, finalize: bool = True) -> SimRunStats:
        """Execute until every submitted task completes; return statistics."""
        started = self.sim.now
        self._pump()
        self.sim.run(until=until, stop_when=self._workflow_done)
        if not self._workflow_done():
            raise RuntimeError(
                f"workflow stalled: {len(self._ready)} ready, "
                f"{len(self._dispatched)} dispatched, {len(self._running)} running, "
                f"{sum(self._retrieval_pending.values())} retrievals outstanding "
                f"at t={self.sim.now:.1f}"
            )
        finished = self.sim.now
        if finalize:
            self.finalize()
        return SimRunStats(
            started=started,
            finished=finished,
            tasks_done=self._done,
            log=self.log,
            transfer_counts=dict(self._transfer_counts),
            bytes_by_source=dict(self._bytes_by_source),
            evictions=self.evictions,
        )

    def cancel(self, task: Task) -> bool:
        """Cancel a submitted task; returns False if already terminal."""
        if task.is_done or task.task_id not in self.tasks:
            return False
        if task.state == TaskState.READY:
            self._ready = [t for t in self._ready if t.task_id != task.task_id]
        elif task.state in (TaskState.DISPATCHED, TaskState.RUNNING):
            self._dispatched.pop(task.task_id, None)
            self._running.pop(task.task_id, None)
            event = getattr(task, "_sim_finish_event", None)
            if event is not None:
                event.cancel()
            wid = task.worker_id
            if wid is not None:
                worker = self.cluster.workers[wid]
                try:
                    worker.pool.release(task.task_id)
                except KeyError:
                    pass
                self._running_at[wid] -= 1
                if isinstance(task, FunctionCall):
                    self._lib_load[(wid, task.library_name)] -= 1
                for name in task.input_cache_names():
                    self._pinned[wid][name] -= 1
        for name in task.input_cache_names():
            self._input_refs[name] -= 1
        task.state = TaskState.CANCELLED
        self._schedule_pump()
        return True

    def _workflow_done(self) -> bool:
        return (
            not self._ready
            and not self._dispatched
            and not self._running
            and not any(self._retrieval_pending.values())
        )

    def finalize(self) -> None:
        """End-of-workflow cleanup: stop libraries, collect garbage."""
        if self._finalized:
            return
        self._finalized = True
        for lib in self.libraries.values():
            for wid, phase in list(lib.deployments.items()):
                worker = self.cluster.workers[wid]
                if phase == "ready":
                    worker.libraries.discard(lib.name)
                    self.log.emit(
                        self.sim.now, "task_end",
                        worker=wid, task=f"{lib.name}@{wid}", category="library",
                    )
                try:
                    worker.pool.release(f"lib:{lib.name}")
                except KeyError:
                    pass
            lib.deployments.clear()
        deletions = collect_workflow(self.registry, self.replicas)
        for wid, names in deletions.items():
            worker = self.cluster.workers[wid]
            for name in names:
                if worker.remove(name) is not None:
                    self.log.emit(self.sim.now, "file_deleted", worker=wid, file=name)
                self.replicas.remove_replica(name, wid)
        self.log.emit(self.sim.now, "workflow_done")

    # ------------------------------------------------------------------
    # internal machinery
    # ------------------------------------------------------------------

    def _schedule_pump(self) -> None:
        """Coalesce pump requests into one zero-delay event."""
        if not self._pump_scheduled:
            self._pump_scheduled = True
            self.sim.schedule(0.0, self._pump_event)

    def _pump_event(self) -> None:
        self._pump_scheduled = False
        self._pump()

    def _view_of(self, wid: str, library: Optional[str]) -> Optional[WorkerView]:
        """Current scheduler view of one worker, or None if ineligible."""
        w = self.cluster.workers[wid]
        if not w.connected:
            return None
        if library is not None:
            lib = self.libraries[library]
            if lib.deployments.get(wid) != "ready":
                return None
            if self._lib_load[(wid, library)] >= lib.slots:
                return None
        return WorkerView(
            worker_id=wid,
            capacity=w.pool.capacity,
            allocated=w.pool.allocated,
            running_tasks=self._running_at.get(wid, 0),
        )

    def _views(self, library: Optional[str] = None) -> dict[str, WorkerView]:
        views = {}
        for wid in self.cluster.workers:
            v = self._view_of(wid, library)
            if v is not None:
                views[wid] = v
        return views

    def _inputs_obtainable(self, task: Task) -> bool:
        """True when every input exists somewhere or can be produced."""
        for name in task.input_cache_names():
            if self.replicas.replica_count(name) > 0:
                continue
            if self.fixed_sources.get(name, MANAGER_SOURCE) == NO_SOURCE:
                return False
        return True

    def _pump(self) -> None:
        """Advance scheduling: place ready tasks, plan missing transfers."""
        # 1. placement — view dicts are built lazily per library key and
        # updated in place after each dispatch, so a pump over thousands
        # of ready tasks touches each worker once, not once per task
        placed = []
        failures = 0
        views_cache: dict[Optional[str], dict[str, WorkerView]] = {}

        def get_views(key: Optional[str]) -> dict[str, WorkerView]:
            if key not in views_cache:
                views_cache[key] = self._views(library=key)
            return views_cache[key]

        for task in Scheduler.order_ready(self._ready):
            if not self._inputs_obtainable(task):
                continue
            key = task.library_name if isinstance(task, FunctionCall) else None
            wid = self.scheduler.choose_worker(task, get_views(key))
            if wid is None:
                failures += 1
                if failures >= 64:
                    break
                continue
            self._dispatch(task, wid)
            placed.append(task)
            for k, vdict in views_cache.items():
                fresh = self._view_of(wid, k)
                if fresh is None:
                    vdict.pop(wid, None)
                else:
                    vdict[wid] = fresh
        if placed:
            ready_ids = {t.task_id for t in placed}
            self._ready = [t for t in self._ready if t.task_id not in ready_ids]

        # 2. input staging for dispatched tasks
        for task in list(self._dispatched.values()):
            self._stage_inputs(task)

        # 3. library deployments waiting on inputs
        for lib in self.libraries.values():
            for wid, phase in list(lib.deployments.items()):
                if phase == "staging":
                    self._advance_library(lib, wid)

        # 4. mini-task staging jobs waiting on their own inputs
        for job in list(self._staging):
            if not job.started:
                self._advance_staging(job)

    # -- placement & staging ------------------------------------------------

    def _dispatch(self, task: Task, wid: str) -> None:
        worker = self.cluster.workers[wid]
        worker.pool.allocate(task.task_id, task.resources)
        task.worker_id = wid
        task.state = TaskState.DISPATCHED
        self._dispatched[task.task_id] = task
        self._running_at[wid] += 1
        if isinstance(task, FunctionCall):
            self._lib_load[(wid, task.library_name)] += 1
        for name in task.input_cache_names():
            self._pinned[wid][name] += 1
        self._stage_inputs(task)

    def _stage_inputs(self, task: Task) -> None:
        wid = task.worker_id
        assert wid is not None
        plan = self.scheduler.plan_transfers(task, wid, self.fixed_sources)
        for cache_name, source in plan.transfers:
            self._start_fetch(cache_name, source, wid)
        worker = self.cluster.workers[wid]
        if all(worker.has(n) for n in task.input_cache_names()):
            self._start_execution(task)

    def _start_fetch(self, cache_name: str, source: str, dst_wid: str) -> None:
        size = self.meta[cache_name].size
        record = self.transfers.begin(cache_name, source, dst_wid, size, self.sim.now)
        if source == MINITASK_SOURCE:
            mini_file = self.meta[cache_name].mini
            assert mini_file is not None
            job = _StagingJob(
                file=mini_file, worker_id=dst_wid, transfer_id=record.transfer_id
            )
            self._staging.append(job)
            self._advance_staging(job)
            return
        src_node = source if source in self.network.nodes else None
        if src_node is None:
            raise RuntimeError(f"unknown transfer source {source!r}")
        self.log.emit(
            self.sim.now, "transfer_start",
            worker=dst_wid, file=cache_name, size=size,
        )
        self.network.start(
            src_node,
            dst_wid,
            size,
            lambda _t, tid=record.transfer_id: self._on_transfer_done(tid),
        )

    def _source_kind(self, source: str) -> str:
        if source == MANAGER_SOURCE:
            return "manager"
        if source.startswith("url:"):
            return "url"
        if source == MINITASK_SOURCE:
            return "stage"
        return "peer"

    def _on_transfer_done(self, transfer_id: str) -> None:
        try:
            record = self.transfers.complete(transfer_id)
        except KeyError:
            return  # cancelled (e.g. destination worker departed mid-flight)
        kind = self._source_kind(record.source)
        self._transfer_counts[kind] += 1
        self._bytes_by_source[kind] += record.size
        self.log.emit(
            self.sim.now, "transfer_end",
            worker=record.dest_worker, file=record.cache_name, size=record.size,
        )
        if self.cluster.workers[record.dest_worker].connected:
            self._insert_cached(record.dest_worker, record.cache_name)
        self._schedule_pump()

    def _insert_cached(self, wid: str, cache_name: str) -> None:
        worker = self.cluster.workers[wid]
        meta = self.meta[cache_name]
        level = (
            self.registry.by_name(cache_name).cache_level
            if cache_name in self.registry
            else CacheLevel.WORKFLOW
        )
        overflow = worker.cache_bytes() + meta.size - worker.disk_capacity
        if overflow > 0:
            pinned = {n for n, c in self._pinned[wid].items() if c > 0}
            entries = [
                CacheEntryInfo(o.cache_name, o.size, o.level, o.last_used)
                for o in worker.cache.values()
            ]
            for victim in plan_eviction(entries, overflow, pinned):
                worker.remove(victim)
                self.replicas.remove_replica(victim, wid)
                self.log.emit(self.sim.now, "file_deleted", worker=wid, file=victim)
                self.evictions += 1
        worker.insert(cache_name, meta.size, level, self.sim.now)
        self.replicas.add_replica(cache_name, wid, meta.size)
        self.log.emit(
            self.sim.now, "file_cached", worker=wid, file=cache_name, size=meta.size
        )
        self._on_file_available(wid, cache_name)

    def _on_file_available(self, wid: str, cache_name: str) -> None:
        """A new object landed at a worker: wake dependent staging jobs."""
        for job in self._staging:
            if job.worker_id == wid and not job.started:
                self._advance_staging(job)

    # -- mini-task staging -------------------------------------------------

    def _advance_staging(self, job: _StagingJob) -> None:
        worker = self.cluster.workers[job.worker_id]
        mini = job.file.mini_task
        missing = [n for n in mini.input_cache_names() if not worker.has(n)]
        if missing:
            plan = self.scheduler.plan_transfers(mini, job.worker_id, self.fixed_sources)
            for cache_name, source in plan.transfers:
                self._start_fetch(cache_name, source, job.worker_id)
            return
        job.started = True
        stage_time = self.meta[job.file.cache_name].stage_time
        self.log.emit(
            self.sim.now, "stage_start",
            worker=job.worker_id, file=job.file.cache_name,
        )
        self.sim.schedule(stage_time, self._finish_staging, job)

    def _finish_staging(self, job: _StagingJob) -> None:
        self._staging.remove(job)
        record = self.transfers.complete(job.transfer_id)
        self._transfer_counts["stage"] += 1
        self.log.emit(
            self.sim.now, "stage_end",
            worker=job.worker_id, file=job.file.cache_name, size=record.size,
        )
        self._insert_cached(job.worker_id, job.file.cache_name)
        self._schedule_pump()

    # -- execution -------------------------------------------------------

    def _start_execution(self, task: Task) -> None:
        if task.state != TaskState.DISPATCHED:
            return
        self._dispatched.pop(task.task_id, None)
        self._running[task.task_id] = task
        task.state = TaskState.RUNNING
        task.started_at = self.sim.now
        worker = self.cluster.workers[task.worker_id]
        for name in task.input_cache_names():
            worker.touch(name, self.sim.now)
        self.log.emit(
            self.sim.now, "task_start",
            worker=task.worker_id, task=task.task_id, category=task.category,
        )
        task._sim_finish_event = self.sim.schedule(  # type: ignore[attr-defined]
            task.sim_duration, self._finish_execution, task  # type: ignore[attr-defined]
        )

    def _finish_execution(self, task: Task) -> None:
        if task.state != TaskState.RUNNING:
            return  # stale completion: the task was requeued after a loss
        wid = task.worker_id
        assert wid is not None
        worker = self.cluster.workers[wid]
        self._running.pop(task.task_id, None)
        task.finished_at = self.sim.now
        worker.pool.release(task.task_id)
        self._running_at[wid] -= 1
        if isinstance(task, FunctionCall):
            self._lib_load[(wid, task.library_name)] -= 1
        self.log.emit(
            self.sim.now, "task_end",
            worker=wid, task=task.task_id, category=task.category,
        )
        # register outputs
        output_sizes = getattr(task, "sim_output_sizes", {})
        for sandbox_name, f in task.outputs:
            size = output_sizes.get(sandbox_name, self.meta[f.cache_name].size)
            self.meta[f.cache_name].size = size
            f.size = size
            self._insert_cached(wid, f.cache_name)
            self._ensure_replication(f.cache_name)
            if getattr(f, "bring_back", False):
                self._retrieval_pending[task.task_id] = (
                    self._retrieval_pending.get(task.task_id, 0) + 1
                )
                self.log.emit(
                    self.sim.now, "transfer_start",
                    worker=wid, file=f.cache_name, size=size,
                )
                self.network.start(
                    wid,
                    MANAGER_NODE,
                    size,
                    lambda _t, tid=task.task_id, name=f.cache_name, w=wid: (
                        self._on_retrieved(tid, name, w)
                    ),
                )
        # unpin and garbage-collect task-lifetime inputs
        for name in task.input_cache_names():
            self._pinned[wid][name] -= 1
            self._input_refs[name] -= 1
            if (
                self._input_refs[name] <= 0
                and name in self.registry
                and self.registry.by_name(name).cache_level == CacheLevel.TASK
            ):
                for holder in self.replicas.forget_name(name):
                    self.cluster.workers[holder].remove(name)
                    self.log.emit(
                        self.sim.now, "file_deleted", worker=holder, file=name
                    )
        if not self._retrieval_pending.get(task.task_id):
            task.state = TaskState.DONE
            self._done += 1
        self._schedule_pump()

    def _on_retrieved(self, task_id: str, cache_name: str, wid: str) -> None:
        self._transfer_counts["retrieve"] += 1
        self._bytes_by_source["retrieve"] += self.meta[cache_name].size
        self.log.emit(
            self.sim.now, "transfer_end",
            worker=wid, file=cache_name, size=self.meta[cache_name].size,
        )
        # the manager now holds the data and can serve downstream readers
        self.fixed_sources[cache_name] = MANAGER_SOURCE
        f = self.registry.by_name(cache_name) if cache_name in self.registry else None
        if f is not None and not getattr(f, "keep_at_worker", True):
            # shared-storage semantics: the result left the cluster
            worker = self.cluster.workers.get(wid)
            if worker is not None and worker.remove(cache_name) is not None:
                self.replicas.remove_replica(cache_name, wid)
                self.log.emit(self.sim.now, "file_deleted", worker=wid, file=cache_name)
        remaining = self._retrieval_pending.get(task_id, 0) - 1
        self._retrieval_pending[task_id] = remaining
        if remaining <= 0:
            self._retrieval_pending.pop(task_id, None)
            task = self.tasks[task_id]
            if task.state != TaskState.DONE:
                task.state = TaskState.DONE
                self._done += 1
        self._schedule_pump()

    # -- libraries ----------------------------------------------------------

    def _deploy_library(self, lib: SimLibrary, worker: SimWorker) -> None:
        wid = worker.worker_id
        if wid in lib.deployments:
            return
        if not worker.pool.can_fit(lib.resources):
            return  # retried when the worker joins with room / never, by design
        worker.pool.allocate(f"lib:{lib.name}", lib.resources)
        lib.deployments[wid] = "staging"
        pseudo = Task(f"deploy:{lib.name}")
        for i, f in enumerate(lib.env_files):
            pseudo.inputs.append((f"env{i}", f))
        lib.staging_tasks[wid] = pseudo
        pseudo.worker_id = wid
        self._advance_library(lib, wid)

    def _advance_library(self, lib: SimLibrary, wid: str) -> None:
        worker = self.cluster.workers[wid]
        pseudo = lib.staging_tasks[wid]
        missing = [n for n in pseudo.input_cache_names() if not worker.has(n)]
        if missing:
            plan = self.scheduler.plan_transfers(pseudo, wid, self.fixed_sources)
            for cache_name, source in plan.transfers:
                self._start_fetch(cache_name, source, wid)
            return
        lib.deployments[wid] = "starting"
        self.log.emit(
            self.sim.now, "task_start",
            worker=wid, task=f"{lib.name}@{wid}", category="library",
        )
        self.sim.schedule(lib.startup_time, self._library_ready, lib, wid)

    def _library_ready(self, lib: SimLibrary, wid: str) -> None:
        lib.deployments[wid] = "ready"
        self.cluster.workers[wid].libraries.add(lib.name)
        self.log.emit(self.sim.now, "library_ready", worker=wid, category=lib.name)
        self._schedule_pump()

    # -- worker membership ------------------------------------------------

    def _adopt_worker(self, worker: SimWorker, announce: bool = True) -> None:
        """Register a worker's pre-existing cache contents with this run."""
        for obj in worker.cache.values():
            if obj.level == CacheLevel.WORKER:
                self.replicas.add_replica(obj.cache_name, worker.worker_id, obj.size)
                self.meta.setdefault(obj.cache_name, _FileMeta(size=obj.size))
        if announce and worker.connected:
            self.log.emit(self.sim.now, "worker_join", worker=worker.worker_id)

    def _on_worker_join(self, worker: SimWorker) -> None:
        self._adopt_worker(worker, announce=False)
        self.log.emit(self.sim.now, "worker_join", worker=worker.worker_id)
        for lib in self.libraries.values():
            if lib.installed:
                self._deploy_library(lib, worker)
        self._schedule_pump()

    def _on_worker_leave(self, worker: SimWorker) -> None:
        """Recover from a departing worker: requeue its tasks, drop its
        replicas, and restore replication targets for surviving temps."""
        wid = worker.worker_id
        self.log.emit(self.sim.now, "worker_leave", worker=wid)
        lost_names = self.replicas.remove_worker(wid)
        self.transfers.cancel_for_worker(wid)
        self._staging = [j for j in self._staging if j.worker_id != wid]
        self._pinned.pop(wid, None)
        self._running_at.pop(wid, None)
        for lib in self.libraries.values():
            if lib.deployments.pop(wid, None) == "ready":
                self.log.emit(
                    self.sim.now, "task_end",
                    worker=wid, task=f"{lib.name}@{wid}", category="library",
                )
            lib.staging_tasks.pop(wid, None)
        lost_tasks = [
            t
            for t in list(self._dispatched.values()) + list(self._running.values())
            if t.worker_id == wid
        ]
        for task in lost_tasks:
            self._dispatched.pop(task.task_id, None)
            self._running.pop(task.task_id, None)
            event = getattr(task, "_sim_finish_event", None)
            if event is not None:
                event.cancel()
            if isinstance(task, FunctionCall):
                self._lib_load[(wid, task.library_name)] -= 1
            if task.retries_used >= self.max_task_retries:
                raise RuntimeError(
                    f"task {task.task_id} lost {task.retries_used + 1} workers; "
                    "giving up"
                )
            task.retries_used += 1
            task.worker_id = None
            task.state = TaskState.READY
            self._ready.append(task)
            self.tasks_requeued += 1
        # restore the replication target of still-needed produced files,
        # and regenerate any that lost their final replica (lineage)
        for name in lost_names:
            if self._input_refs.get(name, 0) > 0:
                if self.replicas.replica_count(name) > 0:
                    self._ensure_replication(name)
                else:
                    self._regenerate(name)
        self._schedule_pump()

    def _regenerate(self, cache_name: str) -> None:
        """Re-execute the producer of a lost, still-needed temp file.

        Temp files record their producing task (paper §3.2 names them
        by the producer's spec); when every replica of one is lost and
        downstream tasks still reference it, the manager resubmits the
        producer.  Recursion through deeper lost lineage happens
        naturally: the resubmitted producer's own missing inputs are
        regenerated when it fails to find them.
        """
        if self.fixed_sources.get(cache_name) != NO_SOURCE:
            return  # refetchable: normal transfer planning recovers it
        f = self.registry.by_name(cache_name) if cache_name in self.registry else None
        producer_id = getattr(f, "producer_task_id", None)
        producer = self.tasks.get(producer_id) if producer_id else None
        if producer is None:
            return  # no lineage known; consumers will report a stall
        if not producer.is_done or producer.state != TaskState.DONE:
            return  # still running/queued: its outputs will (re)appear
        if producer.retries_used >= self.max_task_retries:
            raise RuntimeError(
                f"cannot regenerate {cache_name}: producer {producer_id} "
                "exhausted its retries"
            )
        producer.retries_used += 1
        producer.state = TaskState.READY
        producer.worker_id = None
        self._done -= 1
        self.tasks_requeued += 1
        for name in producer.input_cache_names():
            self._input_refs[name] += 1
            if (
                self.replicas.replica_count(name) == 0
                and self.fixed_sources.get(name) == NO_SOURCE
            ):
                self._regenerate(name)
        self._ready.append(producer)

    def _ensure_replication(self, cache_name: str) -> None:
        """Start transfers until ``cache_name`` meets its replica target.

        Applies only to task-produced files (temps/outputs): inputs with
        an external source can always be refetched, produced data cannot.
        """
        if self.temp_replica_count <= 1:
            return
        if self.fixed_sources.get(cache_name) != NO_SOURCE:
            return  # refetchable from its source, or already at the manager
        have = self.replicas.locate(cache_name)
        needed = self.temp_replica_count - len(have)
        if needed <= 0 or not have:
            return
        candidates = sorted(
            (
                w
                for w in self.cluster.connected_workers()
                if w.worker_id not in have
                and not self.transfers.in_flight(cache_name, w.worker_id)
            ),
            key=lambda w: w.cache_bytes(),
        )
        for worker in candidates[:needed]:
            source = next(iter(have))
            if not self.transfers.source_available(source):
                break
            self._start_fetch(cache_name, source, worker.worker_id)

    # -- reporting -------------------------------------------------------

    def makespan(self) -> float:
        """Time of the last task completion in this run's log."""
        return makespan(self.log)
