"""Bandwidth-shared network model for the simulated cluster.

Each node has an uplink and downlink capacity (bytes/second); an active
transfer's instantaneous rate is its fair share of the more contended
endpoint::

    rate = min(src.up / src.active_out, dst.down / dst.active_in)

Rates are recomputed whenever a transfer starts or finishes, and each
transfer's remaining bytes are advanced between recomputations, so the
completion time integrates the varying rate exactly.  This simple
endpoint-fair model is what makes the paper's hotspot phenomena emerge
naturally: 500 workers pulling from one URL server each get 1/500 of
its uplink (Fig. 11a); an unsupervised peer swarm saturates whichever
worker everyone chose (Fig. 11b); a per-source limit of 3 keeps every
stream near full rate (Fig. 11c).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.engine import EventHandle, Simulation

__all__ = ["NetNode", "NetTransfer", "Network"]


@dataclass
class NetNode:
    """One endpoint: a worker, the manager, or a remote data server."""

    name: str
    #: uplink capacity in bytes/second (serving data)
    up_bps: float
    #: downlink capacity in bytes/second (receiving data)
    down_bps: float
    active_out: int = 0
    active_in: int = 0


@dataclass
class NetTransfer:
    """One in-flight bulk transfer between two nodes."""

    transfer_id: int
    src: NetNode
    dst: NetNode
    size: float
    remaining: float
    on_complete: Callable[["NetTransfer"], None]
    started_at: float
    #: current fair-share rate, bytes/second
    rate: float = 0.0
    #: scheduled completion event under the current rate
    _event: Optional[EventHandle] = field(default=None, repr=False)
    finished_at: Optional[float] = None


class Network:
    """Tracks active transfers and keeps their finish events consistent."""

    def __init__(self, sim: Simulation, latency: float = 0.0) -> None:
        self.sim = sim
        self.nodes: dict[str, NetNode] = {}
        self._active: dict[int, NetTransfer] = {}
        self._ids = itertools.count(1)
        self._last_update = 0.0
        #: fixed per-transfer setup delay (connection establishment,
        #: manager round-trips) before bytes start flowing
        self.latency = latency
        #: completed-transfer count and bytes, for trace summaries
        self.completed_transfers = 0
        self.bytes_moved = 0.0

    def add_node(self, name: str, up_bps: float, down_bps: Optional[float] = None) -> NetNode:
        """Register an endpoint; ``down_bps`` defaults to ``up_bps``."""
        if name in self.nodes:
            raise ValueError(f"duplicate network node {name!r}")
        node = NetNode(name=name, up_bps=up_bps, down_bps=down_bps if down_bps is not None else up_bps)
        self.nodes[name] = node
        return node

    def set_bandwidth(
        self,
        name: str,
        up_bps: Optional[float] = None,
        down_bps: Optional[float] = None,
    ) -> None:
        """Retune a node's link capacity mid-run (fault injection).

        In-flight transfers are advanced to the current instant first so
        bytes already moved at the old rate stay moved; then every
        active flow's rate and finish event are recomputed.
        """
        node = self.nodes[name]
        self._advance()
        if up_bps is not None:
            node.up_bps = up_bps
        if down_bps is not None:
            node.down_bps = down_bps
        self._reschedule_all()

    def start(
        self,
        src_name: str,
        dst_name: str,
        size: float,
        on_complete: Callable[[NetTransfer], None],
    ) -> NetTransfer:
        """Begin transferring ``size`` bytes; calls back when done."""
        if size < 0:
            raise ValueError("transfer size must be non-negative")
        src = self.nodes[src_name]
        dst = self.nodes[dst_name]
        t = NetTransfer(
            transfer_id=next(self._ids),
            src=src,
            dst=dst,
            size=float(size),
            remaining=float(size),
            on_complete=on_complete,
            started_at=self.sim.now,
        )
        if self.latency > 0:
            # setup phase: occupies the scheduling slot but no bandwidth
            self.sim.schedule(self.latency, self._activate, t)
        else:
            self._activate(t)
        return t

    def _activate(self, t: NetTransfer) -> None:
        self._advance()
        t.src.active_out += 1
        t.dst.active_in += 1
        self._active[t.transfer_id] = t
        self._reschedule_all()

    def active_count(self) -> int:
        """Number of in-flight transfers."""
        return len(self._active)

    # -- internals ------------------------------------------------------

    @staticmethod
    def _fair_rate(t: NetTransfer) -> float:
        up = t.src.up_bps / max(1, t.src.active_out)
        down = t.dst.down_bps / max(1, t.dst.active_in)
        return min(up, down)

    def _advance(self) -> None:
        """Progress every active transfer to the current instant."""
        dt = self.sim.now - self._last_update
        if dt > 0:
            for t in self._active.values():
                t.remaining = max(0.0, t.remaining - t.rate * dt)
        self._last_update = self.sim.now

    def _reschedule_all(self) -> None:
        """Recompute rates and re-arm completion events for all transfers."""
        for t in self._active.values():
            t.rate = self._fair_rate(t)
            if t._event is not None:
                t._event.cancel()
            if t.rate <= 0:
                if t.remaining <= 0:
                    t._event = self.sim.schedule(0.0, self._finish, t.transfer_id)
                else:
                    t._event = None  # stalled; re-armed on next change
                continue
            eta = t.remaining / t.rate
            if not math.isfinite(eta):
                raise RuntimeError(f"non-finite transfer eta for {t}")
            t._event = self.sim.schedule(eta, self._finish, t.transfer_id)

    def _finish(self, transfer_id: int) -> None:
        t = self._active.get(transfer_id)
        if t is None:
            return
        self._advance()
        # a sliver below a millibyte — or one whose ETA underflows the
        # float tick at the current timestamp — counts as delivered;
        # without the ETA check a sub-ulp delay livelocks the clock
        eta = t.remaining / t.rate if t.rate > 0 else float("inf")
        if t.remaining > 1e-3 and (self.sim.now + eta) > self.sim.now:
            t._event = self.sim.schedule(eta, self._finish, t.transfer_id)
            return
        del self._active[transfer_id]
        t.src.active_out -= 1
        t.dst.active_in -= 1
        t.finished_at = self.sim.now
        self.completed_transfers += 1
        self.bytes_moved += t.size
        self._reschedule_all()
        t.on_complete(t)
