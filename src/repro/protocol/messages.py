"""Wire message vocabulary for the TaskVine protocol.

A thin schema layer over the JSON control frames: message *types* are
named constants, and :func:`validate` checks required fields before a
message is acted on, so protocol bugs fail loudly at the boundary
rather than deep inside a runtime.

Direction conventions (paper §2.2: "the manager directs all policy
decisions, while the worker provides the mechanisms"):

* manager → worker: commands (``put_file``, ``fetch_file``,
  ``stage_minitask``, ``execute``, ``send_back``, ``unlink``,
  ``install_library``, ``invoke``, ``shutdown``)
* worker → manager: facts (``register``, ``cache_update``,
  ``cache_invalid``, ``task_done``, ``library_ready``, ``draining``)
* worker ↔ worker: the peer transfer protocol (``get`` /
  ``file_data``).
* client ↔ manager: the session protocol of service mode
  (``client_hello`` through ``detach``) — clients attach to a
  long-lived manager over the same reactor the workers use, and the
  first frame on a connection decides which role it speaks (see
  :data:`SESSION_CLIENT` / :data:`SESSION_WORKER`).
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["M", "validate", "validate_batch", "WireError", "CLIENT_KINDS"]


class WireError(ValueError):
    """A message failed schema validation."""


class M:
    """Message type constants (``msg["type"]`` values)."""

    # manager -> worker
    ACK = "ack"
    PUT_FILE = "put_file"            # + raw bytes follow
    FETCH_FILE = "fetch_file"        # worker pulls from url/peer
    STAGE_MINITASK = "stage_minitask"
    EXECUTE = "execute"
    SEND_BACK = "send_back"
    UNLINK = "unlink"
    INSTALL_LIBRARY = "install_library"  # + raw payload bytes follow
    INVOKE = "invoke"                # + raw args payload bytes follow
    CANCEL_TASK = "cancel_task"
    SHUTDOWN = "shutdown"

    # worker -> manager
    REGISTER = "register"
    HEARTBEAT = "heartbeat"
    CACHE_UPDATE = "cache_update"
    CACHE_INVALID = "cache_invalid"
    TASK_DONE = "task_done"
    LIBRARY_READY = "library_ready"
    FILE_DATA = "file_data"          # + raw bytes follow (send_back reply)
    FAULT = "fault"                  # injected-fault notice (chaos runs)
    DRAINING = "draining"            # graceful-departure announcement

    # worker <-> worker peer transfers
    GET = "get"

    # client -> manager (service mode sessions)
    CLIENT_HELLO = "client_hello"
    DECLARE_FILE = "declare_file"    # + raw buffer bytes follow when size > 0
    SUBMIT_TASK = "submit_task"
    SUBMIT_DAG = "submit_dag"
    FETCH_RESULT = "fetch_result"
    CREATE_LIBRARY = "create_library"  # + serialized function table follows
    DETACH = "detach"

    # manager -> client
    WELCOME = "welcome"
    CLIENT_REJECT = "client_reject"
    FILE_DECLARED = "file_declared"
    TASK_ACCEPTED = "task_accepted"
    TASK_RESULT = "task_result"
    LIBRARY_CREATED = "library_created"
    WORKFLOW_DONE = "workflow_done"
    DETACHED = "detached"

    # either direction: several payload-free control messages coalesced
    # into one frame (batched control traffic; flushed on size/deadline)
    BATCH = "batch"


#: required fields per message type (beyond "type" itself)
_SCHEMA: Mapping[str, tuple[str, ...]] = {
    M.ACK: (),
    M.PUT_FILE: ("cache_name", "size", "level"),
    M.FETCH_FILE: ("cache_name", "source", "transfer_id", "level"),
    M.STAGE_MINITASK: ("cache_name", "spec", "level", "transfer_id"),
    M.EXECUTE: ("task_id", "command", "inputs", "outputs", "resources"),
    M.SEND_BACK: ("cache_name",),
    M.UNLINK: ("cache_name",),
    M.INSTALL_LIBRARY: ("library", "functions", "payload_size", "task_id"),
    M.INVOKE: ("task_id", "library", "function", "payload_size"),
    M.CANCEL_TASK: ("task_id",),
    M.SHUTDOWN: (),
    # optional "rejoin": True when the worker is reconnecting after its
    # manager vanished (crash-safe restart) — its "cached" inventory
    # re-adopts surviving replicas into the new manager life
    M.REGISTER: ("capacity", "transfer_port"),
    M.HEARTBEAT: (),
    M.CACHE_UPDATE: ("cache_name", "size"),
    M.CACHE_INVALID: ("cache_name", "reason"),
    M.TASK_DONE: ("task_id", "exit_code"),
    M.LIBRARY_READY: ("library", "task_id"),
    # optional "md5": transit digest of the served bytes (peer replies)
    M.FILE_DATA: ("cache_name", "found", "size"),
    M.FAULT: ("category",),
    # a worker announcing its graceful departure (elastic scale-down):
    # it keeps serving running tasks and peer transfers until the
    # manager finishes migrating its sole-holder objects and answers
    # with ``shutdown``; optional "reason" describes why it is leaving
    M.DRAINING: (),
    M.GET: ("cache_name",),
    # client sessions.  ``client_hello`` optionally carries "password"
    # (project auth) and "session" (a token from a previous welcome,
    # for reattach); ``declare_file`` announces trailing buffer bytes
    # via spec["size"] when the content rides along.
    M.CLIENT_HELLO: ("tenant",),
    M.DECLARE_FILE: ("ref", "spec"),
    M.SUBMIT_TASK: ("ref", "spec"),
    M.SUBMIT_DAG: ("ref", "tasks"),
    M.FETCH_RESULT: ("cache_name",),
    # ``create_library`` ships the serialized function table as trailing
    # bytes ("payload_size"); the manager never unpickles it — the blob
    # is forwarded verbatim to workers via ``install_library``.
    M.CREATE_LIBRARY: ("ref", "library", "functions", "payload_size"),
    M.DETACH: (),
    # welcome optionally carries "done" (delivery baseline), "missed"
    # (notices lost to the buffer cap or a manager crash) and
    # "recovered" (True when the session was rebuilt from the journal)
    M.WELCOME: ("session", "tenant"),
    M.CLIENT_REJECT: ("reason",),
    M.FILE_DECLARED: ("ref", "cache_name", "cache_hit"),
    M.TASK_ACCEPTED: ("ref", "task_id"),
    M.TASK_RESULT: ("task_id", "state"),
    M.LIBRARY_CREATED: ("ref", "library"),
    M.WORKFLOW_DONE: ("tenant",),
    M.DETACHED: (),
}

#: message types a *client* session may send to the manager.  The
#: reactor uses this to bound what an attached client can do: anything
#: outside this set on a client connection is a protocol violation
#: answered with ``client_reject`` rather than acted on.
CLIENT_KINDS = frozenset(
    {
        M.CLIENT_HELLO,
        M.DECLARE_FILE,
        M.SUBMIT_TASK,
        M.SUBMIT_DAG,
        M.FETCH_RESULT,
        M.CREATE_LIBRARY,
        M.DETACH,
    }
)


def validate(message: dict) -> str:
    """Check a decoded control message; returns its type.

    Raises :class:`WireError` if the type is unknown or any required
    field is missing.  ``batch`` envelopes are validated recursively
    (see :func:`validate_batch`); they live outside ``_SCHEMA`` because
    their one field is structural, not a flat required-key check.
    """
    mtype = message.get("type")
    if mtype == M.BATCH:
        validate_batch(message)
        return mtype
    if mtype not in _SCHEMA:
        raise WireError(f"unknown message type {mtype!r}")
    missing = [f for f in _SCHEMA[mtype] if f not in message]
    if missing:
        raise WireError(f"message {mtype!r} missing fields {missing}")
    return mtype


def validate_batch(message: dict) -> list[dict]:
    """Check a ``batch`` envelope; returns its sub-messages.

    A batch carries a non-empty list of *payload-free* control
    messages: nesting is rejected, as is any sub-message that announces
    trailing bytes (``file_data`` with content, ``task_done`` with a
    result payload) — those must travel as their own frame so bulk
    streams stay contiguous on the wire.
    """
    subs = message.get("messages")
    if not isinstance(subs, list) or not subs:
        raise WireError("batch must carry a non-empty 'messages' list")
    for sub in subs:
        if not isinstance(sub, dict):
            raise WireError("batch sub-message must be a JSON object")
        if sub.get("type") == M.BATCH:
            raise WireError("batch envelopes cannot nest")
        mtype = validate(sub)
        if mtype == M.FILE_DATA and sub.get("found"):
            raise WireError("file_data with content cannot ride in a batch")
        if mtype == M.TASK_DONE and sub.get("result_size"):
            raise WireError("task_done with a result payload cannot ride in a batch")
    return subs
