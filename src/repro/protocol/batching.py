"""Outbound control-message coalescing: the ``batch`` envelope sender.

Workers produce bursts of small notices — ``cache_update`` per
harvested output, ``task_done``, heartbeats — and sending each as its
own frame costs the manager one wakeup, one read and one state-lock
acquisition per notice.  :class:`BatchSender` coalesces notices that
accumulate between send windows into a single ``batch`` frame, flushed
when the queue reaches ``max_batch`` messages or ``max_delay`` seconds
after the first queued notice, whichever comes first.

Ordering is the protocol's load-bearing invariant (a worker's
``cache_update`` for a harvested output must precede its ``task_done``
on the same connection), so the sender is strictly FIFO: direct sends
— registration, frames with trailing byte payloads, streamed files —
flush every queued notice first under the same lock.  A queue of one
flushes as the bare message, not a one-element envelope, so lone
notices stay byte-identical to the unbatched protocol.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.protocol.connection import Connection
from repro.protocol.messages import M

__all__ = ["BatchSender"]


class BatchSender:
    """Thread-safe, order-preserving sender with notice coalescing.

    All of a process's outbound traffic on one connection should go
    through a single instance: :meth:`notice` queues a payload-free
    message for the next flush window, :meth:`send` transmits
    immediately (flushing queued notices first to preserve FIFO order).
    ``max_delay=0`` disables coalescing entirely — every notice is sent
    at once — which keeps the wire byte-identical to the historical
    protocol for tests and baseline benchmarks.
    """

    def __init__(
        self,
        conn: Connection,
        max_batch: int = 128,
        max_delay: float = 0.002,
        metrics=None,
    ) -> None:
        self.conn = conn
        self.max_batch = max(1, max_batch)
        self.max_delay = max_delay
        self._lock = threading.Lock()
        self._queue: list[dict] = []
        self._wake = threading.Condition(self._lock)
        self._stopped = False
        self._m_frames = metrics.counter("net.frames_out") if metrics else None
        self._m_fill = metrics.histogram("net.batch_fill") if metrics else None
        self._flusher: Optional[threading.Thread] = None
        if self.max_delay > 0:
            self._flusher = threading.Thread(
                target=self._flush_loop, name="batch-flusher", daemon=True
            )
            self._flusher.start()

    # -- producing ------------------------------------------------------

    def notice(self, message: dict) -> None:
        """Queue a payload-free message for the next flush window."""
        with self._lock:
            if self.max_delay <= 0:
                self._transmit([message])
                return
            self._queue.append(message)
            if len(self._queue) >= self.max_batch:
                self._flush_locked()
            elif len(self._queue) == 1:
                self._wake.notify()  # start this window's deadline

    def send(self, message: dict, payload: Optional[bytes] = None) -> None:
        """Send one message immediately, after flushing queued notices."""
        with self._lock:
            self._flush_locked()
            self._transmit([message])
            if payload is not None:
                self.conn.send_bytes(payload)

    def send_with_file(self, message: dict, path: str, size: int) -> None:
        """Send a message followed by streamed file content."""
        with self._lock:
            self._flush_locked()
            self._transmit([message])
            self.conn.send_file(path, size)

    def flush(self) -> None:
        """Transmit any queued notices now."""
        with self._lock:
            self._flush_locked()

    # -- internals ------------------------------------------------------

    def _flush_locked(self) -> None:
        if self._queue:
            batch, self._queue = self._queue, []
            self._transmit(batch)

    def _transmit(self, messages: list[dict]) -> None:
        if len(messages) == 1:
            self.conn.send_message(messages[0])
        else:
            self.conn.send_message({"type": M.BATCH, "messages": messages})
        if self._m_frames is not None:
            self._m_frames.inc()
        if self._m_fill is not None:
            self._m_fill.observe(len(messages))

    def _flush_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopped:
                    self._wake.wait()
                if self._stopped and not self._queue:
                    return
            # deadline: give the window max_delay to fill, then flush
            # whatever accumulated (outside the lock so producers and
            # direct sends are never stalled by the wait itself)
            threading.Event().wait(self.max_delay)
            try:
                self.flush()
            except OSError:
                return  # connection tore down; producers will see it too

    def close(self) -> None:
        """Flush remaining notices and stop the flusher (idempotent)."""
        with self._lock:
            self._stopped = True
            try:
                self._flush_locked()
            except OSError:
                pass
            self._wake.notify_all()
        if self._flusher is not None:
            self._flusher.join(timeout=5)
            self._flusher = None
