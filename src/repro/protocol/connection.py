"""Socket framing for the manager↔worker and worker↔worker protocols.

All control traffic is length-prefixed JSON; bulk file content follows
a control message as a raw byte stream of pre-announced size (so large
objects never pass through the JSON encoder).  The same
:class:`Connection` wrapper serves the manager's command channel and
the per-worker peer-transfer channel.
"""

from __future__ import annotations

import json
import os
import socket
import struct
from typing import Optional

__all__ = [
    "Connection",
    "FrameReassembler",
    "ProtocolError",
    "encode_frame",
    "listen",
    "SESSION_CLIENT",
    "SESSION_WORKER",
    "session_kind",
]

#: frame header: unsigned 32-bit big-endian payload length
_HEADER = struct.Struct(">I")

#: refuse absurd frames rather than attempting a giant allocation
MAX_MESSAGE_SIZE = 64 << 20

#: chunk size for streaming file content through the socket
IO_CHUNK = 1 << 20

#: per-call non-blocking flag; 0 where unsupported (plain recv then)
_MSG_DONTWAIT = getattr(socket, "MSG_DONTWAIT", 0)


class ProtocolError(ConnectionError):
    """Malformed frame, unexpected EOF, or oversized message."""


#: session roles served by the manager's reactor.  A single listening
#: socket admits both workers and clients (service mode); the *first*
#: control frame on a connection decides which protocol it speaks.
SESSION_WORKER = "worker"
SESSION_CLIENT = "client"


def session_kind(mtype: str) -> Optional[str]:
    """Role implied by a connection's first message type.

    ``register`` opens a worker session and ``client_hello`` a client
    session; any other opening frame is invalid and returns None (the
    reactor then unwinds the connection).
    """
    if mtype == "register":
        return SESSION_WORKER
    if mtype == "client_hello":
        return SESSION_CLIENT
    return None


def encode_frame(message: dict) -> bytes:
    """Encode one JSON control message as a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode()
    if len(payload) > MAX_MESSAGE_SIZE:
        raise ProtocolError(f"message too large: {len(payload)} bytes")
    return _HEADER.pack(len(payload)) + payload


def listen(host: str = "127.0.0.1", port: int = 0) -> socket.socket:
    """Create a listening TCP socket; ``port=0`` picks a free port."""
    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    s.bind((host, port))
    s.listen(128)
    return s


class Connection:
    """A framed, bidirectional message channel over one TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    @classmethod
    def connect(cls, host: str, port: int, timeout: Optional[float] = 30.0) -> "Connection":
        """Open a client connection to ``host:port``."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        return cls(sock)

    # -- framed JSON --------------------------------------------------

    def send_message(self, message: dict) -> None:
        """Send one JSON control message as a length-prefixed frame."""
        self.sock.sendall(encode_frame(message))

    def send_frame(self, frame: bytes) -> None:
        """Send a pre-encoded frame (see :func:`encode_frame`)."""
        self.sock.sendall(frame)

    def recv_message(self) -> dict:
        """Receive one JSON control message; raises on EOF/corruption."""
        header = self._recv_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_MESSAGE_SIZE:
            raise ProtocolError(f"incoming message too large: {length} bytes")
        payload = self._recv_exact(length)
        try:
            message = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"corrupt frame: {exc}") from exc
        if not isinstance(message, dict):
            raise ProtocolError("control message must be a JSON object")
        return message

    # -- raw byte streams ----------------------------------------------

    def send_bytes(self, data: bytes) -> None:
        """Send a pre-announced raw byte payload."""
        self.sock.sendall(data)

    def recv_bytes(self, size: int) -> bytes:
        """Receive exactly ``size`` raw bytes."""
        return self._recv_exact(size)

    def send_file(self, path: str | os.PathLike, size: int) -> None:
        """Stream exactly ``size`` bytes of a file's content."""
        remaining = size
        with open(path, "rb") as f:
            while remaining > 0:
                chunk = f.read(min(IO_CHUNK, remaining))
                if not chunk:
                    raise ProtocolError(
                        f"file {path} shorter than announced size {size}"
                    )
                self.sock.sendall(chunk)
                remaining -= len(chunk)

    def recv_to_file(self, path: str | os.PathLike, size: int) -> None:
        """Receive exactly ``size`` bytes into a file (created/truncated)."""
        remaining = size
        with open(path, "wb") as f:
            while remaining > 0:
                chunk = self.sock.recv(min(IO_CHUNK, remaining))
                if not chunk:
                    raise ProtocolError(
                        f"connection closed with {remaining} bytes outstanding"
                    )
                f.write(chunk)
                remaining -= len(chunk)

    # -- non-blocking reads (reactor path) -----------------------------

    def recv_ready(self, max_bytes: int = IO_CHUNK) -> Optional[bytes]:
        """One non-blocking read for event-driven callers.

        Returns up to ``max_bytes`` of available data, ``b""`` on EOF,
        or ``None`` when the socket has nothing to deliver right now (a
        spurious readiness wakeup).  ``MSG_DONTWAIT`` makes this single
        call non-blocking without flipping the socket itself, so writer
        threads sharing the connection keep ordinary blocking ``sendall``
        semantics.
        """
        try:
            return self.sock.recv(max_bytes, _MSG_DONTWAIT)
        except (BlockingIOError, InterruptedError):
            return None

    # -- internals -------------------------------------------------------

    def _recv_exact(self, size: int) -> bytes:
        parts = []
        remaining = size
        while remaining > 0:
            chunk = self.sock.recv(min(IO_CHUNK, remaining))
            if not chunk:
                raise ProtocolError(
                    f"connection closed with {remaining} bytes outstanding"
                )
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    def settimeout(self, timeout: Optional[float]) -> None:
        """Adjust the socket timeout for subsequent operations."""
        self.sock.settimeout(timeout)

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()

    def fileno(self) -> int:
        """Underlying descriptor, for use with selectors."""
        return self.sock.fileno()


class FrameReassembler:
    """Incremental frame reassembly for event-driven (reactor) readers.

    Bytes arrive in arbitrary chunks — a frame may be split across many
    reads, or one read may hold many frames plus the start of the next.
    Feed every chunk with :meth:`feed`, then drain complete items with
    :meth:`next_item`:

    * in *frame* mode (the default), an item is one decoded JSON control
      message (``("msg", dict)``);
    * after :meth:`expect_bytes`, the next item is one raw byte payload
      of the announced size (``("bytes", b"...")``) — this is how a
      reader switches into bulk mode for messages that announce a
      trailing payload (``file_data``, ``task_done`` results).

    The pull API guarantees a consumer sees items strictly in wire
    order, and can decide per-item whether the next bytes are a frame
    or a bulk payload.  ``feed(b"")`` records EOF: leftover partial
    data then raises :class:`ProtocolError` (truncated frame or bulk
    stream), while a clean boundary just ends iteration.
    """

    def __init__(self, max_message_size: Optional[int] = None) -> None:
        self.max_message_size = (
            MAX_MESSAGE_SIZE if max_message_size is None else max_message_size
        )
        self._chunks: list[bytes] = []
        self._buffered = 0
        self._expected: Optional[int] = None  # bulk-mode byte count
        self._eof = False

    @property
    def buffered(self) -> int:
        """Bytes received but not yet emitted as items."""
        return self._buffered

    def feed(self, data: bytes) -> None:
        """Add received bytes; ``b""`` marks EOF."""
        if data:
            self._chunks.append(data)
            self._buffered += len(data)
        else:
            self._eof = True

    def expect_bytes(self, size: int) -> None:
        """The next item is a raw payload of exactly ``size`` bytes."""
        if self._expected is not None:
            raise ProtocolError("already expecting a bulk payload")
        if size < 0:
            raise ProtocolError(f"negative bulk payload size {size}")
        self._expected = size

    def next_item(self) -> Optional[tuple[str, "dict | bytes"]]:
        """Next complete item, or None until more bytes arrive.

        Raises :class:`ProtocolError` on oversized/corrupt frames and
        on EOF with a partial frame or bulk payload outstanding.
        """
        if self._expected is not None:
            if self._buffered < self._expected:
                self._check_eof("bulk payload")
                return None
            payload = self._take(self._expected)
            self._expected = None
            return ("bytes", payload)
        if self._buffered < _HEADER.size:
            self._check_eof("frame header")
            return None
        (length,) = _HEADER.unpack(self._peek(_HEADER.size))
        if length > self.max_message_size:
            raise ProtocolError(f"incoming message too large: {length} bytes")
        if self._buffered < _HEADER.size + length:
            self._check_eof("frame body")
            return None
        self._take(_HEADER.size)
        payload = self._take(length)
        try:
            message = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"corrupt frame: {exc}") from exc
        if not isinstance(message, dict):
            raise ProtocolError("control message must be a JSON object")
        return ("msg", message)

    def _check_eof(self, what: str) -> None:
        if self._eof and (self._buffered or self._expected is not None):
            raise ProtocolError(
                f"connection closed mid-{what} "
                f"({self._buffered} bytes buffered)"
            )

    # -- buffer plumbing ------------------------------------------------

    def _compact(self) -> None:
        if len(self._chunks) > 1:
            self._chunks = [b"".join(self._chunks)]

    def _peek(self, size: int) -> bytes:
        if len(self._chunks[0]) < size:
            self._compact()
        return self._chunks[0][:size]

    def _take(self, size: int) -> bytes:
        if size == 0:
            return b""
        self._compact()
        head = self._chunks[0]
        taken, rest = head[:size], head[size:]
        self._chunks = [rest] if rest else []
        self._buffered -= size
        return taken
