"""Socket framing for the manager↔worker and worker↔worker protocols.

All control traffic is length-prefixed JSON; bulk file content follows
a control message as a raw byte stream of pre-announced size (so large
objects never pass through the JSON encoder).  The same
:class:`Connection` wrapper serves the manager's command channel and
the per-worker peer-transfer channel.
"""

from __future__ import annotations

import json
import os
import socket
import struct
from typing import Optional

__all__ = ["Connection", "ProtocolError", "listen"]

#: frame header: unsigned 32-bit big-endian payload length
_HEADER = struct.Struct(">I")

#: refuse absurd frames rather than attempting a giant allocation
MAX_MESSAGE_SIZE = 64 << 20

#: chunk size for streaming file content through the socket
IO_CHUNK = 1 << 20


class ProtocolError(ConnectionError):
    """Malformed frame, unexpected EOF, or oversized message."""


def listen(host: str = "127.0.0.1", port: int = 0) -> socket.socket:
    """Create a listening TCP socket; ``port=0`` picks a free port."""
    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    s.bind((host, port))
    s.listen(128)
    return s


class Connection:
    """A framed, bidirectional message channel over one TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    @classmethod
    def connect(cls, host: str, port: int, timeout: Optional[float] = 30.0) -> "Connection":
        """Open a client connection to ``host:port``."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        return cls(sock)

    # -- framed JSON --------------------------------------------------

    def send_message(self, message: dict) -> None:
        """Send one JSON control message as a length-prefixed frame."""
        payload = json.dumps(message, separators=(",", ":")).encode()
        if len(payload) > MAX_MESSAGE_SIZE:
            raise ProtocolError(f"message too large: {len(payload)} bytes")
        self.sock.sendall(_HEADER.pack(len(payload)) + payload)

    def recv_message(self) -> dict:
        """Receive one JSON control message; raises on EOF/corruption."""
        header = self._recv_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_MESSAGE_SIZE:
            raise ProtocolError(f"incoming message too large: {length} bytes")
        payload = self._recv_exact(length)
        try:
            message = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"corrupt frame: {exc}") from exc
        if not isinstance(message, dict):
            raise ProtocolError("control message must be a JSON object")
        return message

    # -- raw byte streams ----------------------------------------------

    def send_bytes(self, data: bytes) -> None:
        """Send a pre-announced raw byte payload."""
        self.sock.sendall(data)

    def recv_bytes(self, size: int) -> bytes:
        """Receive exactly ``size`` raw bytes."""
        return self._recv_exact(size)

    def send_file(self, path: str | os.PathLike, size: int) -> None:
        """Stream exactly ``size`` bytes of a file's content."""
        remaining = size
        with open(path, "rb") as f:
            while remaining > 0:
                chunk = f.read(min(IO_CHUNK, remaining))
                if not chunk:
                    raise ProtocolError(
                        f"file {path} shorter than announced size {size}"
                    )
                self.sock.sendall(chunk)
                remaining -= len(chunk)

    def recv_to_file(self, path: str | os.PathLike, size: int) -> None:
        """Receive exactly ``size`` bytes into a file (created/truncated)."""
        remaining = size
        with open(path, "wb") as f:
            while remaining > 0:
                chunk = self.sock.recv(min(IO_CHUNK, remaining))
                if not chunk:
                    raise ProtocolError(
                        f"connection closed with {remaining} bytes outstanding"
                    )
                f.write(chunk)
                remaining -= len(chunk)

    # -- internals -------------------------------------------------------

    def _recv_exact(self, size: int) -> bytes:
        parts = []
        remaining = size
        while remaining > 0:
            chunk = self.sock.recv(min(IO_CHUNK, remaining))
            if not chunk:
                raise ProtocolError(
                    f"connection closed with {remaining} bytes outstanding"
                )
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    def settimeout(self, timeout: Optional[float]) -> None:
        """Adjust the socket timeout for subsequent operations."""
        self.sock.settimeout(timeout)

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()

    def fileno(self) -> int:
        """Underlying descriptor, for use with selectors."""
        return self.sock.fileno()
