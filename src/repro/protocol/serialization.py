"""Function and argument serialization for PythonTasks and libraries.

A :class:`~repro.core.task.PythonTask` ships "the function code ...
serialized along with the needed Python dependencies" to the worker
(paper §2.4).  Standard :mod:`pickle` serializes functions *by
reference* (module + qualname), which breaks for functions defined in
``__main__`` of an application script — precisely the common case for
workflow code.  This module extends pickle to serialize such functions
*by value*: the code object is marshaled, and the referenced globals,
closure cells, defaults, and nested functions are captured recursively.

Importable functions (from real installed modules) are still serialized
by reference, keeping payloads small.  Recursive and mutually-recursive
functions work: shells are created first and their state (including
self-references) is filled afterwards through pickle's two-phase
``__reduce__`` protocol, so cycles resolve through the pickle memo.
"""

from __future__ import annotations

import importlib
import io
import marshal
import pickle
import sys
import types
from typing import Any

__all__ = ["dumps", "loads", "SerializationError"]


class SerializationError(Exception):
    """Raised when an object cannot be serialized for shipping."""


def _referenced_globals(code: types.CodeType, globals_dict: dict) -> dict:
    """Collect the globals a code object (and its nested code) may read."""
    names: set[str] = set()
    stack = [code]
    while stack:
        c = stack.pop()
        names.update(c.co_names)
        for const in c.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return {n: globals_dict[n] for n in names if n in globals_dict}


def _is_importable(fn: types.FunctionType) -> bool:
    """True if ``fn`` can be recovered by (module, qualname) lookup."""
    module = getattr(fn, "__module__", None)
    if not module or module == "__main__":
        return False
    mod = sys.modules.get(module)
    if mod is None:
        return False
    obj = mod
    try:
        for part in fn.__qualname__.split("."):
            obj = getattr(obj, part)
    except AttributeError:
        return False
    return obj is fn


def _make_function_shell(code_bytes: bytes, name: str, n_freevars: int):
    """Phase one of rebuilding a by-value function: an empty shell.

    The shell has fresh (empty-contents) closure cells and a globals
    dict containing only builtins; :func:`_fill_function` completes it.
    """
    code = marshal.loads(code_bytes)
    cells = tuple(types.CellType() for _ in range(n_freevars))
    fn_globals: dict = {"__builtins__": __builtins__}
    return types.FunctionType(code, fn_globals, name, None, cells)


def _fill_function(fn: types.FunctionType, state: dict) -> None:
    """Phase two: install globals, defaults, and closure-cell contents."""
    fn.__globals__.update(state["globals"])
    fn.__defaults__ = state["defaults"]
    fn.__kwdefaults__ = state["kwdefaults"]
    fn.__qualname__ = state["qualname"]
    fn.__doc__ = state["doc"]
    if state["fn_dict"]:
        fn.__dict__.update(state["fn_dict"])
    for cell, contents in zip(fn.__closure__ or (), state["cells"]):
        if contents is not _EMPTY_CELL:
            cell.cell_contents = contents


class _EmptyCellSentinel:
    """Marker for a closure cell that was unset at serialization time."""

    def __reduce__(self):
        return (_get_empty_cell_sentinel, ())


def _get_empty_cell_sentinel() -> "_EmptyCellSentinel":
    return _EMPTY_CELL


_EMPTY_CELL = _EmptyCellSentinel()


def _import_module(name: str) -> types.ModuleType:
    """Rebuild a module reference on the receiving side."""
    return importlib.import_module(name)


class _Pickler(pickle.Pickler):
    """Pickler that serializes non-importable functions by value."""

    def reducer_override(self, obj: Any):
        if isinstance(obj, types.ModuleType):
            return (_import_module, (obj.__name__,))
        if isinstance(obj, types.FunctionType):
            if _is_importable(obj):
                # defer to pickle's standard by-reference handling; also
                # breaks the recursion on our own reconstructor functions
                return NotImplemented
            return self._reduce_function(obj)
        return NotImplemented

    def _reduce_function(self, fn: types.FunctionType):
        try:
            code_bytes = marshal.dumps(fn.__code__)
        except ValueError as exc:  # pragma: no cover - marshal edge cases
            raise SerializationError(f"cannot marshal code of {fn!r}: {exc}") from exc
        cells = []
        for cell in fn.__closure__ or ():
            try:
                cells.append(cell.cell_contents)
            except ValueError:  # unset cell (e.g. not-yet-defined recursion)
                cells.append(_EMPTY_CELL)
        state = {
            "globals": _referenced_globals(fn.__code__, fn.__globals__),
            "defaults": fn.__defaults__,
            "kwdefaults": fn.__kwdefaults__,
            "qualname": fn.__qualname__,
            "doc": fn.__doc__,
            "fn_dict": dict(fn.__dict__),
            "cells": cells,
        }
        n_freevars = len(fn.__code__.co_freevars)
        return (
            _make_function_shell,
            (code_bytes, fn.__name__, n_freevars),
            state,
            None,
            None,
            _fill_function,
        )


def dumps(obj: Any) -> bytes:
    """Serialize ``obj`` (which may be or contain functions) to bytes."""
    buf = io.BytesIO()
    try:
        _Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
    return buf.getvalue()


def loads(data: bytes) -> Any:
    """Inverse of :func:`dumps`."""
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise SerializationError(f"cannot deserialize payload: {exc}") from exc


def _path_hints() -> list[str]:
    """The sender's importable locations, for same-host receivers.

    By-reference functions (module + qualname) are only loadable if the
    receiver can import the module.  On one machine — the deployment
    this reproduction targets, like the paper's shared filesystem — the
    sender's ``sys.path`` entries are valid hints for the receiving
    interpreter.
    """
    import os

    return [p for p in sys.path if p and os.path.isdir(p)]


def dumps_portable(obj: Any) -> bytes:
    """Serialize with import-path hints for fresh-interpreter receivers.

    The outer envelope contains only primitives, so it can be decoded
    *before* the inner payload needs any application module imported.
    """
    envelope = {"sys_path": _path_hints(), "blob": dumps(obj)}
    return pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)


def loads_portable(data: bytes) -> Any:
    """Inverse of :func:`dumps_portable`: extend ``sys.path``, then load."""
    try:
        envelope = pickle.loads(data)
    except Exception as exc:
        raise SerializationError(f"cannot decode payload envelope: {exc}") from exc
    if not isinstance(envelope, dict) or "blob" not in envelope:
        raise SerializationError("payload is not a portable envelope")
    for path in envelope.get("sys_path", []):
        if isinstance(path, str) and path not in sys.path:
            sys.path.append(path)
    return loads(envelope["blob"])
