"""``repro-memo``: inspect and maintain a persistent memo store.

Read-only inspection (``ls``, ``stats``) plus the two maintenance verbs
an operator needs: ``gc`` (expire old entries, drop orphaned payloads)
and ``invalidate`` (remove one entry by merkle, or everything with
``--all``).  Operates directly on the on-disk store, so it works
whether or not a service is running — mutations while a daemon holds
the same directory are last-writer-wins, exactly like any other
offline maintenance tool.

    repro-memo --dir svc/memo ls
    repro-memo --dir svc/memo stats --json
    repro-memo --dir svc/memo gc --max-age 604800
    repro-memo --dir svc/memo invalidate <merkle>
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.memo.store import MemoStore

__all__ = ["main"]


def _cmd_ls(store: MemoStore, args: argparse.Namespace) -> int:
    entries = sorted(store.entries(), key=lambda e: e.created)
    if args.json:
        print(json.dumps([e.to_dict() for e in entries]))
        return 0
    if not entries:
        print("(empty memo store)")
        return 0
    print(
        f"{'merkle':<34s} {'kind':<8s} {'tenant':<10s} {'outs':>4s} "
        f"{'bytes':>10s} {'hits':>5s}  command"
    )
    for e in entries:
        total = sum(o.size for o in e.outputs)
        print(
            f"{e.merkle:<34.32s} {e.kind:<8s} {e.tenant:<10.10s} "
            f"{len(e.outputs):>4d} {total:>10d} {e.hits:>5d}  {e.command[:40]}"
        )
    return 0


def _cmd_stats(store: MemoStore, args: argparse.Namespace) -> int:
    stats = store.stats()
    if args.json:
        print(json.dumps(stats))
        return 0
    print(f"entries:        {stats['entries']}")
    print(f"outputs:        {stats['outputs']}")
    print(f"result bytes:   {stats['result_bytes']}")
    print(f"total hits:     {stats['hits']}")
    print(f"payloads:       {stats['payloads']} ({stats['payload_bytes']} bytes)")
    print(f"tenants:        {', '.join(stats['tenants']) or '-'}")
    return 0


def _cmd_gc(store: MemoStore, args: argparse.Namespace) -> int:
    removed = store.gc(
        max_age=args.max_age, max_entries=args.max_entries, now=time.time()
    )
    if args.json:
        print(json.dumps({"removed": removed}))
    else:
        print(f"removed {len(removed)} entr{'y' if len(removed) == 1 else 'ies'}")
    return 0


def _cmd_invalidate(store: MemoStore, args: argparse.Namespace) -> int:
    if args.all:
        merkles = [e.merkle for e in store.entries()]
    else:
        if not args.merkle:
            print("repro-memo: invalidate needs a merkle (or --all)", file=sys.stderr)
            return 2
        merkles = [args.merkle]
    removed = [m for m in merkles if store.remove(m)]
    missing = [m for m in merkles if m not in removed]
    if args.json:
        print(json.dumps({"removed": removed, "missing": missing}))
    else:
        for m in removed:
            print(f"invalidated {m}")
        for m in missing:
            print(f"no such entry {m}", file=sys.stderr)
    return 0 if not missing else 1


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-memo",
        description="Inspect and maintain a persistent memoization store",
    )
    parser.add_argument("--dir", required=True, help="memo store directory")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    sub = parser.add_subparsers(dest="cmd", required=True)

    sub.add_parser("ls", help="list recorded entries")
    sub.add_parser("stats", help="aggregate store statistics")

    gc = sub.add_parser("gc", help="expire entries and drop orphaned payloads")
    gc.add_argument("--max-age", type=float, default=None, help="seconds since last use")
    gc.add_argument("--max-entries", type=int, default=None, help="keep at most N entries")

    inv = sub.add_parser("invalidate", help="remove one entry (or --all)")
    inv.add_argument("merkle", nargs="?", default=None)
    inv.add_argument("--all", action="store_true", help="remove every entry")

    args = parser.parse_args(argv)
    try:
        store = MemoStore(args.dir)
    except OSError as exc:
        print(f"repro-memo: {exc}", file=sys.stderr)
        return 1
    handlers = {
        "ls": _cmd_ls,
        "stats": _cmd_stats,
        "gc": _cmd_gc,
        "invalidate": _cmd_invalidate,
    }
    return handlers[args.cmd](store, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
