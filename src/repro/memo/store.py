"""Disk-backed memoization store: task merkle → recorded results.

Layout under one root directory (typically the service state dir's
``memo/``):

* ``index.json`` — every entry, written atomically (tmp + rename) on
  each mutation, so a SIGKILL never leaves a torn index;
* ``objects/<cache_name>`` — retained output payloads (small outputs
  only, bounded by ``payload_limit``), which let a hit be served even
  after every worker cache holding the replica is gone.

The store is mechanism only: it never decides *whether* an entry is
sound to serve — the control plane does, by checking live replicas
and/or asking the runtime adapter to md5-verify a retained payload.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Iterator, Optional

from repro.util.hashing import hash_bytes, hash_file

__all__ = ["MemoOutput", "MemoEntry", "MemoStore"]

_INDEX_NAME = "index.json"
_SCHEMA = 1


@dataclass
class MemoOutput:
    """One recorded output of a memoized execution."""

    sandbox: str
    cache_name: str
    size: int
    #: md5 of the retained payload in ``objects/`` (None when the
    #: output was too large to retain, or harvest never completed)
    md5: Optional[str] = None


@dataclass
class MemoEntry:
    """Provenance record for one (task merkle → result) binding."""

    merkle: str
    kind: str
    command: str
    tenant: str
    created: float
    outputs: list[MemoOutput] = field(default_factory=list)
    hits: int = 0
    last_used: float = 0.0

    def output_names(self) -> list[str]:
        return [o.cache_name for o in self.outputs]

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "MemoEntry":
        outputs = [MemoOutput(**o) for o in d.get("outputs", [])]
        return cls(
            merkle=d["merkle"],
            kind=d.get("kind", "command"),
            command=d.get("command", ""),
            tenant=d.get("tenant", "default"),
            created=float(d.get("created", 0.0)),
            outputs=outputs,
            hits=int(d.get("hits", 0)),
            last_used=float(d.get("last_used", 0.0)),
        )


class MemoStore:
    """The persistent memo index plus its retained-payload object dir."""

    #: outputs larger than this are recorded but not retained as
    #: payloads — a hit then requires a live replica (or regeneration)
    DEFAULT_PAYLOAD_LIMIT = 16 << 20

    def __init__(self, root: str, payload_limit: Optional[int] = None) -> None:
        self.root = os.path.abspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        os.makedirs(self.objects_dir, exist_ok=True)
        self.payload_limit = (
            self.DEFAULT_PAYLOAD_LIMIT if payload_limit is None else int(payload_limit)
        )
        self._entries: dict[str, MemoEntry] = {}
        self._load()

    # -- persistence ---------------------------------------------------

    def _index_path(self) -> str:
        return os.path.join(self.root, _INDEX_NAME)

    def _load(self) -> None:
        try:
            with open(self._index_path()) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError):
            return
        if int(data.get("v", 0)) != _SCHEMA:
            return  # unknown schema: start fresh rather than misread
        for merkle, raw in data.get("entries", {}).items():
            try:
                self._entries[merkle] = MemoEntry.from_dict(raw)
            except (KeyError, TypeError, ValueError):
                continue  # one corrupt record must not poison the rest

    def flush(self) -> None:
        """Write the index atomically (also called on every mutation)."""
        data = {
            "v": _SCHEMA,
            "entries": {m: e.to_dict() for m, e in self._entries.items()},
        }
        tmp = self._index_path() + ".tmp"
        with open(tmp, "w") as f:
            json.dump(data, f)
        os.replace(tmp, self._index_path())

    # -- index ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, merkle: str) -> bool:
        return merkle in self._entries

    def get(self, merkle: str) -> Optional[MemoEntry]:
        return self._entries.get(merkle)

    def entries(self) -> Iterator[MemoEntry]:
        return iter(list(self._entries.values()))

    def record(
        self,
        merkle: str,
        kind: str,
        command: str,
        tenant: str,
        outputs: list[MemoOutput],
        now: Optional[float] = None,
    ) -> MemoEntry:
        """Bind ``merkle`` to a fresh execution's outputs (overwrites)."""
        entry = MemoEntry(
            merkle=merkle,
            kind=kind,
            command=command,
            tenant=tenant,
            created=time.time() if now is None else now,
            outputs=list(outputs),
        )
        self._entries[merkle] = entry
        self.flush()
        return entry

    def touch(self, merkle: str, now: Optional[float] = None) -> None:
        """Count a served hit for ``merkle``."""
        e = self._entries.get(merkle)
        if e is not None:
            e.hits += 1
            e.last_used = time.time() if now is None else now
            self.flush()

    def remove(self, merkle: str, drop_payloads: bool = True) -> bool:
        """Invalidate one entry (and, by default, its retained payloads
        not referenced by any other entry)."""
        entry = self._entries.pop(merkle, None)
        if entry is None:
            return False
        if drop_payloads:
            still_referenced = {
                o.cache_name for e in self._entries.values() for o in e.outputs
            }
            for out in entry.outputs:
                if out.cache_name not in still_referenced:
                    self.drop_payload(out.cache_name)
        self.flush()
        return True

    # -- retained payloads --------------------------------------------

    def payload_path(self, cache_name: str) -> str:
        if "/" in cache_name or cache_name in (".", ".."):
            raise ValueError(f"illegal cache name {cache_name!r}")
        return os.path.join(self.objects_dir, cache_name)

    def has_payload(self, cache_name: str) -> bool:
        return os.path.isfile(self.payload_path(cache_name))

    def store_payload(self, cache_name: str, data: bytes) -> str:
        """Retain an output's bytes; returns their md5."""
        path = self.payload_path(cache_name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(data)
        os.replace(tmp, path)
        return hash_bytes(data)

    def verify_payload(self, cache_name: str, md5: Optional[str]) -> bool:
        """True iff a retained payload exists and matches ``md5``.

        A payload with no recorded md5 is never trusted — without the
        digest there is nothing to check it against.
        """
        if md5 is None:
            return False
        path = self.payload_path(cache_name)
        try:
            return hash_file(path) == md5
        except OSError:
            return False

    def drop_payload(self, cache_name: str) -> None:
        try:
            os.unlink(self.payload_path(cache_name))
        except OSError:
            pass

    def set_output_md5(self, merkle: str, cache_name: str, md5: str) -> None:
        """Record the digest of a freshly retained payload."""
        e = self._entries.get(merkle)
        if e is None:
            return
        for out in e.outputs:
            if out.cache_name == cache_name:
                out.md5 = md5
        self.flush()

    # -- maintenance ----------------------------------------------------

    def stats(self) -> dict:
        """Aggregate view for ``repro-memo stats`` and the benches."""
        entries = list(self._entries.values())
        payload_bytes = 0
        payload_count = 0
        for name in os.listdir(self.objects_dir):
            p = os.path.join(self.objects_dir, name)
            if os.path.isfile(p) and not name.endswith(".tmp"):
                payload_bytes += os.path.getsize(p)
                payload_count += 1
        return {
            "entries": len(entries),
            "outputs": sum(len(e.outputs) for e in entries),
            "result_bytes": sum(o.size for e in entries for o in e.outputs),
            "hits": sum(e.hits for e in entries),
            "payloads": payload_count,
            "payload_bytes": payload_bytes,
            "tenants": sorted({e.tenant for e in entries}),
        }

    def gc(
        self,
        max_age: Optional[float] = None,
        max_entries: Optional[int] = None,
        now: Optional[float] = None,
    ) -> list[str]:
        """Expire entries (oldest-use first) and orphaned payloads.

        Returns the merkles removed.  With no bounds given, only orphan
        payloads — objects referenced by no entry — are collected.
        """
        clock = time.time() if now is None else now
        removed: list[str] = []
        for e in list(self._entries.values()):
            ref = e.last_used or e.created
            if max_age is not None and clock - ref > max_age:
                removed.append(e.merkle)
        if max_entries is not None and len(self._entries) - len(removed) > max_entries:
            survivors = sorted(
                (e for e in self._entries.values() if e.merkle not in set(removed)),
                key=lambda e: (e.last_used or e.created),
            )
            excess = len(survivors) - max_entries
            removed.extend(e.merkle for e in survivors[:excess])
        for merkle in removed:
            self.remove(merkle)
        referenced = {
            o.cache_name for e in self._entries.values() for o in e.outputs
        }
        for name in os.listdir(self.objects_dir):
            if name.endswith(".tmp") or name not in referenced:
                try:
                    os.unlink(os.path.join(self.objects_dir, name))
                except OSError:
                    pass
        if removed:
            self.flush()
        return removed
