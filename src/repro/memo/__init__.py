"""Persistent, content-addressed result memoization (OxyMake-style).

The paper's §3.2 naming scheme makes cached objects identifiable across
workflows; this package adds the missing half of the bargain — a
persistent index from *task merkle* (the recipe hash computed by
:func:`repro.core.naming.task_merkle`) to the recorded outputs of a
prior execution, so an identical deterministic submission can complete
without dispatching, across runs, daemon restarts, and tenants.

Soundness follows OxyMake's rule: a memo entry may only be served while
each recorded output is backed by a live replica or an md5-verified
retained payload; otherwise the entry is invalidated and the task runs
(and re-records).  Policy — when to consult, serve, or invalidate —
lives in :class:`repro.core.control_plane.ControlPlane`; this package
is pure mechanism (the on-disk store and its CLI).
"""

from repro.memo.store import MemoEntry, MemoOutput, MemoStore

__all__ = ["MemoEntry", "MemoOutput", "MemoStore"]
