"""Service mode: a long-lived multi-tenant manager and its clients.

One always-on :class:`~repro.core.manager.Manager` owns the workers
and the content-addressed cache; many client workflows attach to it
over the client-session protocol (``docs/protocol.md``), each under a
tenant label with its own namespace, quotas, and fair share of the
cluster.  :mod:`repro.service.daemon` is the TigerFlow-style
``repro-service run|status|stop`` lifecycle; :mod:`repro.service.client`
is the blocking client library and CLI.
"""

from repro.service.client import ClientError, ServiceClient

__all__ = ["ServiceClient", "ClientError"]
