"""Blocking client for a service-mode manager, plus its CLI.

A :class:`ServiceClient` speaks the client-session protocol over one
framed TCP connection: a ``client_hello`` handshake (tenant label +
optional project password), content declarations, task submission,
and streamed completion notices.  Replies and asynchronous notices
share the connection, so every receive funnels through :meth:`_pump`,
which files ``task_result``/``workflow_done`` notices away while a
caller waits for its specific reply.

The CLI (``python -m repro.service.client`` / ``repro-client``) drives
small canned workflows against a running service — the CI smoke job
uses ``demo`` to show two tenants sharing one content-addressed input.
"""

from __future__ import annotations

import argparse
import collections
import hashlib
import itertools
import json
import select
import sys
import time
from typing import Callable, Optional, Sequence

from repro.core.resultref import ResultProxy, ResultRef, scan_refs
from repro.protocol import serialization as ser
from repro.protocol.connection import Connection
from repro.protocol.messages import M

__all__ = ["ServiceClient", "ClientError", "main"]


class ClientError(RuntimeError):
    """The service refused a request (``client_reject``)."""


class ServiceClient:
    """One tenant's attachment to a running service-mode manager."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        password: Optional[str] = None,
        session: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        self.tenant = tenant
        self.conn = Connection.connect(host, port, timeout=timeout)
        self.conn.settimeout(timeout)
        self._refs = itertools.count(1)
        #: task_id -> task_result notice, filled as notices stream in
        self.results: dict[str, dict] = {}
        self.workflow_done = False
        #: tasks this client has had accepted; with the service's
        #: cumulative delivery count (welcome "done" + workflow_done
        #: "done") this tells a real completion notice from one that
        #: merely caught the outstanding set momentarily empty between
        #: two incremental submits
        self._accepted = 0
        self._done_base = 0
        self._replies: collections.deque = collections.deque()
        self._files: collections.deque = collections.deque()
        hello = {"type": M.CLIENT_HELLO, "tenant": tenant}
        if password is not None:
            hello["password"] = password
        if session is not None:
            hello["session"] = session
        self.conn.send_message(hello)
        welcome = self._await(M.WELCOME)
        self.session = welcome["session"]
        self.project = welcome.get("project")
        self._done_base = int(welcome.get("done", 0))
        #: completion notices the service could not deliver while we were
        #: away (detached, or the manager restarted); results stay
        #: fetchable by cache name even though the notices are gone
        self.missed = int(welcome.get("missed", 0))
        #: True when this session was restored from a manager's journal
        #: after a crash/restart rather than held live in memory
        self.recovered = bool(welcome.get("recovered", False))

    # -- receive plumbing ---------------------------------------------

    def _pump(self, wait: Optional[float] = None) -> bool:
        """Receive one message, filing notices; replies join a queue.

        With ``wait`` set, blocks on the socket for at most that long
        and returns False if nothing arrived — deadline loops sleep in
        the kernel instead of spinning recv against the socket timeout.
        """
        if wait is not None:
            ready, _, _ = select.select([self.conn.fileno()], [], [], max(0.0, wait))
            if not ready:
                return False
        msg = self.conn.recv_message()
        mtype = msg.get("type")
        if mtype == M.TASK_RESULT:
            self.results[msg["task_id"]] = msg
        elif mtype == M.WORKFLOW_DONE:
            done = msg.get("done")
            if done is None or int(done) >= self._done_base + self._accepted:
                self.workflow_done = True
        elif mtype == M.FILE_DATA:
            payload = (
                self.conn.recv_bytes(int(msg["size"])) if msg.get("found") else None
            )
            self._files.append((msg, payload))
        elif mtype == M.CLIENT_REJECT:
            raise ClientError(msg.get("reason", "rejected"))
        else:
            self._replies.append(msg)
        return True

    def _await(self, mtype: str, ref=None) -> dict:
        """Block until the reply of ``mtype`` (and ``ref``, if given)."""
        while True:
            for i, msg in enumerate(self._replies):
                if msg.get("type") == mtype and (ref is None or msg.get("ref") == ref):
                    del self._replies[i]
                    return msg
            self._pump()

    # -- declarations ---------------------------------------------------

    def declare_buffer(self, data: "bytes | str", level: str = "workflow") -> dict:
        """Declare literal bytes; returns the ``file_declared`` reply
        (``cache_name``, ``cache_hit``)."""
        if isinstance(data, str):
            data = data.encode()
        ref = next(self._refs)
        spec = {"kind": "buffer", "size": len(data), "level": level}
        self.conn.send_message({"type": M.DECLARE_FILE, "ref": ref, "spec": spec})
        if data:
            self.conn.send_bytes(data)
        return self._await(M.FILE_DECLARED, ref)

    def declare_url(self, url: str, level: str = "workflow") -> dict:
        ref = next(self._refs)
        spec = {"kind": "url", "url": url, "level": level}
        self.conn.send_message({"type": M.DECLARE_FILE, "ref": ref, "spec": spec})
        return self._await(M.FILE_DECLARED, ref)

    def declare_local(self, path: str, level: str = "workflow") -> dict:
        """Declare a file on the *manager host* by path.

        Refused unless the service was started with a
        ``client_local_root``; the path must resolve inside it
        (relative paths are joined against the root).
        """
        ref = next(self._refs)
        spec = {"kind": "local", "path": path, "level": level}
        self.conn.send_message({"type": M.DECLARE_FILE, "ref": ref, "spec": spec})
        return self._await(M.FILE_DECLARED, ref)

    # -- submission ------------------------------------------------------

    def submit(
        self,
        command: str,
        inputs: Sequence = (),
        outputs: Sequence = (),
        **extra,
    ) -> dict:
        """Submit one command task; returns the ``task_accepted`` reply
        (``task_id`` plus the sandbox-name → cache-name output map).

        ``inputs`` are ``(sandbox_name, cache_name)`` pairs naming
        previously declared content; ``outputs`` are sandbox names the
        command produces.
        """
        ref = next(self._refs)
        spec = {
            "command": command,
            "inputs": [list(pair) for pair in inputs],
            "outputs": list(outputs),
        }
        spec.update(extra)
        self.conn.send_message({"type": M.SUBMIT_TASK, "ref": ref, "spec": spec})
        reply = self._await(M.TASK_ACCEPTED, ref)
        self._accepted += 1
        self.workflow_done = False  # the workflow has outstanding work again
        return reply

    def submit_dag(self, specs: Sequence[dict]) -> list[dict]:
        """Submit several task specs in one request; returns one
        ``task_accepted`` reply per task, in submission order.

        A spec's outputs may carry a key (``["out.txt", "k"]``) that a
        later spec's inputs reference as ``["in.txt", {"key": "k"}]``.
        """
        ref = next(self._refs)
        self.conn.send_message(
            {"type": M.SUBMIT_DAG, "ref": ref, "tasks": list(specs)}
        )
        replies = [
            self._await(M.TASK_ACCEPTED, f"{ref}[{i}]") for i in range(len(specs))
        ]
        self._accepted += len(replies)
        self.workflow_done = False
        return replies

    # -- serverless calls -------------------------------------------------

    def create_library(
        self, name: str, functions, function_slots: int = 1
    ) -> dict:
        """Install a serverless library at the service.

        ``functions`` is a dict of name → callable (or a sequence of
        callables, keyed by ``__name__``); the serialized table ships
        with the request and is idempotent — re-creating a library with
        the same function set is a no-op, a different set is refused.
        """
        if not isinstance(functions, dict):
            functions = {fn.__name__: fn for fn in functions}
        payload = ser.dumps_portable(dict(functions))
        ref = next(self._refs)
        self.conn.send_message(
            {
                "type": M.CREATE_LIBRARY,
                "ref": ref,
                "library": name,
                "functions": sorted(functions),
                "payload_size": len(payload),
                "slots": int(function_slots),
            }
        )
        if payload:
            self.conn.send_bytes(payload)
        return self._await(M.LIBRARY_CREATED, ref)

    def call(
        self,
        library: str,
        function: str,
        *args,
        deterministic: bool = False,
        **kwargs,
    ) -> dict:
        """Submit one by-reference function call; returns ``task_accepted``.

        Arguments are pickled into a content-addressed buffer the
        workers stage like any other input — :class:`ResultProxy`
        arguments travel as refs, so upstream result bytes move
        worker-to-worker and never through the manager or this client.
        The eventual ``task_result`` notice carries a ``result_ref``;
        turn it into a lazy value with :meth:`result_proxy`.
        """
        blob = ser.dumps({"args": args, "kwargs": kwargs})
        declared = self.declare_buffer(blob, level="workflow")
        args_cache = declared["cache_name"]
        inputs = [[args_cache, args_cache]]
        for r in scan_refs((args, kwargs)):
            if r.cache_name != args_cache:
                inputs.append([r.cache_name, r.cache_name])
        ref = next(self._refs)
        spec = {
            "kind": "call",
            "library": library,
            "function": function,
            "args_cache": args_cache,
            "inputs": inputs,
            "outputs": [],
        }
        if deterministic:
            spec["deterministic"] = True
        self.conn.send_message({"type": M.SUBMIT_TASK, "ref": ref, "spec": spec})
        reply = self._await(M.TASK_ACCEPTED, ref)
        self._accepted += 1
        self.workflow_done = False
        return reply

    def result_proxy(self, notice: dict) -> ResultProxy:
        """Lazy handle to a call's by-reference result.

        ``notice`` is the ``task_result`` for a call submitted with
        :meth:`call`.  No bytes move until the proxy is dereferenced
        (``.resolve()``) — and none at all if it is only ever passed to
        a follow-up :meth:`call`, where it pickles back to a ref.
        """
        ref = notice.get("result_ref")
        if ref is None:
            raise ClientError(
                f"task {notice.get('task_id')} carries no result reference"
            )
        fetcher: Callable[[str], bytes] = self.fetch
        return ResultProxy(ResultRef.from_dict(ref), fetcher=fetcher)

    # -- completion and retrieval ----------------------------------------

    def wait(self, task_id: Optional[str] = None, timeout: float = 300.0) -> dict:
        """Block for a ``task_result`` notice (a specific task, or any)."""
        deadline = time.monotonic() + timeout

        def take() -> Optional[dict]:
            if task_id is not None:
                return self.results.pop(task_id, None)
            if self.results:
                return self.results.pop(next(iter(self.results)))
            return None

        while True:
            got = take()
            if got is not None:
                return got
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClientError(f"timed out waiting for {task_id or 'a result'}")
            self._pump(wait=min(0.25, remaining))

    def run_until_done(self, timeout: float = 300.0) -> list[dict]:
        """Block until the service announces ``workflow_done``; returns
        every buffered ``task_result`` notice."""
        deadline = time.monotonic() + timeout
        while not self.workflow_done:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClientError(f"workflow did not finish within {timeout}s")
            self._pump(wait=min(0.25, remaining))
        self.workflow_done = False  # reset for a follow-up batch
        out, self.results = list(self.results.values()), {}
        return out

    def fetch(self, cache_name: str, timeout: float = 60.0) -> bytes:
        """Fetch declared or produced content back by cache name."""
        self.conn.send_message({"type": M.FETCH_RESULT, "cache_name": cache_name})
        deadline = time.monotonic() + timeout
        while True:
            for i, (msg, payload) in enumerate(self._files):
                if msg["cache_name"] == cache_name:
                    del self._files[i]
                    if not msg.get("found"):
                        raise ClientError(f"service could not serve {cache_name}")
                    return payload or b""
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClientError(f"timed out fetching {cache_name}")
            self._pump(wait=min(0.25, remaining))

    # -- lifecycle --------------------------------------------------------

    def detach(self) -> str:
        """Detach, leaving the workflow running; returns the session
        token a later :class:`ServiceClient` passes to reattach."""
        self.conn.send_message({"type": M.DETACH})
        self._await(M.DETACHED)
        self.conn.close()
        return self.session

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _cmd_demo(client: ServiceClient, args: argparse.Namespace) -> int:
    """Declare a shared input, fan out tasks over it, wait, report."""
    declared = client.declare_buffer(args.content, level="workflow")
    accepted = [
        client.submit(
            f"cat shared.txt > out.txt && echo task-{i} >> out.txt",
            inputs=[("shared.txt", declared["cache_name"])],
            outputs=["out.txt"],
            # the commands are pure functions of their inputs, so a
            # memoizing service may serve recorded results for them
            deterministic=True,
        )
        for i in range(args.tasks)
    ]
    results = client.run_until_done(timeout=args.timeout)
    ok = sum(1 for r in results if r.get("exit_code") == 0)
    # fetch each output back and digest it: two runs of the demo can be
    # compared byte-for-byte (the memo smoke test's soundness check)
    output_md5s = []
    for reply in accepted:
        name = reply["outputs"]["out.txt"]
        output_md5s.append(hashlib.md5(client.fetch(name)).hexdigest())
    report = {
        "tenant": client.tenant,
        "cache_name": declared["cache_name"],
        "cache_hit": declared["cache_hit"],
        "submitted": len(accepted),
        "completed": len(results),
        "succeeded": ok,
        "output_md5s": output_md5s,
    }
    print(json.dumps(report))
    return 0 if ok == len(accepted) else 1


def _demo_part(i: int, size: int) -> bytes:
    """Deterministic chunk of result-plane ballast."""
    return bytes([i % 256]) * size


def _demo_total(parts) -> int:
    """Reduce over upstream results (materialized from proxies)."""
    return sum(len(p) for p in parts)


def _cmd_proxy_demo(client: ServiceClient, args: argparse.Namespace) -> int:
    """Map → reduce through result proxies; payloads stay at workers.

    Each map call produces ``--size`` bytes that never leave worker
    caches: the reduce consumes them by reference (worker-to-worker
    staging) and only the final integer is fetched back.  The CI smoke
    job asserts from the transaction log that zero result-payload bytes
    transited the manager (no ``@retrieve`` transfers).
    """
    client.create_library(
        "proxydemo", {"part": _demo_part, "total": _demo_total}, function_slots=2
    )
    accepted = [
        client.call("proxydemo", "part", i, args.size) for i in range(args.tasks)
    ]
    proxies = []
    for reply in accepted:
        notice = client.wait(reply["task_id"], timeout=args.timeout)
        if notice.get("exit_code") != 0:
            print(f"error: map call failed: {notice}", file=sys.stderr)
            return 1
        proxies.append(client.result_proxy(notice))
    reduce_reply = client.call("proxydemo", "total", proxies)
    notice = client.wait(reduce_reply["task_id"], timeout=args.timeout)
    if notice.get("exit_code") != 0:
        print(f"error: reduce call failed: {notice}", file=sys.stderr)
        return 1
    total = client.result_proxy(notice).resolve()
    expect = args.tasks * args.size
    report = {
        "tenant": client.tenant,
        "maps": len(accepted),
        "bytes_per_map": args.size,
        "total": total,
        "ok": total == expect,
    }
    print(json.dumps(report))
    return 0 if total == expect else 1


def _cmd_submit(client: ServiceClient, args: argparse.Namespace) -> int:
    """Submit one command and wait for its result."""
    inputs = []
    for item in args.input or []:
        sandbox, _, cache_name = item.partition("=")
        inputs.append((sandbox, cache_name))
    accepted = client.submit(args.command, inputs=inputs, outputs=args.output or [])
    result = client.wait(accepted["task_id"], timeout=args.timeout)
    print(json.dumps(result))
    return 0 if result.get("exit_code") == 0 else 1


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Client for a service-mode TaskVine reproduction manager"
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT")
    parser.add_argument("--tenant", required=True)
    parser.add_argument("--password", default=None)
    parser.add_argument("--timeout", type=float, default=120.0)
    sub = parser.add_subparsers(dest="cmd", required=True)

    demo = sub.add_parser("demo", help="declare a shared input and fan out tasks")
    demo.add_argument("--tasks", type=int, default=4)
    demo.add_argument("--content", default="shared demo input\n")

    pdemo = sub.add_parser(
        "proxy-demo", help="map → reduce with by-reference results"
    )
    pdemo.add_argument("--tasks", type=int, default=4)
    pdemo.add_argument("--size", type=int, default=64 << 10)

    submit = sub.add_parser("submit", help="submit one command task")
    submit.add_argument("command")
    submit.add_argument(
        "--input", action="append", metavar="SANDBOX=CACHE_NAME", default=None
    )
    submit.add_argument("--output", action="append", metavar="SANDBOX", default=None)

    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    try:
        with ServiceClient(
            host or "127.0.0.1",
            int(port),
            args.tenant,
            password=args.password,
            timeout=args.timeout,
        ) as client:
            if args.cmd == "demo":
                return _cmd_demo(client, args)
            if args.cmd == "proxy-demo":
                return _cmd_proxy_demo(client, args)
            return _cmd_submit(client, args)
    except (ClientError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
