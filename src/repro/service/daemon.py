"""``repro-service run|status|stop``: the service-mode daemon lifecycle.

A TigerFlow-style always-on manager: ``run`` starts one multi-tenant
:class:`~repro.core.manager.Manager` (optionally daemonized with
``--detach``), spawns a local worker fleet, and serves client sessions
until a SIGTERM; ``status`` reports liveness, the replayed transaction
log, and the per-tenant accounting table; ``stop`` signals the daemon
and waits for a clean exit.

All run state lives under one ``--state-dir``:

* ``service.json`` — pid, endpoint, project name (written on start,
  removed on clean shutdown; its presence + a live pid = running)
* ``service.jsonl`` — the streaming transaction log
* ``metrics.json`` — periodic metrics snapshots (tenant table source)
* ``service.log`` — daemon stdout/stderr when detached
* ``worker-N/`` — workdirs of the locally spawned workers
* ``journal/`` — the manager's durable control-plane journal
  (``snapshot.json`` + ``journal.log``); a restarted daemon replays it,
  reuses the recorded port, and resumes in-flight workflows (see
  ``docs/recovery.md``)

``run --supervise`` wraps the whole thing in a tiny supervisor that
restarts the service child whenever it dies abnormally, turning a
manager crash into a recovery instead of an outage.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
from typing import Optional

__all__ = ["main"]

STATE_FILE = "service.json"
TXN_LOG = "service.jsonl"
METRICS_FILE = "metrics.json"
JOURNAL_DIR = "journal"


def _read_state(state_dir: str) -> Optional[dict]:
    try:
        with open(os.path.join(state_dir, STATE_FILE)) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------


def _daemonize(log_path: str) -> None:
    """Classic double-fork detach; the intermediate parents exit 0."""
    if os.fork() > 0:
        os._exit(0)
    os.setsid()
    if os.fork() > 0:
        os._exit(0)
    sys.stdout.flush()
    sys.stderr.flush()
    log_fd = os.open(log_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    null_fd = os.open(os.devnull, os.O_RDONLY)
    os.dup2(null_fd, 0)
    os.dup2(log_fd, 1)
    os.dup2(log_fd, 2)
    os.close(null_fd)
    os.close(log_fd)


def _spawn_worker(
    state_dir: str,
    index: int,
    host: str,
    port: int,
    cores: float,
    reconnect: float = 0.0,
) -> subprocess.Popen:
    workdir = os.path.join(state_dir, f"worker-{index}")
    os.makedirs(workdir, exist_ok=True)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.worker.cli",
            "--manager",
            f"{host}:{port}",
            "--workdir",
            workdir,
            "--cores",
            str(cores),
            "--reconnect",
            str(reconnect),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class _FleetAutoscaler(threading.Thread):
    """Background fleet supervisor for ``run --autoscale``.

    Periodically sizes the local worker pool to the manager's ready
    queue using the shared :class:`~repro.sim.workloads.Autoscaler`
    policy (the same one the sim driver uses, see docs/elasticity.md).
    Scale-up spawns fresh worker subprocesses; scale-down picks the
    emptiest connected workers (fewest running tasks, fewest cached
    bytes) and drains them gracefully through the control plane, so
    sole-holder cache objects migrate to survivors before the worker
    processes are ordered to exit.
    """

    def __init__(
        self,
        mgr,
        state_dir: str,
        args: argparse.Namespace,
        procs: list,
        next_index: int,
    ) -> None:
        super().__init__(daemon=True, name="fleet-autoscaler")
        from repro.sim.workloads import Autoscaler

        self.mgr = mgr
        self.state_dir = state_dir
        self.args = args
        #: live worker subprocesses (shared with the run loop's shutdown
        #: path; exited processes are pruned each tick)
        self.procs = procs
        self._next_index = next_index
        self.policy = Autoscaler(
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            tasks_per_worker=args.tasks_per_worker,
            cooldown=2.0 * args.scale_interval,
        )
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self.args.scale_interval):
            try:
                self._tick()
            except Exception:  # autoscaling must never kill the service
                import traceback

                traceback.print_exc(file=sys.stderr)

    def _tick(self) -> None:
        self.procs[:] = [p for p in self.procs if p.poll() is None]
        mgr = self.mgr
        with mgr._lock:
            control = mgr.control
            fleet = sorted(
                wid for wid in control.workers if wid not in control.draining
            )
            delta = self.policy.decide(
                time.monotonic(), control.ready_depth, len(fleet)
            )
            if delta < 0:
                victims = sorted(
                    fleet,
                    key=lambda wid: (
                        len(control.workers[wid].running),
                        control.replicas.bytes_at(wid),
                        wid,
                    ),
                )[: -delta]
                control.record_autoscale("down", len(victims))
                for wid in victims:
                    control.drain_worker(wid)
            elif delta > 0:
                control.record_autoscale("up", delta)
        if delta > 0:
            # subprocess launches are slow: do them outside the lock
            for _ in range(delta):
                self.procs.append(
                    _spawn_worker(
                        self.state_dir,
                        self._next_index,
                        mgr.host,
                        mgr.port,
                        self.args.cores,
                        reconnect=self.args.worker_reconnect,
                    )
                )
                self._next_index += 1


def _supervise(args: argparse.Namespace, argv: list[str]) -> int:
    """Restart the service child whenever it dies abnormally.

    The child is this same CLI minus ``--supervise``/``--detach``; it
    owns ``service.json`` (so ``status``/``stop`` address the child).
    A clean exit (SIGTERM honored, ``stop``) ends supervision; a crash
    — nonzero exit or a death by signal — triggers a restart, and the
    restarted child recovers from the journal.
    """
    state_dir = os.path.abspath(args.state_dir)
    os.makedirs(state_dir, exist_ok=True)
    if args.detach:
        _daemonize(os.path.join(state_dir, "service.log"))
    child_argv = [a for a in argv if a not in ("--supervise", "--detach")]
    stop = threading.Event()
    child: list[Optional[subprocess.Popen]] = [None]

    def _forward(signum, _frame):
        stop.set()
        proc = child[0]
        if proc is not None and proc.poll() is None:
            proc.send_signal(signal.SIGTERM)

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _forward)
    while True:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.daemon"] + child_argv
        )
        child[0] = proc
        code = proc.wait()
        if stop.is_set() or code == 0:
            return 0 if code == 0 else code
        print(
            f"repro-service: child exited with {code}; restarting in 1s",
            file=sys.stderr,
        )
        time.sleep(1.0)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.manager import Manager

    state_dir = os.path.abspath(args.state_dir)
    os.makedirs(state_dir, exist_ok=True)
    state = _read_state(state_dir)
    if state is not None:
        pid = int(state.get("pid", -1))
        if _pid_alive(pid):
            print(
                f"repro-service: already running (pid {state['pid']}, "
                f"port {state.get('port')})",
                file=sys.stderr,
            )
            return 1
        # a stale state file is a crashed prior life: reclaim the state
        # dir and let the journal restore whatever it left behind
        print(f"repro-service: reclaiming state dir (stale pidfile, pid {pid} dead)")
        try:
            os.unlink(os.path.join(state_dir, STATE_FILE))
        except OSError:
            pass

    if args.detach:
        # the child writes service.json once it is listening; the
        # launching shell returns immediately
        _daemonize(os.path.join(state_dir, "service.log"))

    journal_dir = None
    port = args.port
    if not args.no_journal:
        journal_dir = (
            os.path.abspath(args.journal_dir)
            if args.journal_dir
            else os.path.join(state_dir, JOURNAL_DIR)
        )
        if port == 0:
            # reuse the crashed life's port so reconnecting workers and
            # reattaching clients find the restarted manager
            from repro.core.journal import ControlPlaneJournal

            peek = ControlPlaneJournal(journal_dir)
            prior_port = peek.meta.get("port")
            peek.close()
            if prior_port:
                port = int(prior_port)

    def _make_manager(bind_port: int) -> Manager:
        return Manager(
            port=bind_port,
            host=args.host,
            project_name=args.project,
            password=args.password,
            fair_share=not args.no_fair_share,
            default_task_quota=args.task_quota,
            default_byte_quota=args.byte_quota,
            client_local_root=args.client_local_root,
            client_session_ttl=args.session_ttl,
            txn_log_path=os.path.join(state_dir, TXN_LOG),
            metrics_dump_path=os.path.join(state_dir, METRICS_FILE),
            metrics_dump_interval=1.0,
            memo_dir=os.path.abspath(args.memo_dir) if args.memo_dir else None,
            memo_opt_out=args.memo_opt_out or None,
            memo_payload_limit=args.memo_payload_limit,
            journal_dir=journal_dir,
            recovery_grace=args.recovery_grace,
        )

    try:
        mgr = _make_manager(port)
    except OSError:
        if port == args.port:
            raise
        # the crashed life's port was taken meanwhile: an ephemeral
        # port still recovers state; only reconnects need re-pointing
        print(
            f"repro-service: prior port {port} unavailable; binding anew",
            file=sys.stderr,
        )
        mgr = _make_manager(args.port)
    if mgr.recovered:
        print(
            f"repro-service: recovered prior state from {journal_dir} "
            f"(grace {args.recovery_grace:.0f}s for workers to rejoin)"
        )
    workers = [
        _spawn_worker(
            state_dir, i, mgr.host, mgr.port, args.cores,
            reconnect=args.worker_reconnect,
        )
        for i in range(args.workers)
    ]
    fleet: Optional[_FleetAutoscaler] = None
    if args.autoscale:
        fleet = _FleetAutoscaler(
            mgr, state_dir, args, workers, next_index=args.workers
        )
        fleet.start()
    state_path = os.path.join(state_dir, STATE_FILE)
    with open(state_path, "w") as f:
        json.dump(
            {
                "pid": os.getpid(),
                "host": mgr.host,
                "port": mgr.port,
                "project": args.project,
                "workers": args.workers,
                "memo_dir": os.path.abspath(args.memo_dir) if args.memo_dir else None,
                "started": time.time(),
            },
            f,
        )
    print(f"repro-service: serving project {args.project!r} on {mgr.host}:{mgr.port}")

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        if fleet is not None:
            fleet.stop()
        # close() sends SHUTDOWN to connected workers; give the
        # subprocesses a moment to honor it before escalating
        mgr.close(shutdown_workers=True)
        deadline = time.time() + 10
        for proc in workers:
            try:
                proc.wait(timeout=max(0.1, deadline - time.time()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
        try:
            os.unlink(state_path)
        except OSError:
            pass
    print("repro-service: stopped")
    return 0


# ---------------------------------------------------------------------------
# status / stop
# ---------------------------------------------------------------------------


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.observe.cli import format_log_status, format_tenant_table, replay_status
    from repro.observe.txnlog import read_transactions

    state_dir = os.path.abspath(args.state_dir)
    state = _read_state(state_dir)
    if state is None:
        print("repro-service: not running (no state file)")
        return 1
    alive = _pid_alive(int(state.get("pid", -1)))
    uptime = time.time() - float(state.get("started", time.time()))
    print(
        f"repro-service: {'running' if alive else 'dead (stale pidfile)'} "
        f"pid={state.get('pid')} endpoint={state.get('host')}:{state.get('port')} "
        f"project={state.get('project')!r} uptime={uptime:.0f}s"
    )
    log_path = os.path.join(state_dir, TXN_LOG)
    if os.path.exists(log_path):
        header, events = read_transactions(log_path)
        print(format_log_status(replay_status(events, header.get("runtime", "real"))))
    metrics_path = os.path.join(state_dir, METRICS_FILE)
    if os.path.exists(metrics_path):
        try:
            with open(metrics_path) as f:
                payload = json.load(f)
            table = format_tenant_table(payload.get("metrics", {}))
            if table:
                print(table)
        except (OSError, json.JSONDecodeError):
            pass
    return 0 if alive else 1


def _cmd_stop(args: argparse.Namespace) -> int:
    state_dir = os.path.abspath(args.state_dir)
    state = _read_state(state_dir)
    if state is None:
        print("repro-service: not running (no state file)")
        return 0 if args.quiet_missing else 1
    pid = int(state.get("pid", -1))
    if not _pid_alive(pid):
        try:
            os.unlink(os.path.join(state_dir, STATE_FILE))
        except OSError:
            pass
        # nonzero: there was nothing to stop — the service is dead, and
        # the caller should know its last life ended by crash, not stop
        print(f"repro-service: dead (stale pidfile, pid {pid}); cleaned state file")
        return 1
    os.kill(pid, signal.SIGTERM)
    deadline = time.time() + args.timeout
    while time.time() < deadline:
        if not _pid_alive(pid):
            print(f"repro-service: pid {pid} stopped")
            return 0
        time.sleep(0.1)
    print(f"repro-service: pid {pid} did not exit within {args.timeout}s", file=sys.stderr)
    return 1


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Always-on multi-tenant manager daemon (run | status | stop)",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    run = sub.add_parser("run", help="start the service (foreground unless --detach)")
    run.add_argument("--state-dir", default=".repro-service")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=0)
    run.add_argument("--project", default="repro")
    run.add_argument("--password", default=None, help="project password clients must present")
    run.add_argument("--workers", type=int, default=2, help="local workers to spawn")
    run.add_argument("--cores", type=float, default=4)
    run.add_argument("--task-quota", type=int, default=None, help="default per-tenant outstanding-task quota")
    run.add_argument("--byte-quota", type=int, default=None, help="default per-tenant declared-bytes quota")
    run.add_argument("--no-fair-share", action="store_true", help="FIFO across tenants instead of deficit round-robin")
    run.add_argument(
        "--client-local-root",
        default=None,
        help="directory clients' kind=local declarations must resolve inside "
        "(omitted: local declarations over the wire are refused)",
    )
    run.add_argument(
        "--session-ttl",
        type=float,
        default=3600.0,
        help="seconds before an idle detached client session is reaped",
    )
    run.add_argument(
        "--memo-dir",
        default=None,
        help="persistent memoization store directory; deterministic "
        "resubmissions are served from it across runs and tenants "
        "(omitted: memoization off)",
    )
    run.add_argument(
        "--memo-opt-out",
        action="append",
        default=None,
        metavar="TENANT",
        help="tenant excluded from memoization (repeatable)",
    )
    run.add_argument(
        "--memo-payload-limit",
        type=int,
        default=None,
        help="largest output (bytes) retained as a memo payload "
        "(default 16 MiB); bigger outputs stay replica-backed only",
    )
    run.add_argument(
        "--journal-dir",
        default=None,
        help="durable control-plane journal directory "
        "(default: <state-dir>/journal)",
    )
    run.add_argument(
        "--no-journal",
        action="store_true",
        help="run in-memory only: no crash recovery",
    )
    run.add_argument(
        "--recovery-grace",
        type=float,
        default=10.0,
        help="seconds a recovering manager waits for journaled workers "
        "to rejoin before settling unbacked state as replica loss",
    )
    run.add_argument(
        "--worker-reconnect",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="spawn local workers with this reconnect window so they "
        "outlive a manager crash and rejoin the restarted life "
        "(restart with --workers 0 to adopt them instead of spawning "
        "doubles over the same workdirs; 0 = workers exit on "
        "disconnect and fresh spawns re-announce their on-disk caches)",
    )
    run.add_argument(
        "--autoscale",
        action="store_true",
        help="size the local worker fleet to the ready queue: spawn "
        "workers under pressure, gracefully drain the emptiest ones "
        "when idle (replicas migrate before the process exits)",
    )
    run.add_argument(
        "--min-workers", type=int, default=1,
        help="autoscale floor (workers kept even when idle)",
    )
    run.add_argument(
        "--max-workers", type=int, default=8,
        help="autoscale ceiling",
    )
    run.add_argument(
        "--tasks-per-worker", type=float, default=4.0,
        help="autoscale target: ready tasks each worker should absorb",
    )
    run.add_argument(
        "--scale-interval", type=float, default=2.0,
        help="seconds between autoscale evaluations",
    )
    run.add_argument(
        "--supervise",
        action="store_true",
        help="wrap the service in a supervisor that restarts it (with "
        "journal recovery) whenever it dies abnormally",
    )
    run.add_argument("--detach", action="store_true", help="daemonize (state-dir/service.log gets stdout/stderr)")

    status = sub.add_parser("status", help="report daemon liveness and tenant table")
    status.add_argument("--state-dir", default=".repro-service")

    stop = sub.add_parser("stop", help="SIGTERM the daemon and wait for exit")
    stop.add_argument("--state-dir", default=".repro-service")
    stop.add_argument("--timeout", type=float, default=30.0)
    stop.add_argument(
        "--quiet-missing", action="store_true",
        help="exit 0 when no service is running",
    )

    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    args = parser.parse_args(argv)
    if args.cmd == "run":
        if args.supervise:
            return _supervise(args, raw_argv)
        return _cmd_run(args)
    if args.cmd == "status":
        return _cmd_status(args)
    return _cmd_stop(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
