"""repro — a reproduction of TaskVine (SC-W 2023).

TaskVine is a workflow execution system that manages data within a
cluster: declared, immutable files with content-addressable names;
workers with persistent local caches; a manager that schedules tasks to
data and supervises peer-to-peer transfers; mini tasks for on-demand
data transformation; and a serverless library/function-call model.

Two runtimes share one policy core:

* the **real runtime** (:class:`Manager` + ``repro-worker`` processes)
  executes actual commands on one machine, and
* the **simulator** (:class:`~repro.sim.cluster.SimCluster` +
  :class:`~repro.sim.simmanager.SimManager`) replays the same policies
  over a virtual cluster for the paper's at-scale experiments.

Quickstart (see ``examples/quickstart.py`` for a complete script)::

    import repro

    m = repro.Manager()
    # ... start repro-worker processes pointed at m.host:m.port ...
    data = m.declare_buffer(b"hello")
    task = repro.Task("tr a-z A-Z < input > output")
    task.add_input(data, "input")
    task.add_output(m.declare_temp(), "output")
    m.submit(task)
    done = m.wait(timeout=30)
"""

from repro.core.files import (
    BufferFile,
    CacheLevel,
    File,
    LocalFile,
    MiniTaskFile,
    TempFile,
    URLFile,
)
from repro.core.library import FunctionCall, Library, LibraryTask
from repro.core.manager import Manager, ManagerError
from repro.core.resources import Resources
from repro.core.task import MiniTask, PythonTask, Task, TaskResult, TaskState

__all__ = [
    "BufferFile",
    "CacheLevel",
    "File",
    "FunctionCall",
    "Library",
    "LibraryTask",
    "LocalFile",
    "Manager",
    "ManagerError",
    "MiniTask",
    "MiniTaskFile",
    "PythonTask",
    "Resources",
    "Task",
    "TaskResult",
    "TaskState",
    "TempFile",
    "URLFile",
]

__version__ = "1.0.0"
