"""The persistent transaction log: versioned JSONL over workflow events.

Every evaluation figure in the paper is a view over the manager's
transaction log; this module makes that log a durable artifact instead
of an in-memory list.  A :class:`TransactionLogWriter` attaches to the
shared :class:`~repro.core.events.EventLog` as a sink, so both
runtimes stream the same schema to disk as events are emitted — one
JSON object per line, append-only, prefixed by a header record that
pins the schema version and names the emitting runtime.

The covered lifecycles (see :data:`repro.core.events.KINDS`):

========================  ====================================================
lifecycle                 kinds
========================  ====================================================
worker membership         ``worker_join`` / ``worker_leave``
elastic membership        ``worker_drain`` / ``worker_drained`` /
                          ``autoscale`` (graceful scale-down migrates
                          sole-holder replicas before departure)
task execution            ``task_start`` / ``task_end``
transfers                 ``transfer_start`` / ``transfer_end``
mini-task staging         ``stage_start`` / ``stage_end``
replicas and eviction     ``file_cached`` / ``file_deleted``
                          (``category="evicted"`` marks cache-pressure loss)
libraries                 ``library_ready`` / ``library_failed``
workflow                  ``workflow_done``
========================  ====================================================

Reading back, :func:`read_transactions` yields exactly the events that
were written and :func:`load_event_log` rebuilds an
:class:`~repro.core.events.EventLog`, so every analysis in
:mod:`repro.core.events` (task views, worker views, completion series,
peak transfer concurrency) regenerates from a file on disk.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Iterable, Optional

from repro.core.events import KINDS, Event, EventLog

__all__ = [
    "TXN_SCHEMA_VERSION",
    "HEADER_KIND",
    "TransactionLogError",
    "TransactionLogWriter",
    "event_to_record",
    "record_to_event",
    "read_transactions",
    "load_event_log",
]

#: bump when a record field changes meaning; parsers reject newer logs
TXN_SCHEMA_VERSION = 1

#: pseudo-kind of the first line of every log file
HEADER_KIND = "@header"

#: record keys in emission layout (``t`` first for human scanning)
_FIELDS = ("t", "kind", "worker", "task", "file", "size", "category")


class TransactionLogError(ValueError):
    """A transaction log file could not be parsed."""


def event_to_record(event: Event) -> dict:
    """One event as its wire record (``None``/zero fields omitted)."""
    record: dict = {"t": event.time, "kind": event.kind}
    if event.worker is not None:
        record["worker"] = event.worker
    if event.task is not None:
        record["task"] = event.task
    if event.file is not None:
        record["file"] = event.file
    if event.size:
        record["size"] = event.size
    if event.category is not None:
        record["category"] = event.category
    return record


def record_to_event(record: dict) -> Event:
    """Parse one wire record back into an :class:`Event`."""
    try:
        kind = record["kind"]
        time = float(record["t"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TransactionLogError(f"malformed record {record!r}") from exc
    if kind not in KINDS:
        raise TransactionLogError(f"unknown event kind {kind!r}")
    return Event(
        time=time,
        kind=kind,
        worker=record.get("worker"),
        task=record.get("task"),
        file=record.get("file"),
        size=int(record.get("size", 0)),
        category=record.get("category"),
    )


class TransactionLogWriter:
    """Append-only JSONL writer, usable as an ``EventLog`` sink.

    The writer is called inline from ``EventLog.emit`` — under the real
    manager's state lock, or on the simulator's single thread — so each
    write is one buffered line plus an optional flush.  ``flush_every``
    bounds how many events a crash can lose (1 = flush per event, the
    default, since manager event rates are modest by design).
    """

    def __init__(
        self,
        path: str,
        runtime: str = "unknown",
        flush_every: int = 1,
        extra_header: Optional[dict] = None,
        resume: bool = False,
    ) -> None:
        self.path = path
        self.runtime = runtime
        self.flush_every = max(1, flush_every)
        self._lock = threading.Lock()
        self._since_flush = 0
        needs_newline = False
        if resume:
            # ``resume`` appends a fresh ``@header`` *segment* instead of
            # truncating: a restarted manager keeps the crashed life's
            # events in place.  If the crash tore the previous final
            # line, start on a fresh line so the reader sees exactly one
            # torn line followed by a segment header (the forgiven shape).
            try:
                with open(path, "rb") as prev:
                    prev.seek(0, 2)
                    if prev.tell() > 0:
                        prev.seek(-1, 2)
                        needs_newline = prev.read(1) != b"\n"
            except FileNotFoundError:
                pass
        self._file: Optional[IO[str]] = open(path, "a" if resume else "w")
        if needs_newline:
            self._file.write("\n")
        header = {
            "kind": HEADER_KIND,
            "v": TXN_SCHEMA_VERSION,
            "runtime": runtime,
            "fields": list(_FIELDS),
        }
        if resume:
            header["resumed"] = True
        if extra_header:
            header.update(extra_header)
        self._file.write(json.dumps(header) + "\n")
        self._file.flush()

    def __call__(self, event: Event) -> None:
        """Sink protocol: append one event (no-op after :meth:`close`)."""
        line = json.dumps(event_to_record(event))
        with self._lock:
            if self._file is None:
                return
            self._file.write(line + "\n")
            self._since_flush += 1
            if self._since_flush >= self.flush_every:
                self._file.flush()
                self._since_flush = 0

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    def __enter__(self) -> "TransactionLogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _parse_lines(lines: Iterable[str], strict: bool) -> tuple[dict, list[Event]]:
    header: Optional[dict] = None
    events: list[Event] = []
    segments = 0
    torn = 0
    pending_error: Optional[TransactionLogError] = None
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            if pending_error is not None:
                raise pending_error  # two torn lines in a row is corruption
            # a torn line is expected when tailing a live log (final
            # line) or after a crash (the next line is a new segment
            # header); anything else following it is corruption
            pending_error = TransactionLogError(
                f"line {lineno}: invalid JSON: {exc}"
            )
            continue
        if isinstance(record, dict) and record.get("kind") == HEADER_KIND:
            version = record.get("v")
            if version != TXN_SCHEMA_VERSION:
                raise TransactionLogError(
                    f"unsupported schema version {version!r} "
                    f"(this reader supports {TXN_SCHEMA_VERSION})"
                )
            if pending_error is not None:
                # a torn line right before a segment header is the
                # signature of a crash: the old manager life died
                # mid-write and the restarted one appended a segment
                if strict:
                    raise pending_error
                torn += 1
                pending_error = None
            if header is None:
                header = record
            elif record.get("resumed"):
                # keep the first segment's identity, but surface that a
                # later life resumed the file
                header = dict(header)
                header["resumed"] = True
            segments += 1
            continue
        if header is None:
            raise TransactionLogError("missing @header record on line 1")
        if pending_error is not None:
            raise pending_error  # a bad line *followed by data* is corruption
        events.append(record_to_event(record))
    if header is None:
        raise TransactionLogError("empty transaction log (no header)")
    if pending_error is not None:
        if strict:
            raise pending_error
        torn += 1
    header = dict(header)
    header["segments"] = segments
    header["torn_lines"] = torn
    return header, events


def read_transactions(path: str, strict: bool = False) -> tuple[dict, list[Event]]:
    """Parse a transaction log into its header and ordered events.

    With ``strict=False`` (default) a torn *final* line — the normal
    state of a log being written concurrently — is ignored, as is a
    torn line directly before a mid-file ``@header`` (a manager crash
    followed by a resumed segment); corruption anywhere else always
    raises :class:`TransactionLogError`.  The returned header carries
    two synthesized keys: ``segments`` (how many manager lives wrote to
    the file) and ``torn_lines`` (how many tears were forgiven).
    """
    with open(path) as f:
        return _parse_lines(f, strict=strict)


def load_event_log(path: str) -> EventLog:
    """Rebuild an :class:`EventLog` from a transaction log on disk.

    The returned log feeds every analysis in :mod:`repro.core.events`
    exactly as the live in-memory log would.
    """
    _header, events = read_transactions(path)
    return EventLog.from_events(events)
