"""Runtime metrics: counters, gauges and bounded-reservoir histograms.

The registry is sampled in the hot paths of the control plane and the
worker (placement pump latency, scheduler index pressure —
``sched.pump_us`` / ``sched.candidates_scored`` — transfer queue
depth, per-source concurrency, cache hits/misses, eviction bytes,
sandbox setup time, library invoke latency).  Everything here is therefore cheap and
thread-safe: one lock per instrument, O(1) per observation, and a
histogram never holds more than ``reservoir_size`` samples no matter
how many it has seen.

Snapshots are plain dictionaries (JSON-ready); a
:class:`SnapshotDumper` can write them periodically so an external
``repro-status`` invocation — or a human with ``cat`` — sees a live
view of a running process.
"""

from __future__ import annotations

import json
import math
import os
import random
import threading
import time
import zlib
from typing import Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SnapshotDumper",
]


class Counter:
    """A monotonically increasing count (events, bytes, retries)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A value that goes up and down (queue depth, open transfers)."""

    __slots__ = ("name", "_value", "_max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._max:
                self._max = self._value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        """Highest value the gauge ever reached (peak concurrency)."""
        return self._max

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value, "max": self._max}


class Histogram:
    """Distribution sketch with exact moments and a bounded reservoir.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    quantiles come from uniform reservoir sampling (Vitter's algorithm
    R) over at most ``reservoir_size`` kept samples, so memory stays
    bounded on hot paths that observe millions of values.  The sampling
    RNG is seeded from the metric name: runs are reproducible without
    touching any global random state.
    """

    __slots__ = (
        "name", "reservoir_size", "_count", "_sum", "_min", "_max",
        "_reservoir", "_rng", "_lock",
    )

    def __init__(self, name: str, reservoir_size: int = 1024) -> None:
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.name = name
        self.reservoir_size = reservoir_size
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir: list[float] = []
        # crc32 (not hash()) so the sampling stream is stable across
        # processes regardless of PYTHONHASHSEED
        self._rng = random.Random(zlib.crc32(name.encode()))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._reservoir) < self.reservoir_size:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.reservoir_size:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (0..100) from the reservoir."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        with self._lock:
            if not self._reservoir:
                return 0.0
            ordered = sorted(self._reservoir)
        idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def snapshot(self) -> dict:
        with self._lock:
            if not self._count:
                return {"type": "histogram", "count": 0}
            ordered = sorted(self._reservoir)

        def pct(q: float) -> float:
            return ordered[min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))]

        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / self._count,
            "p50": pct(50),
            "p90": pct(90),
            "p99": pct(99),
        }


class MetricsRegistry:
    """Get-or-create home for a process's instruments.

    Names are dotted paths (``cache.hits``); an instrument registered
    as one kind cannot be re-registered as another.  The registry is
    shared between threads; creation is guarded, and each instrument
    serializes its own updates.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind, **kwargs):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = kind(name, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, kind):
                raise TypeError(
                    f"metric {name!r} already registered as {type(inst).__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, reservoir_size: int = 1024) -> Histogram:
        return self._get(name, Histogram, reservoir_size=reservoir_size)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict:
        """All instruments as one JSON-ready dict, keyed by name."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.snapshot() for name, inst in sorted(instruments.items())}

    def dump(self, path: str) -> None:
        """Atomically write a snapshot (with a timestamp) to ``path``."""
        payload = {"dumped_at": time.time(), "metrics": self.snapshot()}
        tmp = f"{path}.tmp"
        with open(tmp, "w") as f:
            json.dump(payload, f, indent=1)
        os.replace(tmp, path)


class SnapshotDumper:
    """Background thread that dumps a registry to disk periodically.

    The dump interval trades freshness for I/O; the final state is
    always written by :meth:`stop`, so short-lived processes still
    leave a complete snapshot behind.
    """

    def __init__(
        self, registry: MetricsRegistry, path: str, interval: float = 5.0
    ) -> None:
        self.registry = registry
        self.path = path
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "SnapshotDumper":
        if self._thread is None:
            self._thread = threading.Thread(target=self._loop, daemon=True)
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.registry.dump(self.path)
            except OSError:
                return  # the directory vanished; stop quietly

    def stop(self) -> None:
        """Stop the thread and write one final snapshot (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        try:
            self.registry.dump(self.path)
        except OSError:
            pass
