"""Machine-readable benchmark reports: the ``BENCH_*.json`` trajectory.

Each benchmark writes one ``BENCH_<name>.json`` capturing its headline
numbers — makespan, task/transfer counts, cache hit rate, peak
transfer concurrency, wall time — so performance accumulates as a
comparable series across commits instead of living in printed tables.
The schema is versioned and :func:`validate_report` is what CI runs
against the artifacts it uploads.

Usage (the benchmark suite's ``bench_report`` fixture does this)::

    reporter = BenchReporter("fig10_minitasks")
    reporter.from_stats(stats)           # a SimRunStats
    reporter.record("speedup", 2.1)      # any extra scalar series
    path = reporter.write()              # BENCH_fig10_minitasks.json

Validation from the command line::

    python -m repro.observe.bench_report BENCH_fig10_minitasks.json
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from typing import Optional

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchReporter",
    "default_bench_dir",
    "validate_report",
    "main",
]

#: bump when the report layout changes incompatibly
BENCH_SCHEMA_VERSION = 1

#: environment override for where reports land
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def default_bench_dir() -> str:
    """Where reports go: ``$REPRO_BENCH_DIR`` or the repository root."""
    env = os.environ.get(BENCH_DIR_ENV)
    if env:
        return env
    # src/repro/observe/bench_report.py -> repository root
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


class BenchReporter:
    """Accumulates one benchmark's metrics and writes its report."""

    def __init__(self, name: str, out_dir: Optional[str] = None) -> None:
        if not name or any(c in name for c in "/\\ "):
            raise ValueError(f"invalid benchmark name {name!r}")
        self.name = name
        self.out_dir = out_dir if out_dir is not None else default_bench_dir()
        self.metrics: dict[str, float | int] = {}
        self._started = time.perf_counter()

    # -- recording -----------------------------------------------------

    def record(self, key: str, value: "float | int") -> None:
        """Record one scalar metric (non-finite values are rejected)."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"metric {key!r} must be numeric, got {value!r}")
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"metric {key!r} must be finite, got {value!r}")
        self.metrics[key] = value

    def record_many(self, values: dict) -> None:
        for key, value in values.items():
            self.record(key, value)

    def from_stats(self, stats, prefix: str = "") -> None:
        """Record the standard series from a ``SimRunStats``-like object."""
        p = f"{prefix}_" if prefix else ""
        self.record(f"{p}makespan_s", float(stats.makespan))
        self.record(f"{p}tasks_done", int(stats.tasks_done))
        for kind, count in sorted(stats.transfer_counts.items()):
            self.record(f"{p}transfers_{kind}", int(count))
        for kind, nbytes in sorted(stats.bytes_by_source.items()):
            self.record(f"{p}bytes_{kind}", float(nbytes))
        evictions = getattr(stats, "evictions", None)
        if evictions is not None:
            self.record(f"{p}evictions", int(evictions))
        log = getattr(stats, "log", None)
        if log is not None:
            from repro.core.events import peak_transfer_concurrency

            peaks = peak_transfer_concurrency(log)
            governed = [v for k, v in peaks.items() if k != "@retrieve"]
            if governed:
                self.record(f"{p}peak_transfer_concurrency", max(governed))

    def from_metrics(self, registry, keys: Optional[list[str]] = None) -> None:
        """Record control-plane metrics: cache hit rate and key latencies."""
        snap = registry.snapshot()
        hits = snap.get("cache.hits", {}).get("value", 0)
        misses = snap.get("cache.misses", {}).get("value", 0)
        if hits or misses:
            self.record("cache_hit_rate", hits / (hits + misses))
        for key in keys or ():
            inst = snap.get(key)
            if not inst:
                continue
            flat = key.replace(".", "_")
            if inst.get("type") == "histogram" and inst.get("count"):
                self.record(f"{flat}_mean", inst["mean"])
                self.record(f"{flat}_p90", inst["p90"])
            elif "value" in inst:
                self.record(flat, inst["value"])

    # -- output --------------------------------------------------------

    @property
    def path(self) -> str:
        return os.path.join(self.out_dir, f"BENCH_{self.name}.json")

    def write(self) -> str:
        """Write the report atomically; returns its path."""
        payload = {
            "schema": BENCH_SCHEMA_VERSION,
            "name": self.name,
            "created_unix": time.time(),
            "wall_time_s": time.perf_counter() - self._started,
            "metrics": dict(sorted(self.metrics.items())),
        }
        os.makedirs(self.out_dir, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
            f.write("\n")
        os.replace(tmp, self.path)
        return self.path


def validate_report(path: str) -> dict:
    """Validate one ``BENCH_*.json``; returns the payload or raises.

    Checks the schema version, the name/filename agreement, and that
    every metric is a finite number — the contract the CI smoke job
    enforces on uploaded artifacts.
    """
    with open(path) as f:
        payload = json.load(f)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: report must be a JSON object")
    if payload.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema {payload.get('schema')!r} "
            f"(expected {BENCH_SCHEMA_VERSION})"
        )
    name = payload.get("name")
    expected = os.path.basename(path)
    if not name or expected != f"BENCH_{name}.json":
        raise ValueError(f"{path}: name {name!r} does not match filename")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{path}: report has no metrics")
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{path}: metric {key!r} is not numeric")
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"{path}: metric {key!r} is not finite")
    wall = payload.get("wall_time_s")
    if not isinstance(wall, (int, float)) or wall < 0:
        raise ValueError(f"{path}: missing or negative wall_time_s")
    return payload


def main(argv: Optional[list[str]] = None) -> int:
    """CLI validator: ``python -m repro.observe.bench_report FILE...``."""
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.observe.bench_report BENCH_*.json", file=sys.stderr)
        return 2
    failures = 0
    for path in args:
        try:
            payload = validate_report(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"INVALID {path}: {exc}", file=sys.stderr)
            failures += 1
            continue
        keys = len(payload["metrics"])
        print(f"ok {path}: {keys} metrics, wall {payload['wall_time_s']:.2f}s")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
