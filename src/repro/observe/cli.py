"""``repro-status``: a live status table over a transaction log.

The real manager and the simulator both stream their events to a
transaction log (see :mod:`repro.observe.txnlog`); this CLI replays
that file into the current world state — connected workers, running
tasks, open transfers, cached bytes — and renders an aligned table.
Because the log is append-only JSONL, pointing the CLI at the file a
*running* manager is writing gives a live view (``--follow`` re-reads
and redraws), and pointing it at a finished log summarizes the run::

    repro-status /tmp/run.jsonl              # one snapshot
    repro-status /tmp/run.jsonl --follow     # live table, ^C to stop
    repro-status /tmp/run.jsonl --metrics /tmp/metrics.json

This is the ``vine_status`` idiom: read-only, zero coupling to the
manager process, works the same for both runtimes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.control_plane import source_kind
from repro.core.events import Event
from repro.observe.txnlog import read_transactions

__all__ = [
    "LogStatus",
    "replay_status",
    "format_log_status",
    "format_tenant_table",
    "main",
]


@dataclass
class _WorkerReplay:
    connected: bool = True
    running: set = field(default_factory=set)
    cached_objects: int = 0
    cached_bytes: int = 0


@dataclass
class LogStatus:
    """World state reconstructed from a transaction log prefix."""

    runtime: str = "unknown"
    horizon: float = 0.0
    workers: dict[str, _WorkerReplay] = field(default_factory=dict)
    tasks_running: int = 0
    tasks_done: int = 0
    transfers_open: int = 0
    transfers_done: int = 0
    stages_open: int = 0
    stages_done: int = 0
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    libraries_ready: dict[str, int] = field(default_factory=dict)
    workflow_done: bool = False
    #: chaos-run bookkeeping: injected faults by category, and the
    #: recovery actions the control plane answered with
    faults_by_category: dict[str, int] = field(default_factory=dict)
    transfers_failed: int = 0
    tasks_requeued: int = 0
    files_regenerated: int = 0
    workers_blocklisted: int = 0
    #: service mode: client sessions seen attaching, requests refused,
    #: and cross-tenant cache reuse events
    clients_attached: int = 0
    clients_rejected: int = 0
    cache_shared: int = 0
    #: persistent memoization: deterministic resubmissions served from
    #: the store, ones that had to run, and entries invalidated at
    #: lookup (OxyMake's rule: never serve an unsound entry)
    memo_hits: int = 0
    memo_misses: int = 0
    memo_invalidated: int = 0
    memo_bytes_saved: int = 0
    #: crash-safe manager: restarts seen in the log, journal snapshots,
    #: and what the rejoin grace window settled on each restart
    manager_restarts: int = 0
    journal_snapshots: int = 0
    workers_rejoined: int = 0
    replicas_readopted: int = 0
    sessions_restored: int = 0
    #: category string of the last ``recovery_complete`` event
    #: (``regenerated=N lost=N workers=J/E``), "" before any recovery
    last_recovery: str = ""
    outputs_resumed: int = 0
    #: elastic membership: graceful drains ordered and completed, bytes
    #: migrated off draining workers, drains that left sole-holder
    #: objects stranded, and autoscaler decisions by direction
    drains_started: int = 0
    drains_completed: int = 0
    drain_bytes_migrated: int = 0
    drains_stranded: int = 0
    autoscale_up: int = 0
    autoscale_down: int = 0

    @property
    def faults_injected(self) -> int:
        return sum(self.faults_by_category.values())

    @property
    def workers_connected(self) -> int:
        return sum(1 for w in self.workers.values() if w.connected)


def replay_status(events: list[Event], runtime: str = "unknown") -> LogStatus:
    """Fold an event sequence into the state at its horizon."""
    st = LogStatus(runtime=runtime)
    open_tasks: set[str] = set()
    for e in events:
        st.horizon = max(st.horizon, e.time)
        w = st.workers.get(e.worker) if e.worker else None
        if e.kind == "worker_join":
            st.workers[e.worker] = _WorkerReplay()
        elif e.kind == "worker_leave" and w is not None:
            w.connected = False
            open_tasks -= w.running
            w.running = set()
        elif e.kind == "task_start":
            if e.category == "library":
                st.libraries_ready.setdefault(e.category, 0)
            open_tasks.add(e.task)
            if w is not None:
                w.running.add(e.task)
        elif e.kind == "task_end":
            if e.task in open_tasks:
                open_tasks.discard(e.task)
                st.tasks_done += 1
            if w is not None:
                w.running.discard(e.task)
            if e.category == "library" and e.category in st.libraries_ready:
                pass  # library teardown; ready count handled below
        elif e.kind == "transfer_start":
            st.transfers_open += 1
        elif e.kind == "transfer_end":
            st.transfers_open = max(0, st.transfers_open - 1)
            st.transfers_done += 1
            if e.category is not None:
                kind = (
                    "retrieve" if e.category == "@retrieve"
                    else source_kind(e.category)
                )
                st.bytes_by_kind[kind] = st.bytes_by_kind.get(kind, 0) + e.size
        elif e.kind == "stage_start":
            st.stages_open += 1
        elif e.kind == "stage_end":
            st.stages_open = max(0, st.stages_open - 1)
            st.stages_done += 1
        elif e.kind == "file_cached" and w is not None:
            w.cached_objects += 1
            w.cached_bytes += e.size
        elif e.kind == "file_deleted" and w is not None:
            w.cached_objects = max(0, w.cached_objects - 1)
            w.cached_bytes = max(0, w.cached_bytes - e.size)
        elif e.kind == "library_ready" and e.category is not None:
            st.libraries_ready[e.category] = (
                st.libraries_ready.get(e.category, 0) + 1
            )
        elif e.kind == "fault_injected":
            st.faults_by_category[e.category or "unknown"] = (
                st.faults_by_category.get(e.category or "unknown", 0) + 1
            )
        elif e.kind == "transfer_failed":
            st.transfers_failed += 1
        elif e.kind == "task_requeued":
            st.tasks_requeued += 1
        elif e.kind == "file_regenerated":
            st.files_regenerated += 1
        elif e.kind == "worker_blocklist":
            st.workers_blocklisted += 1
        elif e.kind == "client_attach":
            st.clients_attached += 1
        elif e.kind == "client_rejected":
            st.clients_rejected += 1
        elif e.kind == "cache_shared":
            st.cache_shared += 1
        elif e.kind == "memo_hit":
            st.memo_hits += 1
            st.memo_bytes_saved += e.size
        elif e.kind == "memo_miss":
            st.memo_misses += 1
        elif e.kind == "memo_invalidated":
            st.memo_invalidated += 1
        elif e.kind == "manager_restart":
            st.manager_restarts += 1
        elif e.kind == "journal_snapshot":
            st.journal_snapshots += 1
        elif e.kind == "worker_rejoined":
            st.workers_rejoined += 1
        elif e.kind == "replica_readopted":
            st.replicas_readopted += 1
        elif e.kind == "session_restored":
            st.sessions_restored += 1
        elif e.kind == "recovery_complete":
            st.last_recovery = e.category or ""
            st.outputs_resumed += e.size
        elif e.kind == "worker_drain":
            st.drains_started += 1
        elif e.kind == "worker_drained":
            st.drains_completed += 1
            st.drain_bytes_migrated += e.size
            if e.category == "stranded":
                st.drains_stranded += 1
        elif e.kind == "autoscale":
            if e.category == "up":
                st.autoscale_up += e.size
            else:
                st.autoscale_down += e.size
        elif e.kind == "workflow_done":
            st.workflow_done = True
    st.tasks_running = len(open_tasks)
    return st


def format_log_status(st: LogStatus, max_workers: int = 20) -> str:
    """Render the replayed state as an aligned text table."""
    lines = [
        f"runtime {st.runtime}  t={st.horizon:.1f}s"
        + ("  [workflow done]" if st.workflow_done else ""),
        f"tasks: {st.tasks_running} running, {st.tasks_done} done",
        f"transfers: {st.transfers_open} open, {st.transfers_done} done; "
        f"stages: {st.stages_open} open, {st.stages_done} done",
    ]
    if st.bytes_by_kind:
        moved = "  ".join(
            f"{kind}={nbytes / 1e6:.1f}MB"
            for kind, nbytes in sorted(st.bytes_by_kind.items())
        )
        lines.append(f"bytes moved: {moved}")
    if st.libraries_ready:
        ready = "  ".join(
            f"{name}:{n}" for name, n in sorted(st.libraries_ready.items())
        )
        lines.append(f"libraries ready: {ready}")
    if st.faults_injected or st.transfers_failed or st.tasks_requeued:
        cats = "  ".join(
            f"{cat}:{n}" for cat, n in sorted(st.faults_by_category.items())
        )
        lines.append(
            f"faults injected: {st.faults_injected}" + (f" ({cats})" if cats else "")
        )
        lines.append(
            f"recovery: {st.transfers_failed} failed transfers, "
            f"{st.tasks_requeued} requeues, {st.files_regenerated} regenerations, "
            f"{st.workers_blocklisted} blocklisted"
        )
    if st.clients_attached or st.clients_rejected or st.cache_shared:
        lines.append(
            f"clients: {st.clients_attached} attached, "
            f"{st.clients_rejected} rejected; "
            f"{st.cache_shared} cross-tenant cache hits"
        )
    if st.memo_hits or st.memo_misses or st.memo_invalidated:
        lines.append(
            f"memo: {st.memo_hits} hits, {st.memo_misses} misses, "
            f"{st.memo_invalidated} invalidated; "
            f"{st.memo_bytes_saved / 1e6:.1f}MB saved"
        )
    if st.manager_restarts:
        lines.append(
            f"recovery: {st.manager_restarts} manager restart(s), "
            f"{st.workers_rejoined} workers rejoined, "
            f"{st.replicas_readopted} replicas re-adopted, "
            f"{st.sessions_restored} sessions restored, "
            f"{st.outputs_resumed} outputs resumed"
            + (f" ({st.last_recovery})" if st.last_recovery else "")
        )
    if st.drains_started or st.autoscale_up or st.autoscale_down:
        lines.append(
            f"elastic: {st.drains_started} drains "
            f"({st.drains_completed} completed, {st.drains_stranded} stranded), "
            f"{st.drain_bytes_migrated / 1e6:.1f}MB migrated; "
            f"autoscale +{st.autoscale_up}/-{st.autoscale_down}"
        )
    lines.append(f"workers connected: {st.workers_connected}")
    shown = 0
    for wid in sorted(st.workers):
        w = st.workers[wid]
        if not w.connected:
            continue
        if shown >= max_workers:
            lines.append(f"  ... and {st.workers_connected - shown} more")
            break
        shown += 1
        lines.append(
            f"  {wid:>8s} tasks {len(w.running):3d}  "
            f"cache {w.cached_objects:4d} objs {w.cached_bytes / 1e6:9.1f} MB"
        )
    return "\n".join(lines)


def format_tenant_table(metrics: dict) -> str:
    """Per-tenant rows from ``tenant.<name>.<field>`` accounting metrics.

    Returns "" when the snapshot carries no tenant accounting (a
    single-tenant run never creates these instruments).
    """
    tenants: dict[str, dict[str, float]] = {}
    for name, inst in metrics.items():
        if not name.startswith("tenant."):
            continue
        _, tenant, fieldname = name.split(".", 2)
        tenants.setdefault(tenant, {})[fieldname] = inst.get("value", 0)
    if not tenants:
        return ""
    lines = [
        "tenants:",
        f"  {'tenant':<12s} {'queued':>7s} {'running':>8s} {'done':>6s} "
        f"{'failed':>7s} {'cached':>10s} {'hits':>5s} {'headroom':>9s}",
    ]
    for tenant in sorted(tenants):
        row = tenants[tenant]
        headroom = row.get("quota_headroom", -1)
        lines.append(
            f"  {tenant:<12s} {int(row.get('tasks_queued', 0)):>7d} "
            f"{int(row.get('tasks_running', 0)):>8d} "
            f"{int(row.get('tasks_done', 0)):>6d} "
            f"{int(row.get('tasks_failed', 0)):>7d} "
            f"{row.get('bytes_declared', 0) / 1e6:>8.1f}MB "
            f"{int(row.get('cache_hits', 0)):>5d} "
            + (f"{int(headroom):>9d}" if headroom >= 0 else f"{'∞':>9s}")
        )
    return "\n".join(lines)


def _format_metrics(path: str) -> str:
    try:
        with open(path) as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return f"(metrics unreadable: {exc})"
    lines = []
    tenant_table = format_tenant_table(payload.get("metrics", {}))
    if tenant_table:
        lines.append(tenant_table)
    lines.append("metrics:")
    for name, inst in sorted(payload.get("metrics", {}).items()):
        if name.startswith("tenant."):
            continue  # rendered as the tenant table above
        if inst.get("type") == "histogram":
            if not inst.get("count"):
                continue
            lines.append(
                f"  {name:<36s} n={inst['count']:<8d} "
                f"mean={inst['mean']:.4g} p90={inst['p90']:.4g} "
                f"max={inst['max']:.4g}"
            )
        elif inst.get("type") == "gauge":
            lines.append(
                f"  {name:<36s} {inst['value']:.6g} (peak {inst['max']:.6g})"
            )
        else:
            lines.append(f"  {name:<36s} {inst.get('value', 0):.6g}")
    return "\n".join(lines)


def _render_once(args) -> int:
    header, events = read_transactions(args.log)
    st = replay_status(events, runtime=header.get("runtime", "unknown"))
    print(format_log_status(st, max_workers=args.workers))
    if args.metrics:
        print(_format_metrics(args.metrics))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-status",
        description="Render a status table from a transaction log "
        "(live while a manager writes it, or after the fact).",
    )
    parser.add_argument("log", help="path to a transaction log (JSONL)")
    parser.add_argument(
        "-f", "--follow", action="store_true",
        help="redraw every --interval seconds until workflow_done or ^C",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh period for --follow"
    )
    parser.add_argument(
        "--metrics", help="also render a metrics snapshot JSON (see SnapshotDumper)"
    )
    parser.add_argument(
        "--workers", type=int, default=20, help="max worker rows to show"
    )
    args = parser.parse_args(argv)
    try:
        if not args.follow:
            return _render_once(args)
        while True:
            print("\033[2J\033[H", end="")  # clear screen, home cursor
            _render_once(args)
            header, events = read_transactions(args.log)
            if any(e.kind == "workflow_done" for e in events):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 130
    except (OSError, ValueError) as exc:
        print(f"repro-status: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
