"""Runtime observability: transaction log, metrics, bench reporting.

This package is the telemetry substrate under both runtimes (paper
§4: every evaluation figure is a view over the manager's transaction
log).  It is deliberately runtime-agnostic — the shared
:class:`~repro.core.control_plane.ControlPlane` emits the same events
and samples the same metrics whether it is driven by the threaded
:class:`~repro.core.manager.Manager` or the discrete-event
:class:`~repro.sim.simmanager.SimManager` — so a real run and a
simulated run of one workflow produce logs with identical schema.

Three layers:

* :mod:`repro.observe.txnlog` — append-only JSONL transaction log with
  a versioned schema; the :class:`~repro.core.events.EventLog`
  analysis becomes a loader over a file on disk.
* :mod:`repro.observe.metrics` — counters, gauges and bounded-reservoir
  histograms sampled in the hot paths, with snapshot dumps.
* :mod:`repro.observe.bench_report` — machine-readable ``BENCH_*.json``
  reports accumulating the performance trajectory.

``repro-status`` (:mod:`repro.observe.cli`) renders a live table from
a transaction log as it is written, or summarizes a finished one.
"""

from repro.observe.bench_report import BenchReporter, validate_report
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SnapshotDumper,
)
from repro.observe.txnlog import (
    TXN_SCHEMA_VERSION,
    TransactionLogWriter,
    load_event_log,
    read_transactions,
)

__all__ = [
    "TXN_SCHEMA_VERSION",
    "TransactionLogWriter",
    "read_transactions",
    "load_event_log",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SnapshotDumper",
    "BenchReporter",
    "validate_report",
]
