"""The declarative fault schedule: what breaks, when, and how badly.

A :class:`FaultPlan` is a pure description — no clocks, no I/O — of the
hostile conditions a chaos run should impose.  Both runtime adapters
(:mod:`repro.faults.sim`, :mod:`repro.faults.real`) interpret the same
plan, and all randomness flows from one seed, so a chaos run is exactly
reproducible: same plan + same seed ⇒ same injected faults.

Fault kinds:

* :class:`WorkerCrash` — a worker leaves abruptly at virtual/wall time
  ``at`` or after completing ``after_tasks`` tasks, losing its cache.
* :class:`WorkerJoin` — a new worker joins the cluster at time ``at``
  with the given resources (elastic scale-up; in the real runtime a
  fleet supervisor launches the process).
* :class:`WorkerDrain` — a graceful departure at time ``at``: the
  worker announces it is leaving, the manager stops placing work onto
  it, re-replicates its sole-holder cache objects to survivors, and
  only then releases it (elastic scale-down — the opposite of a
  :class:`WorkerCrash`, which loses the cache).
* :class:`TransferFault` — each transfer served by a matching source
  kind fails (``mode="fail"``) or delivers corrupt bytes detected by
  checksum verification (``mode="corrupt"``) with probability ``p``.
* :class:`LinkDegrade` — a worker's uplink/downlink drop to ``factor``
  of their capacity at time ``at`` (sim only: the real runtime has no
  bandwidth model to throttle).
* :class:`ManagerDisconnect` — the manager↔worker control connection
  drops at time ``at``; the worker process survives but the manager
  must declare it gone and recover.
* :class:`ManagerCrash` — the *manager itself* dies abruptly at time
  ``at`` or after ``after_tasks`` completions, testing journal replay
  and the rejoin grace window: the harness restarts a manager over the
  same journal directory and the run must converge to identical
  outputs without re-executing work whose outputs survived.

Plans serialize to/from plain dicts (JSON-ready) so a chaos run's plan
can ship alongside its transaction log as one reproducible artifact.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = [
    "WorkerCrash",
    "WorkerJoin",
    "WorkerDrain",
    "TransferFault",
    "LinkDegrade",
    "ManagerDisconnect",
    "ManagerCrash",
    "FaultPlan",
    "SOURCE_KINDS",
]

#: transfer source kinds a TransferFault may target (see
#: :func:`repro.core.control_plane.source_kind`); "any" matches all
SOURCE_KINDS = ("peer", "manager", "url", "stage", "any")


@dataclass(frozen=True)
class WorkerCrash:
    """One worker's abrupt departure (preemption, OOM-kill, power loss)."""

    worker: str
    #: absolute time of the crash (virtual seconds in sim, seconds since
    #: manager start for the real runtime); None defers to after_tasks
    at: Optional[float] = None
    #: crash mid-way through this worker's Nth task instead of at a time
    after_tasks: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.at is None) == (self.after_tasks is None):
            raise ValueError(
                f"WorkerCrash({self.worker!r}) needs exactly one of at/after_tasks"
            )
        if self.after_tasks is not None and self.after_tasks < 1:
            raise ValueError("after_tasks must be >= 1")


@dataclass(frozen=True)
class WorkerJoin:
    """A new worker joining the cluster mid-run (elastic scale-up).

    Resource defaults mirror :meth:`repro.sim.cluster.SimCluster.add_worker`;
    the real-runtime fleet supervisor maps them onto worker-process
    flags as best it can.
    """

    worker: str
    #: absolute join time (virtual seconds in sim, seconds since
    #: manager start for the real runtime)
    at: float
    cores: int = 4
    memory: int = 16_000
    disk: int = 100_000
    gpus: int = 0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"WorkerJoin({self.worker!r}) at must be >= 0")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")


@dataclass(frozen=True)
class WorkerDrain:
    """One worker's graceful departure (autoscaler scale-down, node
    maintenance): announced ahead of time so the manager can migrate
    sole-holder cache objects to survivors before the disconnect."""

    worker: str
    #: absolute time the drain is announced
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"WorkerDrain({self.worker!r}) at must be >= 0")


@dataclass(frozen=True)
class TransferFault:
    """Probabilistic failure/corruption of transfers from a source kind."""

    #: one of SOURCE_KINDS
    kind: str
    #: per-transfer probability in [0, 1]
    p: float
    #: "fail" = the bytes never arrive; "corrupt" = they arrive damaged
    #: and checksum verification rejects them
    mode: str = "fail"

    def __post_init__(self) -> None:
        if self.kind not in SOURCE_KINDS:
            raise ValueError(f"unknown source kind {self.kind!r}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"probability must be in [0,1], got {self.p}")
        if self.mode not in ("fail", "corrupt"):
            raise ValueError(f"unknown transfer fault mode {self.mode!r}")

    def matches(self, source_kind: str) -> bool:
        return self.kind == "any" or self.kind == source_kind


@dataclass(frozen=True)
class LinkDegrade:
    """Throttle one worker's network endpoints to a fraction of capacity."""

    worker: str
    at: float
    #: remaining bandwidth fraction in (0, 1]
    factor: float

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"factor must be in (0,1], got {self.factor}")


@dataclass(frozen=True)
class ManagerDisconnect:
    """Drop the control connection between the manager and one worker."""

    worker: str
    at: float


@dataclass(frozen=True)
class ManagerCrash:
    """The manager process dies abruptly (``kill -9``) mid-run.

    In the sim the injector calls ``SimManager.crash()``; in the real
    runtime the harness kills and restarts the manager process.  Either
    way the restarted manager replays the journal, waits out the rejoin
    grace window, and resumes the run.
    """

    #: absolute crash time (virtual seconds in sim, seconds since
    #: manager start for the real runtime); None defers to after_tasks
    at: Optional[float] = None
    #: crash after this many task completions (across all workers)
    after_tasks: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.at is None) == (self.after_tasks is None):
            raise ValueError("ManagerCrash needs exactly one of at/after_tasks")
        if self.after_tasks is not None and self.after_tasks < 1:
            raise ValueError("after_tasks must be >= 1")


@dataclass
class FaultPlan:
    """A seeded, declarative schedule of faults for one chaos run."""

    seed: int = 0
    crashes: list[WorkerCrash] = field(default_factory=list)
    transfer_faults: list[TransferFault] = field(default_factory=list)
    degrades: list[LinkDegrade] = field(default_factory=list)
    disconnects: list[ManagerDisconnect] = field(default_factory=list)
    manager_crashes: list[ManagerCrash] = field(default_factory=list)
    joins: list[WorkerJoin] = field(default_factory=list)
    drains: list[WorkerDrain] = field(default_factory=list)

    # -- construction helpers ------------------------------------------

    def crash(
        self,
        worker: str,
        at: Optional[float] = None,
        after_tasks: Optional[int] = None,
    ) -> "FaultPlan":
        self.crashes.append(WorkerCrash(worker, at=at, after_tasks=after_tasks))
        return self

    def join(
        self,
        worker: str,
        at: float,
        cores: int = 4,
        memory: int = 16_000,
        disk: int = 100_000,
        gpus: int = 0,
    ) -> "FaultPlan":
        self.joins.append(
            WorkerJoin(worker, at=at, cores=cores, memory=memory, disk=disk, gpus=gpus)
        )
        return self

    def drain(self, worker: str, at: float) -> "FaultPlan":
        self.drains.append(WorkerDrain(worker, at=at))
        return self

    def fail_transfers(self, kind: str, p: float) -> "FaultPlan":
        self.transfer_faults.append(TransferFault(kind, p, mode="fail"))
        return self

    def corrupt_transfers(self, kind: str, p: float) -> "FaultPlan":
        self.transfer_faults.append(TransferFault(kind, p, mode="corrupt"))
        return self

    def degrade_link(self, worker: str, at: float, factor: float) -> "FaultPlan":
        self.degrades.append(LinkDegrade(worker, at, factor))
        return self

    def disconnect(self, worker: str, at: float) -> "FaultPlan":
        self.disconnects.append(ManagerDisconnect(worker, at))
        return self

    def crash_manager(
        self, at: Optional[float] = None, after_tasks: Optional[int] = None
    ) -> "FaultPlan":
        self.manager_crashes.append(ManagerCrash(at=at, after_tasks=after_tasks))
        return self

    # -- deterministic randomness --------------------------------------

    def rng_for(self, scope: str) -> random.Random:
        """A private RNG for one consumer, derived from the plan seed.

        Scoping keeps adapters independent: the sim injector drawing
        transfer-fault coins never perturbs the stream a worker process
        uses for corrupt-serve coins.
        """
        return random.Random(f"{self.seed}:{scope}")

    def transfer_verdict(
        self, rng: random.Random, source_kind: str
    ) -> Optional[str]:
        """Draw one transfer's fate: None, "fail", or "corrupt".

        Exactly one uniform draw per matching rule, in declaration
        order, so verdicts are stable for a given seed regardless of
        which rule fires.
        """
        for rule in self.transfer_faults:
            if rule.matches(source_kind) and rng.random() < rule.p:
                return rule.mode
        return None

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "crashes": [asdict(c) for c in self.crashes],
            "transfer_faults": [asdict(t) for t in self.transfer_faults],
            "degrades": [asdict(d) for d in self.degrades],
            "disconnects": [asdict(d) for d in self.disconnects],
            "manager_crashes": [asdict(c) for c in self.manager_crashes],
            "joins": [asdict(j) for j in self.joins],
            "drains": [asdict(d) for d in self.drains],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            crashes=[WorkerCrash(**c) for c in payload.get("crashes", ())],
            transfer_faults=[
                TransferFault(**t) for t in payload.get("transfer_faults", ())
            ],
            degrades=[LinkDegrade(**d) for d in payload.get("degrades", ())],
            disconnects=[
                ManagerDisconnect(**d) for d in payload.get("disconnects", ())
            ],
            manager_crashes=[
                ManagerCrash(**c) for c in payload.get("manager_crashes", ())
            ],
            joins=[WorkerJoin(**j) for j in payload.get("joins", ())],
            drains=[WorkerDrain(**d) for d in payload.get("drains", ())],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return (
            len(self.crashes)
            + len(self.transfer_faults)
            + len(self.degrades)
            + len(self.disconnects)
            + len(self.manager_crashes)
            + len(self.joins)
            + len(self.drains)
        )
