"""Fault-plan interpreter for the discrete-event runtime.

:class:`SimFaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to a running :class:`~repro.sim.simmanager.SimManager`: timed crashes,
link degradations and disconnects become simulation events; transfer
faults become verdicts drawn when the manager starts each simulated
flow.  Every injected fault is recorded through
:meth:`~repro.core.control_plane.ControlPlane.note_fault` *before* the
control plane sees its consequences, so a transaction log always shows
the ``fault_injected`` event ahead of the recovery it triggered.

Determinism: all randomness comes from plan-scoped RNGs, and faults are
scheduled through the simulation clock, so the same plan + seed yields
an identical event sequence on every run.
"""

from __future__ import annotations

import collections
from typing import Optional

from repro.core.control_plane import source_kind
from repro.core.events import Event
from repro.core.transfer_table import Transfer
from repro.faults.plan import FaultPlan, ManagerCrash, WorkerCrash

__all__ = ["SimFaultInjector"]


class SimFaultInjector:
    """Drives a FaultPlan against one simulated workflow run.

    Instantiate after creating the :class:`SimManager` and before
    calling ``run()``; the injector installs itself as the manager's
    ``fault_injector`` and arms every scheduled fault.
    """

    def __init__(self, plan: FaultPlan, manager) -> None:
        self.plan = plan
        self.manager = manager
        self.cluster = manager.cluster
        self.sim = manager.sim
        self._verdict_rng = plan.rng_for("sim.transfers")
        self._fraction_rng = plan.rng_for("sim.fractions")
        #: completed (non-library) tasks per worker, for after_tasks crashes
        self._task_counts: collections.Counter = collections.Counter()
        self._after_crashes: dict[str, list[WorkerCrash]] = {}
        self._fired: set[WorkerCrash] = set()
        #: total completions across all workers, for manager crashes
        self._total_task_ends = 0
        self._after_mgr_crashes: list[ManagerCrash] = []
        self._mgr_fired: set[ManagerCrash] = set()
        manager.fault_injector = self
        self._arm()

    def _arm(self) -> None:
        for c in self.plan.crashes:
            if c.at is not None:
                self.sim.schedule_at(c.at, self._crash, c.worker, "crash")
            else:
                self._after_crashes.setdefault(c.worker, []).append(c)
        for jn in self.plan.joins:
            self.sim.schedule_at(jn.at, self._join, jn)
        for dr in self.plan.drains:
            self.sim.schedule_at(dr.at, self._drain, dr.worker)
        for d in self.plan.degrades:
            self.sim.schedule_at(d.at, self._degrade, d.worker, d.factor)
        for d in self.plan.disconnects:
            # the sim has no live socket to sever: the manager-visible
            # effect of a dropped control connection is a worker loss
            self.sim.schedule_at(d.at, self._crash, d.worker, "disconnect")
        for mc in self.plan.manager_crashes:
            if mc.at is not None:
                self.sim.schedule_at(mc.at, self._crash_manager)
            else:
                self._after_mgr_crashes.append(mc)
        if self._after_crashes or self._after_mgr_crashes:
            self.manager.control.log.attach(self._count_task_ends)

    # -- scheduled faults ----------------------------------------------

    def _crash(self, worker_id: str, category: str) -> None:
        worker = self.cluster.workers.get(worker_id)
        if worker is None or not worker.connected:
            return  # already gone; nothing to kill
        self.manager.control.note_fault(worker_id, category)
        self.cluster.remove_worker(worker_id, at=self.sim.now)

    def _join(self, spec) -> None:
        """Elastic scale-up: a scheduled worker joins the live cluster."""
        worker = self.cluster.workers.get(spec.worker)
        if worker is not None:
            if not worker.connected:
                self.cluster._join(worker)  # a known worker returning
            return
        self.cluster.add_worker(
            worker_id=spec.worker,
            cores=spec.cores,
            memory=spec.memory,
            disk=spec.disk,
            gpus=spec.gpus,
            at=self.sim.now,
        )

    def _drain(self, worker_id: str) -> None:
        """Elastic scale-down: a graceful, announced departure — no
        note_fault, because nothing broke; the txn log records it as a
        worker_drain/worker_drained pair instead."""
        worker = self.cluster.workers.get(worker_id)
        if worker is None or not worker.connected:
            return  # already gone; nothing to drain
        self.manager.control.drain_worker(worker_id)

    def _degrade(self, worker_id: str, factor: float) -> None:
        node = self.manager.network.nodes.get(worker_id)
        if node is None:
            return
        self.manager.control.note_fault(worker_id, "link_degrade")
        self.manager.network.set_bandwidth(
            worker_id, up_bps=node.up_bps * factor, down_bps=node.down_bps * factor
        )

    def _crash_manager(self) -> None:
        if self.manager._crashed:
            return
        # no note_fault: a dying manager records nothing — the fault's
        # evidence is the journal replay the next life performs
        self.manager.crash()

    def _count_task_ends(self, e: Event) -> None:
        # EventLog sinks run inline under emit and must not re-enter the
        # control plane, so the kill itself is deferred to a sim event
        if e.kind != "task_end" or e.worker is None or e.category == "library":
            return
        self._task_counts[e.worker] += 1
        done = self._task_counts[e.worker]
        for c in self._after_crashes.get(e.worker, ()):
            if done >= c.after_tasks and c not in self._fired:
                self._fired.add(c)
                self.sim.schedule(0.0, self._crash, c.worker, "crash")
        self._total_task_ends += 1
        for mc in self._after_mgr_crashes:
            if self._total_task_ends >= mc.after_tasks and mc not in self._mgr_fired:
                self._mgr_fired.add(mc)
                self.sim.schedule(0.0, self._crash_manager)

    # -- transfer interception -----------------------------------------

    def transfer_verdict(self, record: Transfer) -> Optional[tuple[str, float]]:
        """Fate of one starting transfer: None, or (mode, fraction).

        ``fraction`` is how much of the object's size occupies the link
        before a "fail" surfaces (corrupt transfers move every byte).
        Verdict and fraction draws come from separate plan-scoped RNGs,
        so the stream stays reproducible for a given plan seed.
        """
        verdict = self.plan.transfer_verdict(
            self._verdict_rng, source_kind(record.source)
        )
        if verdict is None:
            return None
        fraction = (
            0.1 + 0.8 * self._fraction_rng.random() if verdict == "fail" else 1.0
        )
        return (verdict, fraction)
