"""``python -m repro.faults.demo`` — a reproducible chaos run in a box.

Drives the simulator's standard hostile fault plan (half the cluster
killed, one link throttled, probabilistic transfer failure/corruption)
against a two-stage DAG, streaming the transaction log to disk.  The
log is the artifact: replay it with ``repro-status <log>`` to see the
fault/recovery ledger, or diff two runs with the same seed to confirm
the chaos machinery is deterministic.  CI runs this with a fixed seed
and uploads the log.

Exit status is non-zero if any task fails to reach DONE — a chaos run
that does not converge is a recovery bug, not bad luck.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.core.task import Task, TaskState
from repro.faults.plan import FaultPlan
from repro.faults.sim import SimFaultInjector
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

__all__ = ["hostile_plan", "run_chaos", "main"]

MB = 1_000_000


def hostile_plan(seed: int) -> FaultPlan:
    """The reference hostile plan used by CI and the chaos soak tests."""
    return (
        FaultPlan(seed=seed)
        .crash("w0", at=2.0)
        .crash("w1", after_tasks=2)
        .disconnect("w2", at=3.0)
        .degrade_link("w3", at=1.0, factor=0.25)
        .fail_transfers("any", 0.08)
        .corrupt_transfers("peer", 0.10)
    )


def run_chaos(
    seed: int,
    txn_log_path: Optional[str] = None,
    n_workers: int = 6,
    n_stage: int = 12,
):
    """Run the chaos DAG; returns ``(manager, stats, tasks)``."""
    cluster = SimCluster()
    for i in range(n_workers):
        cluster.add_worker(cores=4, worker_id=f"w{i}")
    m = SimManager(
        cluster, seed=seed, max_task_retries=10, txn_log_path=txn_log_path
    )
    SimFaultInjector(hostile_plan(seed), m)
    shared = m.declare_dataset("shared", MB)
    temps, tasks = [], []
    for i in range(n_stage):
        temp = m.declare_temp()
        t = Task(f"produce{i}").add_input(shared, "d").add_output(temp, "out")
        m.submit(t, duration=1.0, output_sizes={"out": MB})
        temps.append(temp)
        tasks.append(t)
    for i in range(n_stage):
        t = (
            Task(f"consume{i}")
            .add_input(temps[i], "a")
            .add_input(temps[(i + 5) % n_stage], "b")
        )
        m.submit(t, duration=1.0)
        tasks.append(t)
    stats = m.run()
    return m, stats, tasks


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.demo",
        description="Run the reference chaos plan on the simulator and "
        "stream its transaction log to disk.",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--log", default="chaos_txn.jsonl",
        help="transaction log output path (default: %(default)s)",
    )
    parser.add_argument("--workers", type=int, default=6)
    parser.add_argument("--tasks", type=int, default=12,
                        help="tasks per DAG stage")
    args = parser.parse_args(argv)

    m, stats, tasks = run_chaos(
        args.seed, txn_log_path=args.log,
        n_workers=args.workers, n_stage=args.tasks,
    )
    faults = stats.log.events("fault_injected")
    done = sum(1 for t in tasks if t.state == TaskState.DONE)
    print(
        f"seed {args.seed}: {done}/{len(tasks)} tasks done, "
        f"{len(faults)} faults injected, "
        f"{len(stats.log.events('task_requeued'))} requeues, "
        f"{len(stats.log.events('file_regenerated'))} regenerations "
        f"-> {args.log}"
    )
    return 0 if done == len(tasks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
