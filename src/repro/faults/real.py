"""Fault-plan interpreter for the real (process/socket) runtime.

The real runtime cannot inject faults from the manager side — the point
is to exercise the manager's *reaction* to surprises — so a
:class:`~repro.faults.plan.FaultPlan` is compiled into per-worker
:class:`WorkerFaultConfig` records that ride along when worker
processes launch (``--fault-config`` on the worker CLI, or the
``fault_config`` constructor argument).  Each worker then sabotages
itself: dying abruptly at a deadline or mid-task, dropping its manager
connection, or tampering with cache objects it serves to peers.

Configs are plain picklable dataclasses with a JSON round-trip so they
cross ``multiprocessing`` spawn boundaries and command lines alike.
Link degradation has no real-runtime analogue (there is no bandwidth
model to throttle) and is ignored by the compiler.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.faults.plan import FaultPlan, ManagerCrash

__all__ = [
    "WorkerFaultConfig",
    "worker_fault_configs",
    "manager_crash_spec",
    "join_schedule",
]


def _combine(probabilities: list[float]) -> float:
    """Probability that at least one independent rule fires."""
    miss = 1.0
    for p in probabilities:
        miss *= 1.0 - p
    return 1.0 - miss


@dataclass
class WorkerFaultConfig:
    """Self-sabotage instructions for one real worker process."""

    #: identifies this worker's private random stream within the plan
    worker: str = "worker"
    seed: int = 0
    #: exit abruptly this many seconds after the worker starts
    crash_at: Optional[float] = None
    #: exit abruptly while running the Nth task
    crash_after_tasks: Optional[int] = None
    #: close the manager connection (process survives) at this time
    disconnect_at: Optional[float] = None
    #: announce a graceful departure (elastic drain) at this time: the
    #: worker keeps serving until the manager's shutdown order arrives
    drain_at: Optional[float] = None
    #: per-serve probability of aborting a peer transfer mid-stream
    fail_serve_p: float = 0.0
    #: per-serve probability of delivering corrupted bytes to a peer
    corrupt_serve_p: float = 0.0

    @property
    def empty(self) -> bool:
        return (
            self.crash_at is None
            and self.crash_after_tasks is None
            and self.disconnect_at is None
            and self.drain_at is None
            and self.fail_serve_p <= 0.0
            and self.corrupt_serve_p <= 0.0
        )

    def rng(self) -> random.Random:
        """The worker's private stream for serve-tamper coin flips."""
        return random.Random(f"{self.seed}:real.serve:{self.worker}")

    def serve_verdict(self, rng: random.Random) -> Optional[str]:
        """Draw one peer-serve's fate: None, "fail", or "corrupt".

        Two draws per serve, in a fixed order, keep the stream
        reproducible regardless of which verdicts fire.
        """
        corrupt = rng.random() < self.corrupt_serve_p
        fail = rng.random() < self.fail_serve_p
        if corrupt:
            return "corrupt"
        if fail:
            return "fail"
        return None

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkerFaultConfig":
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkerFaultConfig":
        return cls.from_dict(json.loads(text))


def manager_crash_spec(plan: FaultPlan) -> Optional[ManagerCrash]:
    """The plan's first manager crash, or None.

    Unlike worker faults, a manager crash cannot be self-injected by a
    worker process: the *harness* owns the manager's lifetime.  It kills
    the manager at the spec's instant (``at`` seconds after start, or
    once ``after_tasks`` results have been delivered) and restarts one
    over the same journal directory; this helper just surfaces the
    schedule so harness and plan stay one serializable artifact.
    """
    return plan.manager_crashes[0] if plan.manager_crashes else None


def worker_fault_configs(
    plan: FaultPlan, worker_names: Sequence[str]
) -> dict[str, WorkerFaultConfig]:
    """Compile a plan into one config per named worker.

    ``worker_names`` are the launch-order names the harness will use;
    plan entries referencing unknown workers are ignored (they may
    target sim-only workers).  Transfer faults matching peer serves
    ("peer" or "any") apply uniformly to every worker, since any worker
    may be chosen as a replica source.
    """
    serve_fail = _combine(
        [r.p for r in plan.transfer_faults if r.mode == "fail" and r.kind in ("peer", "any")]
    )
    serve_corrupt = _combine(
        [r.p for r in plan.transfer_faults if r.mode == "corrupt" and r.kind in ("peer", "any")]
    )
    configs: dict[str, WorkerFaultConfig] = {}
    for name in worker_names:
        cfg = WorkerFaultConfig(
            worker=name,
            seed=plan.seed,
            fail_serve_p=serve_fail,
            corrupt_serve_p=serve_corrupt,
        )
        for c in plan.crashes:
            if c.worker == name:
                cfg.crash_at = c.at
                cfg.crash_after_tasks = c.after_tasks
        for d in plan.disconnects:
            if d.worker == name:
                cfg.disconnect_at = d.at
        for dr in plan.drains:
            if dr.worker == name:
                cfg.drain_at = dr.at
        configs[name] = cfg
    return configs


def join_schedule(plan: FaultPlan) -> list:
    """The plan's scheduled joins, launch-ordered (earliest first).

    Like manager crashes, joins cannot be self-injected: processes that
    do not exist yet cannot sabotage themselves.  The fleet supervisor
    (test harness, daemon autoscale thread) owns the launches; this
    surfaces the schedule so the whole membership scenario remains one
    serializable plan artifact.
    """
    return sorted(plan.joins, key=lambda j: (j.at, j.worker))
