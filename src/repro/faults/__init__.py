"""Deterministic fault injection shared by both runtimes.

The paper's central robustness claim (§3.4/§4.4) is that a workflow
keeps making progress while the in-cluster storage under it decays:
workers are preempted, peer transfers fail or deliver corrupt bytes,
and lost temp files are rebuilt from their content-addressed lineage.
This package manufactures those conditions on purpose so the recovery
machinery in :mod:`repro.core.control_plane` is exercised continuously
instead of only when a cluster misbehaves.

Layout:

* :mod:`repro.faults.plan` — the declarative, seeded
  :class:`~repro.faults.plan.FaultPlan` schema (what fails, when, with
  what probability), serializable to/from JSON so chaos runs are
  reproducible artifacts.
* :mod:`repro.faults.sim` — interprets a plan against a
  :class:`~repro.sim.cluster.SimCluster` /
  :class:`~repro.sim.simmanager.SimManager` pair in virtual time.
* :mod:`repro.faults.real` — compiles a plan into per-worker
  :class:`~repro.faults.real.WorkerFaultConfig` hooks installed inside
  real worker processes (crash mid-task, corrupt peer serves, drop the
  manager connection).

Every injected fault is emitted as a ``fault_injected`` event through
the shared transaction log, so ``repro-status`` and the chaos tests can
pair each injection with its recovery event (requeue / regeneration /
blocklist).
"""

from repro.faults.plan import (
    FaultPlan,
    LinkDegrade,
    ManagerCrash,
    ManagerDisconnect,
    TransferFault,
    WorkerCrash,
)
from repro.faults.real import (
    WorkerFaultConfig,
    manager_crash_spec,
    worker_fault_configs,
)
from repro.faults.sim import SimFaultInjector

__all__ = [
    "FaultPlan",
    "WorkerCrash",
    "TransferFault",
    "LinkDegrade",
    "ManagerDisconnect",
    "ManagerCrash",
    "SimFaultInjector",
    "WorkerFaultConfig",
    "worker_fault_configs",
    "manager_crash_spec",
]
