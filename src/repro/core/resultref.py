"""Pass-by-reference results: :class:`ResultRef` descriptors and lazy proxies.

The manager's result plane (ROADMAP item 3) adopts the object-proxy
pattern: a task's output stays in worker caches under its
content-addressed name, and what travels through the manager is a
:class:`ResultRef` — cache name, size, optional md5, and a snapshot of
the holders.  Consumers receive a :class:`ResultProxy` wrapping the
ref; the value is materialized only on first :meth:`ResultProxy.resolve`,
either from a worker-local cache path (when the proxy was shipped into
a downstream task whose inputs staged the ref peer-to-peer) or through
a bound fetcher (the client's ``fetch_result`` plane).

Proxies pickle by reference (``__reduce__`` keeps only the ref), so a
proxy embedded in a follow-up submission's arguments costs a few dozen
bytes on the wire regardless of the value it stands for.

This module is deliberately dependency-light: it is imported by the
manager, the service client, and the forked library-instance children
at the workers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.protocol import serialization as ser

__all__ = [
    "ProxyResolutionError",
    "ResultRef",
    "ResultProxy",
    "decode_result",
    "encode_result",
    "install_local_paths",
    "local_paths",
    "scan_refs",
]


class ProxyResolutionError(RuntimeError):
    """A proxy could not be dereferenced (no path, no fetcher, or the
    recorded execution failed)."""


@dataclass(frozen=True)
class ResultRef:
    """Description of a by-reference result living in worker caches."""

    cache_name: str
    size: int = 0
    md5: Optional[str] = None
    #: holders at publication time — a hint, not a guarantee; the fetch
    #: plane re-resolves holders (and retries/regenerates) on demand
    holders: tuple = field(default_factory=tuple)

    def to_dict(self) -> dict:
        d = {"cache_name": self.cache_name, "size": int(self.size)}
        if self.md5 is not None:
            d["md5"] = self.md5
        if self.holders:
            d["holders"] = list(self.holders)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ResultRef":
        return cls(
            cache_name=str(d["cache_name"]),
            size=int(d.get("size", 0)),
            md5=d.get("md5"),
            holders=tuple(d.get("holders", ())),
        )


#: worker-local resolution table: cache name -> filesystem path of the
#: cached object.  Installed by the library instance before invoking a
#: function whose arguments may carry proxies, so dereferencing is a
#: local file read — no network, no manager.
_LOCAL_PATHS: dict[str, str] = {}


def install_local_paths(paths: dict) -> None:
    """Install (merge) worker-local cache paths for proxy resolution."""
    _LOCAL_PATHS.update({str(k): str(v) for k, v in paths.items()})


def local_paths() -> dict:
    """The currently installed local resolution table (read-only use)."""
    return dict(_LOCAL_PATHS)


def encode_result(value: Any) -> bytes:
    """Serialize a function's return value as a result envelope."""
    return ser.dumps({"ok": True, "value": value})


def decode_result(blob: bytes) -> Any:
    """Decode a result envelope; re-raise the recorded failure if any."""
    decoded = ser.loads(blob)
    if decoded.get("ok"):
        return decoded.get("value")
    error = decoded.get("error")
    if isinstance(error, BaseException):
        raise error
    raise ProxyResolutionError(
        decoded.get("traceback") or repr(error) or "remote execution failed"
    )


def _restore_proxy(cache_name: str, size: int, md5: Optional[str]) -> "ResultProxy":
    """Unpickle hook: proxies travel as bare refs and rebind locally."""
    return ResultProxy(ResultRef(cache_name=cache_name, size=size, md5=md5))


class ResultProxy:
    """A lazy handle to a by-reference result.

    ``resolve()`` memoizes: the first call materializes the value (from
    a worker-local path or the bound fetcher), every later call returns
    the same object.  Pickling strips the fetcher and the cached value —
    only the ref travels — so a proxy embedded in a downstream task's
    arguments resolves *at the worker* against its local cache.
    """

    def __init__(
        self,
        ref: ResultRef,
        fetcher: Optional[Callable[[str], bytes]] = None,
    ) -> None:
        self.ref = ref
        self._fetcher = fetcher
        self._lock = threading.Lock()
        self._value: Any = None
        self._resolved = False

    @property
    def cache_name(self) -> str:
        return self.ref.cache_name

    def bind_fetcher(self, fetcher: Callable[[str], bytes]) -> "ResultProxy":
        """Attach the data-plane fetcher used when no local path exists."""
        self._fetcher = fetcher
        return self

    def resolve(self) -> Any:
        """Materialize the value (memoized; thread-safe)."""
        with self._lock:
            if self._resolved:
                return self._value
            blob = self._payload_bytes()
            self._value = decode_result(blob)
            self._resolved = True
            return self._value

    #: common alias — ``proxy.value()`` reads naturally in applications
    value = resolve

    def _payload_bytes(self) -> bytes:
        name = self.ref.cache_name
        path = _LOCAL_PATHS.get(name)
        if path is not None:
            try:
                with open(path, "rb") as f:
                    return f.read()
            except OSError as exc:
                raise ProxyResolutionError(
                    f"local replica of {name} unreadable: {exc}"
                ) from exc
        if self._fetcher is not None:
            return self._fetcher(name)
        raise ProxyResolutionError(
            f"proxy for {name} has no local replica and no fetcher bound"
        )

    def __reduce__(self):
        return (_restore_proxy, (self.ref.cache_name, self.ref.size, self.ref.md5))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "resolved" if self._resolved else "lazy"
        return f"<ResultProxy {self.ref.cache_name} {self.ref.size}B {state}>"


def scan_refs(obj: Any) -> list[ResultRef]:
    """Collect the refs of every :class:`ResultProxy` reachable through
    plain containers (list/tuple/set/dict) in ``obj``, in first-seen
    order.  Submission paths use this to declare proxy arguments as
    task inputs, so the bytes stage worker-to-worker."""
    seen: dict[str, ResultRef] = {}

    def walk(x: Any) -> None:
        if isinstance(x, ResultProxy):
            seen.setdefault(x.ref.cache_name, x.ref)
        elif isinstance(x, (list, tuple, set, frozenset)):
            for item in x:
                walk(item)
        elif isinstance(x, dict):
            for k, v in x.items():
                walk(k)
                walk(v)

    walk(obj)
    return list(seen.values())
