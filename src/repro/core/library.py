"""Serverless execution model: libraries and function calls (paper §3.4).

Many workflows run near-identical short tasks thousands of times, and
per-task environment setup (starting an interpreter, importing
libraries, reading datasets) dominates runtime.  TaskVine amortizes it:

* a :class:`LibraryTask` deploys a *library* — a named collection of
  functions plus its execution environment — once per worker, where it
  runs continuously as a Library Instance;
* a :class:`FunctionCall` replaces the Unix command of a regular task
  with the name of a library function to invoke; the worker forwards
  the invocation to the resident instance, which forks to run the
  already-loaded code.

Resource management composes with normal tasks: the instance holds a
static allocation for as long as it is installed, and each in-flight
function call consumes its own allocation on top (paper §3.4), so both
kinds pack into workers alongside plain tasks.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

from repro.core.resources import Resources
from repro.core.task import Task

__all__ = ["Library", "LibraryTask", "FunctionCall"]


class Library:
    """A named collection of Python functions to deploy to workers.

    Functions are captured by reference; the manager serializes them
    (with dependencies) when building the deployment payload.  Function
    names must be unique within a library.
    """

    def __init__(self, name: str, functions: Sequence[Callable]) -> None:
        self.name = name
        self.functions: dict[str, Callable] = {}
        for fn in functions:
            fname = fn.__name__
            if fname in self.functions:
                raise ValueError(f"duplicate function {fname!r} in library {name!r}")
            self.functions[fname] = fn
        if not self.functions:
            raise ValueError(f"library {name!r} declares no functions")

    def function_names(self) -> list[str]:
        """Names invocable through this library, in declaration order."""
        return list(self.functions)

    @classmethod
    def from_names(cls, name: str, function_names: Sequence[str]) -> "Library":
        """A *shell* library: names only, no callables.

        Remote clients ship an already-serialized function table; the
        manager never unpickles it, so the Library object it keeps is a
        name-level description used for validation and routing while the
        opaque payload travels to workers verbatim.
        """
        lib = cls.__new__(cls)
        lib.name = name
        lib.functions = {}
        for fname in function_names:
            if fname in lib.functions:
                raise ValueError(f"duplicate function {fname!r} in library {name!r}")
            lib.functions[fname] = None
        if not lib.functions:
            raise ValueError(f"library {name!r} declares no functions")
        return lib

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Library {self.name} funcs={list(self.functions)}>"


class LibraryTask(Task):
    """The task that hosts a library instance on one worker.

    One LibraryTask is dispatched per worker during installation; it
    carries the serialized functions (and any attached environment
    files) as inputs, starts the instance, and then runs until removed
    or until the workflow ends.  ``function_slots`` bounds how many
    invocations the instance serves concurrently.
    """

    def __init__(
        self,
        library: Library,
        resources: Optional[Resources] = None,
        function_slots: int = 1,
    ) -> None:
        super().__init__(f"library:{library.name}")
        self.library = library
        self.category = "library"
        self.function_slots = max(1, int(function_slots))
        if resources is not None:
            self.resources = resources

    @property
    def library_name(self) -> str:
        """The name function calls use to address this library."""
        return self.library.name


class FunctionCall(Task):
    """A lightweight invocation of a deployed library function.

    Scheduled like a task, but executed by message-passing to the
    resident library instance instead of spawning a fresh process tree.
    The deserialized return value is available via :meth:`output` once
    the call completes.

    Two result disciplines exist:

    * *inline* (legacy, and the bench baseline): the pickled return
      value rides the ``task_done`` reply through the manager;
    * *by reference* (:meth:`set_by_reference`, or any remote
      submission): the result envelope lands in the executing worker's
      cache under :data:`RESULT_NAME`-derived content naming and only a
      ``ResultRef`` travels — ``output()`` then yields a lazy
      ``ResultProxy``.
    """

    #: sandbox name of the by-reference result envelope output
    RESULT_NAME = "call_result.bin"

    def __init__(
        self,
        library_name: str,
        function_name: str,
        *args: Any,
        **kwargs: Any,
    ) -> None:
        super().__init__(f"call:{library_name}.{function_name}")
        self.library_name = library_name
        self.function_name = function_name
        self.args = args
        self.kwargs: Mapping[str, Any] = kwargs
        self.category = "function_call"
        self._output: Any = None
        self._output_set = False
        #: results stay in worker caches; output() is a ResultProxy
        self.by_reference = False
        #: remote form: the argument blob is a declared (staged) input
        #: rather than inline invoke payload bytes
        self.args_name: Optional[str] = None
        self.args_blob: Optional[bytes] = None

    def set_by_reference(self, flag: bool = True) -> "FunctionCall":
        """Keep the result in worker caches; ``output()`` is a proxy."""
        self.by_reference = bool(flag)
        return self

    def set_output_value(self, value: Any) -> None:
        """Record the function's return value (called by the manager)."""
        self._output = value
        self._output_set = True

    def output(self) -> Any:
        """Return value of the invocation; raises if not yet complete."""
        if not self._output_set:
            raise RuntimeError(f"function call {self.task_id} has no output yet")
        return self._output
