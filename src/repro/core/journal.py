"""Durable control-plane journal: crash-safe state for the always-on manager.

The paper's §3.2 content-addressed naming makes *data* outlive any one
workflow, and the service mode (PR 6) made the manager outlive any one
client — but the control plane itself lived only in memory: a ``kill -9``
erased every declared file, pending task, tenant ledger and client
session while worker caches and the memo store sat intact on disk.

This module closes that gap with a write-ahead journal in the style of
OxyMake's durable content-addressed state (PAPERS.md):

* :class:`Journal` — the framing layer.  An append-only file of
  length-prefixed JSON records (4-byte big-endian length + UTF-8
  payload), fsync'd per append, next to an atomically-replaced
  ``snapshot.json``.  A crash can tear at most the trailing record;
  replay detects the torn tail, reports it, and truncates it away
  before the next append.

* :class:`ControlPlaneJournal` — the domain layer.  Folds the record
  stream into mirrors of the control plane's durable state (declares,
  quotas, sessions, task submits/completions, replica grants) and
  compacts them into a snapshot once ``snapshot_every`` records
  accumulate, so replay cost is bounded by the live state, not by run
  length.  Replica-grant records are *hints* — on restart the ground
  truth is the inventory each reconnecting worker re-announces — so
  compaction keeps only the latest location map.

* serializers — :func:`file_spec` / :func:`restore_file` and
  :func:`task_spec` / :func:`build_task` turn the runtime-agnostic
  parts of :class:`~repro.core.files.File` and
  :class:`~repro.core.task.Task` into JSON and back.  Buffer contents
  are inlined (base64, capped) so manager-held inputs survive the
  restart; mini-task and serverless specs are *not* replayable — their
  records restore enough naming for replica re-adoption, and anything
  beyond that flows into the existing lineage-regeneration path.

Soundness rule (OxyMake): a journaled fact is trusted after restart
only while something live backs it — a replica re-announced by a
worker, a refetchable source, or an md5-verified retained payload.
Everything else is treated as replica loss, never as truth.
"""

from __future__ import annotations

import base64
import json
import os
import struct
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.files import (
    BufferFile,
    CacheLevel,
    File,
    FileRegistry,
    LocalFile,
    TempFile,
    URLFile,
)
from repro.core.resources import Resources
from repro.core.task import PythonTask, Task

__all__ = [
    "Journal",
    "ControlPlaneJournal",
    "ReplayStats",
    "file_spec",
    "restore_file",
    "task_spec",
    "build_task",
]

_LEN = struct.Struct(">I")
SNAPSHOT_VERSION = 1
#: largest buffer-file payload inlined into a declare record; bigger
#: buffers are journaled without content and become unrecoverable
#: sources on restart (lineage regeneration or terminal failure applies)
MAX_INLINE_BYTES = 4 * 1024 * 1024


@dataclass
class ReplayStats:
    """Cost accounting for one journal replay."""

    #: records restored from the compacting snapshot
    snapshot_records: int = 0
    #: records replayed from the journal tail (since the last snapshot)
    tail_records: int = 0
    #: total records ever appended, including ones compacted away —
    #: the denominator for "replay cost is bounded by the snapshot"
    lifetime_records: int = 0
    #: bytes of torn trailing record discarded (crash artifact)
    torn_bytes: int = 0

    @property
    def replayed_records(self) -> int:
        """Records actually read back (snapshot + tail)."""
        return self.snapshot_records + self.tail_records


class Journal:
    """Append-only length-prefixed record log with atomic snapshots."""

    LOG_NAME = "journal.log"
    SNAPSHOT_NAME = "snapshot.json"

    def __init__(self, dirpath: str, fsync: bool = True) -> None:
        self.dir = dirpath
        os.makedirs(dirpath, exist_ok=True)
        self.log_path = os.path.join(dirpath, self.LOG_NAME)
        self.snapshot_path = os.path.join(dirpath, self.SNAPSHOT_NAME)
        self._fsync = fsync
        self._fh = None
        #: byte offset of the last cleanly-framed record (replay sets it;
        #: the first append truncates any torn tail beyond it)
        self._good_offset = 0
        self._replayed = False
        #: records currently in the journal tail (since the snapshot)
        self.pending_records = 0
        #: records appended over the journal's whole life
        self.lifetime_records = 0

    # -- replay ---------------------------------------------------------

    def replay(self) -> tuple[list[dict], ReplayStats]:
        """Read snapshot + tail back; tolerate a torn trailing record."""
        stats = ReplayStats()
        records: list[dict] = []
        if os.path.exists(self.snapshot_path):
            try:
                with open(self.snapshot_path, encoding="utf-8") as fh:
                    snap = json.load(fh)
            except (OSError, ValueError):
                snap = None  # torn/corrupt snapshot: fall back to the log
            if isinstance(snap, dict) and snap.get("v") == SNAPSHOT_VERSION:
                records.extend(snap.get("records", ()))
                stats.snapshot_records = len(records)
                stats.lifetime_records = int(snap.get("lifetime_records", 0))
        tail, good_offset, torn = self._read_log()
        records.extend(tail)
        stats.tail_records = len(tail)
        stats.torn_bytes = torn
        stats.lifetime_records += len(tail)
        self._good_offset = good_offset
        self._replayed = True
        self.pending_records = len(tail)
        self.lifetime_records = stats.lifetime_records
        return records, stats

    def _read_log(self) -> tuple[list[dict], int, int]:
        """Parse the record log; stop cleanly at a torn tail."""
        records: list[dict] = []
        good = 0
        torn = 0
        if not os.path.exists(self.log_path):
            return records, good, torn
        with open(self.log_path, "rb") as fh:
            data = fh.read()
        offset = 0
        total = len(data)
        while offset < total:
            if offset + _LEN.size > total:
                torn = total - offset
                break
            (length,) = _LEN.unpack_from(data, offset)
            end = offset + _LEN.size + length
            if end > total:
                torn = total - offset
                break
            try:
                records.append(json.loads(data[offset + _LEN.size : end]))
            except ValueError:
                # the length prefix framed garbage: a crash landed mid-
                # write in a way that kept the prefix intact.  Nothing
                # after it can be trusted to be aligned.
                torn = total - offset
                break
            offset = end
            good = offset
        return records, good, torn

    # -- appending ------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record (length prefix + JSON + fsync)."""
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        fh = self._open_for_append()
        fh.write(_LEN.pack(len(payload)) + payload)
        fh.flush()
        if self._fsync:
            os.fsync(fh.fileno())
        self._good_offset += _LEN.size + len(payload)
        self.pending_records += 1
        self.lifetime_records += 1

    def _open_for_append(self):
        if self._fh is None:
            if not self._replayed:
                self.replay()
            fh = open(self.log_path, "ab")
            if fh.tell() > self._good_offset:
                # drop the torn tail a crash left behind: appending past
                # it would hide every later record from the next replay
                fh.truncate(self._good_offset)
                fh.seek(self._good_offset)
            self._fh = fh
        return self._fh

    # -- compaction -----------------------------------------------------

    def compact(self, records: list[dict]) -> None:
        """Atomically snapshot ``records`` and reset the journal tail."""
        tmp = self.snapshot_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "v": SNAPSHOT_VERSION,
                    "lifetime_records": self.lifetime_records,
                    "records": records,
                },
                fh,
                separators=(",", ":"),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.snapshot_path)
        self._fsync_dir()
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.log_path, "wb")
        if self._fsync:
            os.fsync(self._fh.fileno())
        self._good_offset = 0
        self.pending_records = 0

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ControlPlaneJournal:
    """Domain layer: fold control-plane transitions, compact, replay."""

    def __init__(
        self, dirpath: str, snapshot_every: int = 1024, fsync: bool = True
    ) -> None:
        self.journal = Journal(dirpath, fsync=fsync)
        self.snapshot_every = max(8, snapshot_every)
        #: called after each automatic compaction with the snapshot size
        self.on_compact: Optional[Callable[[int], None]] = None
        self.meta: dict = {}
        self.declares: dict[str, dict] = {}
        self.quotas: dict[str, dict] = {}
        self.tenant_bytes: dict[str, int] = {}
        self.tenant_names: dict[str, set[str]] = {}
        self.sessions: dict[str, dict] = {}
        self.submits: dict[str, dict] = {}
        self.done: dict[str, dict] = {}
        self.failed: dict[str, dict] = {}
        #: last-known replica locations, name -> {worker: size} (hints)
        self.replica_hints: dict[str, dict[str, int]] = {}
        self.max_seq = 0
        self.max_session_id = 0
        records, stats = self.journal.replay()
        for rec in records:
            self._fold(rec)
        self.last_replay_stats = stats

    # -- state queries --------------------------------------------------

    @property
    def recovered(self) -> bool:
        """True when a prior manager life left durable state behind."""
        return bool(self.declares or self.submits or self.sessions)

    def pending_tasks(self) -> list[dict]:
        """Submit records with no terminal outcome, in seq order."""
        return sorted(
            (
                rec
                for tid, rec in self.submits.items()
                if tid not in self.done and tid not in self.failed
            ),
            key=lambda r: r["seq"],
        )

    def done_tasks(self) -> list[dict]:
        """Completion records joined to their submit specs, seq order."""
        out = []
        for tid, rec in self.done.items():
            sub = self.submits.get(tid)
            if sub is not None:
                out.append({**sub, "outputs_done": rec.get("outputs", [])})
        out.sort(key=lambda r: r["seq"])
        return out

    def known_workers(self) -> set[str]:
        """Workers named by replica hints: the rejoin expectation set."""
        return {w for holders in self.replica_hints.values() for w in holders}

    # -- recording ------------------------------------------------------

    def _record(self, rec: dict) -> None:
        self._fold(rec)
        self.journal.append(rec)
        if self.journal.pending_records >= self.snapshot_every:
            self.compact()
            if self.on_compact is not None:
                self.on_compact(self.journal.lifetime_records)

    def record_meta(self, **fields) -> None:
        self._record({"op": "meta", **fields})

    def record_declare(self, spec: dict) -> None:
        if spec["name"] in self.declares:
            return  # identical content re-declared: nothing new to learn
        self._record({"op": "declare", **spec})

    def record_quota(self, tenant: str, tasks, nbytes) -> None:
        self._record({"op": "quota", "tenant": tenant, "tasks": tasks, "bytes": nbytes})

    def record_tenant_bytes(self, tenant: str, n: int) -> None:
        self._record({"op": "tenant_bytes", "tenant": tenant, "n": n})

    def record_tenant_name(self, tenant: str, name: str) -> None:
        if name in self.tenant_names.get(tenant, ()):
            return
        self._record({"op": "tenant_name", "tenant": tenant, "name": name})

    def record_session(self, token: str, sid: str, tenant: str) -> None:
        self._record({"op": "session", "token": token, "sid": sid, "tenant": tenant})

    def record_session_closed(self, token: str) -> None:
        if token in self.sessions:
            self._record({"op": "session_closed", "token": token})

    def record_submit(
        self, task_id: str, seq: int, tenant: str, spec: dict, session: Optional[str]
    ) -> None:
        self._record(
            {
                "op": "submit",
                "id": task_id,
                "seq": seq,
                "tenant": tenant,
                "session": session,
                "spec": spec,
            }
        )

    def record_done(self, task_id: str, outputs: list) -> None:
        self._record({"op": "done", "id": task_id, "outputs": outputs})

    def record_failed(self, task_id: str, reason: str) -> None:
        self._record({"op": "failed", "id": task_id, "reason": reason})

    def record_replica(self, worker_id: str, name: str, size: int) -> None:
        self._record({"op": "replica", "worker": worker_id, "name": name, "size": size})

    def record_replica_gone(self, worker_id: str, name: str) -> None:
        if worker_id in self.replica_hints.get(name, ()):
            self._record({"op": "replica_gone", "worker": worker_id, "name": name})

    # -- folding --------------------------------------------------------

    def _fold(self, rec: dict) -> None:
        op = rec.get("op")
        if op == "meta":
            self.meta.update({k: v for k, v in rec.items() if k != "op"})
        elif op == "declare":
            self.declares.setdefault(rec["name"], rec)
        elif op == "quota":
            self.quotas[rec["tenant"]] = rec
        elif op == "tenant_bytes":
            if "total" in rec:
                self.tenant_bytes[rec["tenant"]] = rec["total"]
            else:
                self.tenant_bytes[rec["tenant"]] = (
                    self.tenant_bytes.get(rec["tenant"], 0) + rec["n"]
                )
        elif op == "tenant_name":
            self.tenant_names.setdefault(rec["tenant"], set()).add(rec["name"])
        elif op == "session":
            self.sessions[rec["token"]] = rec
            sid = rec.get("sid", "")
            if sid.startswith("C") and sid[1:].isdigit():
                self.max_session_id = max(self.max_session_id, int(sid[1:]))
        elif op == "session_closed":
            self.sessions.pop(rec["token"], None)
        elif op == "submit":
            self.submits[rec["id"]] = rec
            self.max_seq = max(self.max_seq, int(rec["seq"]))
        elif op == "done":
            self.done[rec["id"]] = rec
        elif op == "failed":
            self.failed[rec["id"]] = rec
        elif op == "replica":
            self.replica_hints.setdefault(rec["name"], {})[rec["worker"]] = rec["size"]
        elif op == "replica_gone":
            holders = self.replica_hints.get(rec["name"])
            if holders is not None:
                holders.pop(rec["worker"], None)
                if not holders:
                    del self.replica_hints[rec["name"]]
        # unknown ops from a newer writer are skipped, not fatal

    # -- compaction -----------------------------------------------------

    def compact(self) -> None:
        """Snapshot the folded state as a minimal equivalent record list.

        Drops everything replay does not need verbatim: per-grant
        replica records collapse to one latest-location record per
        object, superseded quota records to the last, incremental
        tenant-byte charges to totals, and closed sessions vanish.
        Task submit specs are kept even for completed tasks — lineage
        regeneration after a restart may need to re-execute them.
        """
        recs: list[dict] = []
        if self.meta:
            recs.append({"op": "meta", **self.meta})
        recs.extend(self.declares.values())
        recs.extend(self.quotas.values())
        for tenant, total in self.tenant_bytes.items():
            recs.append({"op": "tenant_bytes", "tenant": tenant, "total": total})
        for tenant, names in self.tenant_names.items():
            for name in sorted(names):
                recs.append({"op": "tenant_name", "tenant": tenant, "name": name})
        recs.extend(self.sessions.values())
        recs.extend(sorted(self.submits.values(), key=lambda r: r["seq"]))
        recs.extend(self.done.values())
        recs.extend(self.failed.values())
        for name, holders in self.replica_hints.items():
            for worker, size in holders.items():
                recs.append(
                    {"op": "replica", "worker": worker, "name": name, "size": size}
                )
        self.journal.compact(recs)

    def close(self) -> None:
        self.journal.close()


# ----------------------------------------------------------------------
# serializers: Files and Tasks <-> journal records
# ----------------------------------------------------------------------


def file_spec(f: File, source: str, size: int, tenant: Optional[str] = None) -> dict:
    """Serialize one declared file into a journal record body."""
    spec: dict = {
        "name": f.cache_name,
        "kind": f.kind,
        "level": int(f.cache_level),
        "size": size,
        "source": source,
    }
    if tenant is not None:
        spec["tenant"] = tenant
    if isinstance(f, BufferFile):
        if len(f.data) <= MAX_INLINE_BYTES:
            spec["data"] = base64.b64encode(f.data).decode("ascii")
    elif isinstance(f, URLFile):
        spec["url"] = f.url
    elif isinstance(f, LocalFile):
        spec["path"] = f.path
    elif isinstance(f, TempFile):
        spec["producer"] = f.producer_task_id
    for flag in ("bring_back", "keep_at_worker"):
        if getattr(f, flag, None):
            spec[flag] = True
    return spec


def restore_file(spec: dict) -> tuple[File, str, int]:
    """Rebuild a file handle (plus source and size) from its record.

    Sources that cannot be rematerialized by a restarted manager — a
    buffer whose bytes were too large to inline, a mini-task whose
    wrapped task is not journaled — come back with ``@none`` so the
    control plane treats them like produced data: live replicas back
    them, or lineage regeneration / terminal failure applies.
    """
    from repro.core.control_plane import MINITASK_SOURCE, NO_SOURCE

    level = CacheLevel(spec.get("level", int(CacheLevel.WORKFLOW)))
    kind = spec.get("kind", "file")
    source = spec.get("source", NO_SOURCE)
    f: File
    if kind == "buffer":
        data = spec.get("data")
        if data is not None:
            f = BufferFile(base64.b64decode(data), level)
        else:
            f = File(level)
            source = NO_SOURCE  # bytes not retained: cannot re-push
    elif kind == "url":
        f = URLFile(spec.get("url", ""), level)
    elif kind == "local":
        f = LocalFile(spec.get("path", ""), level)
    elif kind == "temp":
        f = TempFile(level)
        f.producer_task_id = spec.get("producer")
    else:
        f = File(level)
        if source == MINITASK_SOURCE:
            source = NO_SOURCE  # the wrapped mini task is not replayable
    f.cache_name = spec["name"]
    f.size = spec.get("size", 0)
    for flag in ("bring_back", "keep_at_worker"):
        if spec.get(flag):
            setattr(f, flag, True)
    return f, source, int(spec.get("size", 0) or 0)


def task_spec(task: Task) -> dict:
    """Serialize the runtime-agnostic parts of a submitted task."""
    from repro.core.library import FunctionCall

    if isinstance(task, FunctionCall):
        kind = "call"
    elif isinstance(task, PythonTask):
        kind = "python"
    else:
        kind = "command"
    r = task.resources
    spec: dict = {
        "kind": kind,
        "command": task.command,
        "category": task.category,
        "priority": task.priority,
        "deterministic": task.deterministic,
        "merkle": task.merkle,
        "max_retries": task.max_retries,
        "env": dict(task.env),
        "resources": {
            "cores": r.cores,
            "memory": r.memory,
            "disk": r.disk,
            "gpus": r.gpus,
        },
        "inputs": [[sb, f.cache_name] for sb, f in task.inputs],
        "outputs": [[sb, f.cache_name] for sb, f in task.outputs],
    }
    duration = getattr(task, "sim_duration", None)
    if duration is not None:
        spec["sim"] = {
            "duration": duration,
            "output_sizes": dict(getattr(task, "sim_output_sizes", {})),
        }
    return spec


def build_task(spec: dict, registry: FileRegistry) -> Optional[Task]:
    """Rebuild a re-executable task from its submit record, or None.

    Serverless calls are not restorable (their library payloads are
    runtime state, not journal state); neither is a task referencing a
    file the registry no longer knows.  Callers treat None as lost
    work: pending tasks fail cleanly, completed ones simply cannot be
    lineage-regenerated.
    """
    if spec.get("kind") == "call":
        return None
    task = Task(spec["command"])
    task.category = spec.get("category", "default")
    task.priority = spec.get("priority", 0.0)
    task.deterministic = bool(spec.get("deterministic", False))
    task.merkle = spec.get("merkle")
    task.max_retries = int(spec.get("max_retries", 1))
    task.env = dict(spec.get("env", {}))
    res = spec.get("resources", {})
    task.resources = Resources(
        cores=res.get("cores", 1),
        memory=res.get("memory", 0),
        disk=res.get("disk", 0),
        gpus=res.get("gpus", 0),
    )
    task.resources_explicit = True
    try:
        for sandbox, name in spec.get("inputs", ()):
            task.add_input(registry.by_name(name), sandbox)
        for sandbox, name in spec.get("outputs", ()):
            task.add_output(registry.by_name(name), sandbox)
    except KeyError:
        return None
    sim = spec.get("sim")
    if sim is not None:
        task.sim_duration = float(sim.get("duration", 0.0))  # type: ignore[attr-defined]
        task.sim_output_sizes = dict(sim.get("output_sizes", {}))  # type: ignore[attr-defined]
    return task
