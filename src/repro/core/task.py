"""Task declarations: the execution half of a TaskVine workflow.

A plain :class:`Task` is a Unix command line executed in a private
sandbox (paper §2.4).  Every file it consumes or produces must be
explicitly attached with :meth:`Task.add_input` / :meth:`Task.add_output`
under the user-visible name the command expects; the worker links cache
objects into the sandbox under those names.

:class:`PythonTask` specializes a task to run a serialized Python
function; :class:`MiniTask` wraps a task as a file-producing
transformation (see :func:`repro.core.manager.Manager.declare_minitask`);
serverless types live in :mod:`repro.core.library`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.files import File, TempFile
from repro.core.resources import Resources

__all__ = ["TaskState", "TaskResult", "Task", "PythonTask", "MiniTask"]


class TaskState(enum.Enum):
    """Lifecycle of a task as tracked by the manager."""

    #: constructed but not yet submitted to a manager
    CREATED = "created"
    #: submitted; waiting for inputs to be schedulable
    READY = "ready"
    #: assigned to a worker; inputs being staged
    DISPATCHED = "dispatched"
    #: executing in a sandbox at the worker
    RUNNING = "running"
    #: finished at the worker; outputs awaiting retrieval/registration
    WAITING_RETRIEVAL = "waiting_retrieval"
    #: complete, outputs accounted for
    DONE = "done"
    #: terminally failed (after any retries)
    FAILED = "failed"
    #: cancelled by the application
    CANCELLED = "cancelled"


#: task states from which no further transition occurs
TERMINAL_STATES = frozenset({TaskState.DONE, TaskState.FAILED, TaskState.CANCELLED})


@dataclass
class TaskResult:
    """Outcome of one task execution attempt."""

    exit_code: int = -1
    #: captured standard output (command tasks) or repr of return value
    output: str = ""
    #: error category when the task did not complete normally
    failure: Optional[str] = None
    #: resources actually observed during execution (if monitored)
    measured: Optional[Resources] = None
    #: wall-clock seconds spent executing (excludes staging)
    execution_time: float = 0.0
    #: seconds spent staging inputs before execution began
    staging_time: float = 0.0
    #: resource dimensions that exceeded the declared allocation
    exceeded: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True if the attempt completed with a zero exit code."""
        return self.exit_code == 0 and self.failure is None


class Task:
    """A unit of execution bound to explicit inputs and outputs.

    Mutation (adding files, setting resources) is only legal before
    submission; the manager owns the task afterwards.

    Identity is assigned *at submission* by the owning manager's
    control plane: ``task_id`` (``t<N>``) and the monotonic dispatch
    sequence number ``seq`` both come from a per-manager counter, so
    two managers in one process issue identical id streams — the
    property the fixed-seed chaos-replay tests depend on.  Before
    submission ``task_id`` is None and ``seq`` is 0.
    """

    def __init__(self, command: str) -> None:
        self.task_id: Optional[str] = None
        #: monotonic FIFO sequence assigned at submit; the scheduler
        #: orders ready tasks by ``(-priority, seq)``
        self.seq: int = 0
        self.command = command
        #: ``(sandbox_name, File)`` pairs, in attachment order
        self.inputs: list[tuple[str, File]] = []
        self.outputs: list[tuple[str, File]] = []
        self.env: dict[str, str] = {}
        self.resources = Resources(cores=1)
        #: False until the application sizes the task explicitly; lets
        #: the manager's category learning pick first allocations
        self.resources_explicit = False
        #: times the manager may re-execute after a resource-exceeded
        #: or worker-loss failure (paper §2.1 retry policy)
        self.max_retries: int = 1
        self.retries_used: int = 0
        #: multiplier applied to the allocation on a resource-exceeded retry
        self.retry_resource_growth: float = 2.0
        self.priority: float = 0.0
        #: free-form label grouping similar tasks in traces
        self.category: str = "default"
        #: owning tenant in service mode; quota accounting and the
        #: fair-share ready queue key off this ("default" = single-tenant)
        self.tenant: str = "default"
        #: the application's assertion that this task is a pure function
        #: of its declared inputs — the gate for result memoization.
        #: Impure tasks (clocks, randomness, network) must stay False.
        self.deterministic: bool = False
        #: task-spec Merkle hash, stamped at submit for memo-eligible
        #: tasks (see :func:`repro.core.naming.task_merkle`)
        self.merkle: Optional[str] = None
        self.state = TaskState.CREATED
        self.result: Optional[TaskResult] = None
        #: worker id the task is (or was last) placed on
        self.worker_id: Optional[str] = None
        #: earliest re-placement time after a requeue backoff (0 = now)
        self.not_before: float = 0.0
        #: virtual/wall timestamps filled in by the runtimes for traces
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- declaration-time mutators ------------------------------------

    def _check_mutable(self) -> None:
        if self.state != TaskState.CREATED:
            raise RuntimeError(f"task {self.task_id} already submitted")

    def add_input(self, f: File, sandbox_name: str) -> "Task":
        """Attach ``f`` to appear in the sandbox as ``sandbox_name``."""
        self._check_mutable()
        if any(name == sandbox_name for name, _ in self.inputs):
            raise ValueError(f"duplicate input name {sandbox_name!r}")
        self.inputs.append((sandbox_name, f))
        return self

    def add_output(self, f: File, sandbox_name: str) -> "Task":
        """Declare that the command produces ``sandbox_name``; its content
        becomes file ``f`` after completion."""
        self._check_mutable()
        if any(name == sandbox_name for name, _ in self.outputs):
            raise ValueError(f"duplicate output name {sandbox_name!r}")
        if isinstance(f, TempFile):
            f.producer_task_id = self.task_id
        self.outputs.append((sandbox_name, f))
        return self

    def set_env(self, key: str, value: str) -> "Task":
        """Set an environment variable for the task's execution."""
        self._check_mutable()
        self.env[key] = str(value)
        return self

    #: alias matching the paper's Fig. 3 listing (``t.add_env(...)``)
    add_env = set_env

    def set_resources(self, resources: Resources) -> "Task":
        """Declare the full resource allocation for this task."""
        self._check_mutable()
        self.resources = resources
        self.resources_explicit = True
        return self

    def set_cores(self, cores: float) -> "Task":
        """Convenience: adjust only the cores dimension."""
        self._check_mutable()
        self.resources = Resources(
            cores=cores,
            memory=self.resources.memory,
            disk=self.resources.disk,
            gpus=self.resources.gpus,
        )
        self.resources_explicit = True
        return self

    def set_category(self, category: str) -> "Task":
        """Label this task for grouping in traces and figures."""
        self._check_mutable()
        self.category = category
        return self

    def set_priority(self, priority: float) -> "Task":
        """Higher priority tasks are considered for dispatch first."""
        self._check_mutable()
        self.priority = priority
        return self

    def set_tenant(self, tenant: str) -> "Task":
        """Attribute this task to a tenant for fair-share and quotas."""
        self._check_mutable()
        self.tenant = tenant
        return self

    def set_deterministic(self, flag: bool = True) -> "Task":
        """Assert the task is a pure function of its declared inputs.

        Only deterministic tasks are eligible for result memoization:
        an identical (command, input-content, resources, env) submission
        may then complete from a recorded result without executing.
        """
        self._check_mutable()
        self.deterministic = bool(flag)
        return self

    # -- views ---------------------------------------------------------

    def input_files(self) -> list[File]:
        """The attached input file handles, in attachment order."""
        return [f for _, f in self.inputs]

    def output_files(self) -> list[File]:
        """The attached output file handles, in attachment order."""
        return [f for _, f in self.outputs]

    def input_cache_names(self) -> list[str]:
        """Cache names of all inputs (requires naming to have run)."""
        names = []
        for _, f in self.inputs:
            if f.cache_name is None:
                raise RuntimeError(
                    f"input {f.file_id} of {self.task_id or self.command!r} unnamed"
                )
            names.append(f.cache_name)
        return names

    @property
    def is_done(self) -> bool:
        """True once the task reached a terminal state."""
        return self.state in TERMINAL_STATES

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tid = self.task_id or "<unsubmitted>"
        return f"<Task {tid} {self.state.value} {self.command[:40]!r}>"


class PythonTask(Task):
    """A task that executes a Python function at the worker.

    The function, its arguments, and enough of its globals/closure are
    serialized (:mod:`repro.protocol.serialization`) and shipped as an
    input buffer; a runner module deserializes and invokes it, writing
    the pickled return value to an output file which the manager
    retrieves.  Use :meth:`output` after completion for the value.
    """

    #: sandbox names used by the runner protocol
    PAYLOAD_NAME = "pytask_payload.bin"
    RESULT_NAME = "pytask_result.bin"

    def __init__(self, func: Callable, *args: Any, **kwargs: Any) -> None:
        import sys

        super().__init__(
            f"{sys.executable} -m repro.worker.pytask_runner "
            f"{self.PAYLOAD_NAME} {self.RESULT_NAME}"
        )
        self.func = func
        self.args = args
        self.kwargs = kwargs
        self.category = "python"
        #: deserialized return value, set on retrieval
        self._output: Any = None
        self._output_set = False

    def set_output_value(self, value: Any) -> None:
        """Record the function's return value (called by the manager)."""
        self._output = value
        self._output_set = True

    def output(self) -> Any:
        """Return value of the function; raises if not yet complete."""
        if not self._output_set:
            raise RuntimeError(f"python task {self.task_id} has no output yet")
        return self._output


class MiniTask(Task):
    """A task executed on demand at a worker to materialize a file.

    A mini task has exactly one logical output — the file object that
    :func:`repro.core.manager.Manager.declare_minitask` wraps around it.
    Its execution is implicit: whenever a worker needs the produced
    file, the worker runs the mini task locally (inputs fetched first),
    and the result enters the cache under the spec-hash name.
    """

    def __init__(self, command: str) -> None:
        super().__init__(command)
        self.category = "mini"
        #: the sandbox path the command writes its product to
        self.output_name: str = "output"

    def set_output_name(self, name: str) -> "MiniTask":
        """Name the sandbox path the command writes its product to."""
        self._check_mutable()
        self.output_name = name
        return self
