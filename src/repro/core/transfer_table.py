"""Current Transfer Table: supervision of in-flight data movement.

Every transfer the manager schedules is recorded here with a UUID that
the worker echoes back in its ``cache-update`` message (paper §3.3).
The table lets the scheduler observe how many concurrent connections
each *source* (a worker, the manager itself, or a remote URL host) is
serving, which is what enables the per-source concurrency limits that
prevent network hotspots (paper Fig. 11).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

__all__ = ["Transfer", "TransferTable", "MANAGER_SOURCE"]

#: pseudo-source id for transfers served by the manager process
MANAGER_SOURCE = "@manager"

_transfer_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Transfer:
    """One scheduled transfer of a cache object to a worker."""

    transfer_id: str
    cache_name: str
    #: worker id, ``MANAGER_SOURCE``, or a URL host key
    source: str
    dest_worker: str
    size: int
    started: float


class TransferTable:
    """Ledger of in-flight transfers with per-source concurrency limits.

    ``worker_limit`` applies to each worker acting as a source and
    ``source_limit`` to each "fixed" source (manager or URL host); both
    are configurable by the user (paper §3.3).  ``None`` disables the
    corresponding limit, which is exactly the unsupervised mode of
    Fig. 11b.
    """

    def __init__(
        self,
        worker_limit: Optional[int] = 3,
        source_limit: Optional[int] = 100,
    ) -> None:
        self.worker_limit = worker_limit
        self.source_limit = source_limit
        self._by_id: dict[str, Transfer] = {}
        self._load_by_source: dict[str, int] = {}
        self._inbound: dict[tuple[str, str], str] = {}

    # -- limits ---------------------------------------------------------

    def limit_for(self, source: str) -> Optional[int]:
        """The concurrency limit that applies to ``source``."""
        if source == MANAGER_SOURCE or source.startswith("url:"):
            return self.source_limit
        return self.worker_limit

    def source_load(self, source: str) -> int:
        """Transfers currently being served by ``source``."""
        return self._load_by_source.get(source, 0)

    def source_available(self, source: str) -> bool:
        """True if ``source`` may serve one more transfer under its limit."""
        limit = self.limit_for(source)
        return limit is None or self.source_load(source) < limit

    # -- lifecycle --------------------------------------------------------

    def begin(
        self,
        cache_name: str,
        source: str,
        dest_worker: str,
        size: int,
        now: float = 0.0,
    ) -> Transfer:
        """Record a newly scheduled transfer and return its record.

        Raises ``RuntimeError`` if an identical (file, destination)
        transfer is already in flight — the scheduler must never request
        the same object twice for one worker.
        """
        key = (cache_name, dest_worker)
        if key in self._inbound:
            raise RuntimeError(
                f"duplicate transfer of {cache_name} to {dest_worker} already in flight"
            )
        t = Transfer(
            transfer_id=f"x{next(_transfer_ids)}",
            cache_name=cache_name,
            source=source,
            dest_worker=dest_worker,
            size=size,
            started=now,
        )
        self._by_id[t.transfer_id] = t
        self._load_by_source[source] = self._load_by_source.get(source, 0) + 1
        self._inbound[key] = t.transfer_id
        return t

    def complete(self, transfer_id: str) -> Transfer:
        """Remove a finished (or failed) transfer and return its record."""
        t = self._by_id.pop(transfer_id)
        load = self._load_by_source.get(t.source, 0) - 1
        if load > 0:
            self._load_by_source[t.source] = load
        else:
            self._load_by_source.pop(t.source, None)
        self._inbound.pop((t.cache_name, t.dest_worker), None)
        return t

    def cancel_for_worker(self, worker_id: str) -> list[Transfer]:
        """Drop every transfer to or from a departed worker."""
        dropped = [
            t
            for t in self._by_id.values()
            if t.dest_worker == worker_id or t.source == worker_id
        ]
        for t in dropped:
            self.complete(t.transfer_id)
        return dropped

    # -- queries -------------------------------------------------------

    def in_flight(self, cache_name: str, dest_worker: str) -> bool:
        """True if this object is already on its way to this worker."""
        return (cache_name, dest_worker) in self._inbound

    def get(self, transfer_id: str) -> Transfer:
        """Look up an in-flight transfer (KeyError if unknown)."""
        return self._by_id[transfer_id]

    def active(self) -> list[Transfer]:
        """Snapshot of all in-flight transfers."""
        return list(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)
