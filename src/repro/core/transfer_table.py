"""Current Transfer Table: supervision of in-flight data movement.

Every transfer the manager schedules is recorded here with an id that
the worker echoes back in its ``cache-update`` message (paper §3.3).
The table lets the scheduler observe how many concurrent connections
each *source* (a worker, the manager itself, or a remote URL host) is
serving, which is what enables the per-source concurrency limits that
prevent network hotspots (paper Fig. 11).

Saturation is tracked *incrementally*: a source enters ``_saturated``
when ``begin`` takes its last slot and leaves it when ``complete``
frees one, so :meth:`source_available` and
:meth:`sources_with_capacity` are set lookups — the transfer-planning
hot path never recomputes ``limit_for``/``source_load`` per input.

Transfer ids come from a counter owned by *this* table (not a module
global): every manager in a process sees the same ``x1, x2, …``
stream, which the fixed-seed bit-for-bit chaos-replay guarantee
depends on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["Transfer", "TransferTable", "MANAGER_SOURCE"]

#: pseudo-source id for transfers served by the manager process
MANAGER_SOURCE = "@manager"


@dataclass(frozen=True, slots=True)
class Transfer:
    """One scheduled transfer of a cache object to a worker."""

    transfer_id: str
    cache_name: str
    #: worker id, ``MANAGER_SOURCE``, or a URL host key
    source: str
    dest_worker: str
    size: int
    started: float


class TransferTable:
    """Ledger of in-flight transfers with per-source concurrency limits.

    ``worker_limit`` applies to each worker acting as a source and
    ``source_limit`` to each "fixed" source (manager or URL host); both
    are configurable by the user (paper §3.3).  ``None`` disables the
    corresponding limit, which is exactly the unsupervised mode of
    Fig. 11b.
    """

    def __init__(
        self,
        worker_limit: Optional[int] = 3,
        source_limit: Optional[int] = 100,
    ) -> None:
        self._worker_limit = worker_limit
        self._source_limit = source_limit
        self._by_id: dict[str, Transfer] = {}
        self._load_by_source: dict[str, int] = {}
        self._inbound: dict[tuple[str, str], str] = {}
        #: sources currently at (or over) their concurrency limit
        self._saturated: set[str] = set()
        #: monotonic count of completions — consumers (the control
        #: plane's staging replanner) watch it to learn "capacity may
        #: have freed" without polling every source
        self.completed_count: int = 0
        self._ids = itertools.count(1)

    # -- limits ---------------------------------------------------------

    @property
    def worker_limit(self) -> Optional[int]:
        """Concurrency limit for workers acting as transfer sources."""
        return self._worker_limit

    @worker_limit.setter
    def worker_limit(self, value: Optional[int]) -> None:
        self._worker_limit = value
        self._resaturate()

    @property
    def source_limit(self) -> Optional[int]:
        """Concurrency limit for fixed sources (manager, URL hosts)."""
        return self._source_limit

    @source_limit.setter
    def source_limit(self, value: Optional[int]) -> None:
        self._source_limit = value
        self._resaturate()

    def _resaturate(self) -> None:
        """Rebuild the saturation set after a limit change (rare)."""
        self._saturated = {
            s for s in self._load_by_source if not self._computed_available(s)
        }

    def _any_zero_limit(self) -> bool:
        """True when some limit is ≤ 0 (sources saturated at zero load)."""
        return (self._worker_limit is not None and self._worker_limit <= 0) or (
            self._source_limit is not None and self._source_limit <= 0
        )

    def _computed_available(self, source: str) -> bool:
        limit = self.limit_for(source)
        return limit is None or self._load_by_source.get(source, 0) < limit

    def limit_for(self, source: str) -> Optional[int]:
        """The concurrency limit that applies to ``source``."""
        if source == MANAGER_SOURCE or source.startswith("url:"):
            return self._source_limit
        return self._worker_limit

    def source_load(self, source: str) -> int:
        """Transfers currently being served by ``source``."""
        return self._load_by_source.get(source, 0)

    def source_available(self, source: str) -> bool:
        """True if ``source`` may serve one more transfer — O(1).

        A ≤0 limit saturates its sources even at zero load (they never
        appear in the load-driven set), so that degenerate config takes
        the arithmetic path; every normal config is one set lookup.
        """
        if source in self._saturated:
            return False
        if self._any_zero_limit():
            return self._computed_available(source)
        return True

    def sources_with_capacity(self, sources: Iterable[str]) -> list[str]:
        """Filter ``sources`` down to those under their limit — O(1) each."""
        if self._any_zero_limit():
            return [s for s in sources if self._computed_available(s)]
        sat = self._saturated
        return [s for s in sources if s not in sat]

    # -- lifecycle --------------------------------------------------------

    def begin(
        self,
        cache_name: str,
        source: str,
        dest_worker: str,
        size: int,
        now: float = 0.0,
    ) -> Transfer:
        """Record a newly scheduled transfer and return its record.

        Raises ``RuntimeError`` if an identical (file, destination)
        transfer is already in flight — the scheduler must never request
        the same object twice for one worker.
        """
        key = (cache_name, dest_worker)
        if key in self._inbound:
            raise RuntimeError(
                f"duplicate transfer of {cache_name} to {dest_worker} already in flight"
            )
        t = Transfer(
            transfer_id=f"x{next(self._ids)}",
            cache_name=cache_name,
            source=source,
            dest_worker=dest_worker,
            size=size,
            started=now,
        )
        self._by_id[t.transfer_id] = t
        self._load_by_source[source] = self._load_by_source.get(source, 0) + 1
        if not self._computed_available(source):
            self._saturated.add(source)
        self._inbound[key] = t.transfer_id
        return t

    def complete(self, transfer_id: str) -> Transfer:
        """Remove a finished (or failed) transfer and return its record."""
        t = self._by_id.pop(transfer_id)
        load = self._load_by_source.get(t.source, 0) - 1
        if load > 0:
            self._load_by_source[t.source] = load
        else:
            self._load_by_source.pop(t.source, None)
        if t.source in self._saturated and self._computed_available(t.source):
            self._saturated.discard(t.source)
        self._inbound.pop((t.cache_name, t.dest_worker), None)
        self.completed_count += 1
        return t

    def cancel_for_worker(self, worker_id: str) -> list[Transfer]:
        """Drop every transfer to or from a departed worker."""
        dropped = [
            t
            for t in self._by_id.values()
            if t.dest_worker == worker_id or t.source == worker_id
        ]
        for t in dropped:
            self.complete(t.transfer_id)
        return dropped

    # -- queries -------------------------------------------------------

    def in_flight(self, cache_name: str, dest_worker: str) -> bool:
        """True if this object is already on its way to this worker."""
        return (cache_name, dest_worker) in self._inbound

    def get(self, transfer_id: str) -> Transfer:
        """Look up an in-flight transfer (KeyError if unknown)."""
        return self._by_id[transfer_id]

    def active(self) -> list[Transfer]:
        """Snapshot of all in-flight transfers."""
        return list(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)
