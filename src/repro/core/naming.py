"""Cache-name generation: content-addressable storage naming (paper §3.2).

Every object in a worker cache has a unique name assigned by the
manager.  The *scope* of the name follows the file's declared lifetime:

* ``TASK`` / ``WORKFLOW`` files are visible only within one workflow
  run, so the manager generates a random per-run name and guarantees no
  collision within the run.  They are deleted at workflow end, so a
  later run choosing the same random name cannot observe stale data.
* ``WORKER`` files outlive the workflow and may be shared between
  managers, so they need perpetually-unique *content-addressable*
  names, computed as follows:

  - plain file: MD5 of its content;
  - directory: a Merkle tree — each file hashed as normal, each
    directory hashed as a small document listing its entries' names,
    types, sizes, and child hashes (paper Fig. 7);
  - buffer: MD5 of the buffer content (always cheap, always applied);
  - URL: a checksum from the response headers if the server provides
    one, else the hash of (URL, ETag, Last-Modified) — these headers
    are guaranteed to change when content changes, so stale reuse is
    impossible — else download-and-hash as a last resort;
  - mini-task and temp files: the Merkle hash of the *producing task
    specification* (command, environment, resources, and input cache
    names, recursively), since their content is unknown before they run.
"""

from __future__ import annotations

import json
import os
import random
import uuid
from typing import Callable, Mapping, Optional, Sequence

from repro.core.files import (
    BufferFile,
    CacheLevel,
    File,
    LocalFile,
    MiniTaskFile,
    TempFile,
    URLFile,
)
from repro.util.hashing import hash_bytes, hash_file

__all__ = [
    "directory_merkle",
    "local_cache_name",
    "buffer_cache_name",
    "url_cache_name",
    "task_spec_hash",
    "task_merkle",
    "Namer",
]

#: header keys (lower-case) that carry a usable content checksum
_CHECKSUM_HEADERS = ("content-md5", "x-checksum-md5", "x-checksum-sha1")


def directory_merkle(path: str | os.PathLike) -> str:
    """Hash a directory tree into a single digest (paper Fig. 7).

    Each regular file contributes its content hash; each directory is
    serialized as a JSON document of ``(entry name, type, size, child
    hash)`` rows in sorted order — so the result is independent of
    filesystem iteration order but sensitive to any rename, content
    change, or size change anywhere in the tree.  Symlinks hash their
    target path rather than following it, mirroring how they are
    transferred; an empty directory hashes its (empty) document, so it
    still changes the parent's hash; non-UTF-8 entry names and symlink
    targets go through ``os.fsdecode``/``os.fsencode`` (surrogateescape
    round-trips the raw bytes); sockets, FIFOs, and devices hash as
    bare ``"other"`` rows rather than crashing the walk.
    """
    entries = []
    with os.scandir(path) as it:
        # DirEntry names are surrogateescape-decoded str on POSIX, so
        # sorting by name is deterministic even for non-UTF-8 entries,
        # and json's ensure_ascii escaping keeps the document encodable
        for entry in sorted(it, key=lambda e: e.name):
            if entry.is_symlink():
                child = hash_bytes(os.fsencode(os.readlink(entry.path)))
                entries.append([entry.name, "link", 0, child])
            elif entry.is_dir():
                child = directory_merkle(entry.path)
                entries.append([entry.name, "dir", 0, child])
            elif entry.is_file():
                st = entry.stat()
                child = hash_file(entry.path)
                entries.append([entry.name, "file", st.st_size, child])
            else:
                # socket / fifo / device: no content to transfer; the
                # row still records its existence and name
                entries.append([entry.name, "other", 0, ""])
    document = json.dumps(entries, separators=(",", ":")).encode()
    return hash_bytes(document)


def local_cache_name(path: str | os.PathLike) -> str:
    """Content-addressable name for a local file or directory."""
    if os.path.isdir(path):
        return f"dir-md5-{directory_merkle(path)}"
    return f"file-md5-{hash_file(path)}"


def buffer_cache_name(data: bytes) -> str:
    """Content-addressable name for an in-memory buffer."""
    return f"buffer-md5-{hash_bytes(data)}"


def url_cache_name(
    url: str,
    headers: Optional[Mapping[str, str]] = None,
    download: Optional[Callable[[str], bytes]] = None,
) -> str:
    """Derive a strong cache name for a remote URL (paper §3.2).

    Preference order: a checksum header if the archive offers one; then
    a hash of URL + ETag + Last-Modified (not content-derived, but these
    change whenever the content does, so staleness is impossible); and
    only as a last resort a full ``download`` and content hash.

    Raises ``ValueError`` if no headers identify the object and no
    ``download`` callback was supplied.
    """
    hdrs = {k.lower(): v for k, v in (headers or {}).items()}
    for key in _CHECKSUM_HEADERS:
        if key in hdrs:
            return f"url-sum-{hash_bytes(hdrs[key].encode())}"
    etag = hdrs.get("etag")
    modified = hdrs.get("last-modified")
    if etag or modified:
        doc = json.dumps([url, etag, modified], separators=(",", ":")).encode()
        return f"url-meta-{hash_bytes(doc)}"
    if download is not None:
        return f"url-md5-{hash_bytes(download(url))}"
    raise ValueError(
        f"cannot name url {url!r}: no checksum/etag/last-modified header "
        "and no download fallback provided"
    )


def task_spec_hash(
    command: str,
    input_names: Sequence[tuple[str, str]],
    resources: Optional[Mapping] = None,
    env: Optional[Mapping[str, str]] = None,
) -> str:
    """Merkle hash of a task specification (paper §3.2, MiniTask naming).

    ``input_names`` is a sequence of ``(remote_name, cache_name)`` pairs:
    the cache names embed the hashes of the inputs, so the hash is
    recursive through arbitrarily deep mini-task chains.  Input order
    does not matter; the mapping of sandbox name to content does.
    """
    document = json.dumps(
        {
            "command": command,
            "inputs": sorted(list(p) for p in input_names),
            "resources": dict(resources or {}),
            "env": sorted((env or {}).items()),
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode()
    return hash_bytes(document)


def task_merkle(task) -> str:
    """Merkle hash of a *full task recipe*, for any task kind (§3.2).

    Where :func:`task_spec_hash` names a single MiniTask/TempFile
    product, this generalizes the idea to whole submitted tasks so
    results can be memoized: two tasks with equal merkles are the same
    computation over the same content.  The hash covers the task kind,
    its command (or invocation identity), the ``(sandbox, cache_name)``
    mapping of every input — cache names embed content hashes, so the
    merkle is recursive through lineage — the output sandbox names,
    resources, and environment.  Inputs must already be named.

    Kind-specific canonicalization:

    * ``PythonTask`` — the literal command embeds ``sys.executable``,
      which is host-specific noise; the serialized function + arguments
      ride the content-hashed payload *input*, so a fixed token stands
      in for the command.
    * ``FunctionCall`` — no command runs; the library name, function
      name, and portably-serialized arguments are the identity.
    * ``MiniTask`` / plain ``Task`` — the command line as declared.
    """
    from repro.core.library import FunctionCall
    from repro.core.task import MiniTask, PythonTask

    input_names = []
    for remote_name, f in task.inputs:
        if f.cache_name is None:
            raise RuntimeError(
                f"input {f.file_id} of {task.task_id or task.command!r} unnamed"
            )
        input_names.append([remote_name, f.cache_name])
    if isinstance(task, PythonTask):
        kind, command = "python", "@pytask"
    elif isinstance(task, FunctionCall):
        # remote submissions carry an opaque pre-serialized argument
        # blob the manager never unpickles; its bytes are the identity
        if getattr(task, "args_blob", None) is not None:
            payload = task.args_blob
        else:
            from repro.protocol import serialization as ser

            # plain dumps, not dumps_portable: the portable envelope
            # embeds the sender's sys.path — host noise, not identity
            payload = ser.dumps(
                {"args": list(task.args), "kwargs": dict(task.kwargs)}
            )
        kind = "call"
        command = (
            f"{task.library_name}.{task.function_name}:{hash_bytes(payload)}"
        )
    elif isinstance(task, MiniTask):
        kind, command = "mini", task.command
    else:
        kind, command = "command", task.command
    document = json.dumps(
        {
            "kind": kind,
            "command": command,
            "inputs": sorted(input_names),
            "outputs": sorted(rn for rn, _ in task.outputs),
            "resources": task.resources.to_dict(),
            "env": sorted(task.env.items()),
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode()
    return hash_bytes(document)


class Namer:
    """Per-manager naming policy: assigns a cache name to every file.

    One instance exists per workflow run.  Random (non-content) names
    are salted with a per-run nonce, so names from different runs can
    never collide even across managers sharing workers; ``seed`` makes
    a run's random names reproducible for tests and the simulator.
    """

    def __init__(self, seed: Optional[int] = None, run_nonce: Optional[str] = None):
        self._rng = random.Random(seed)
        self.run_nonce = run_nonce or uuid.uuid4().hex[:12]
        self._issued: set[str] = set()
        #: optional callbacks used to name URL files
        self.header_fetcher: Optional[Callable[[str], Mapping[str, str]]] = None
        self.url_downloader: Optional[Callable[[str], bytes]] = None

    def _random_name(self, prefix: str) -> str:
        """A fresh per-run random name, guaranteed unique within the run."""
        while True:
            name = f"{prefix}-rnd-{self.run_nonce}-{self._rng.getrandbits(64):016x}"
            if name not in self._issued:
                return name

    def _salt(self, level: CacheLevel) -> str:
        """Run-nonce salt for spec-hashed names that must not outlive the run."""
        return "" if level == CacheLevel.WORKER else f"-{self.run_nonce}"

    def assign(self, f: File) -> str:
        """Compute, record, and return the cache name for ``f``.

        Idempotent: a file already named keeps its name.  For mini-task
        files, the producing task's inputs must already be named.
        """
        if f.cache_name is not None:
            return f.cache_name
        f.cache_name = self._name_for(f)
        if f.cache_name in self._issued and not self._shareable(f):
            raise RuntimeError(f"cache name collision within run: {f.cache_name}")
        self._issued.add(f.cache_name)
        return f.cache_name

    @staticmethod
    def _shareable(f: File) -> bool:
        """Content/spec-derived names may legitimately repeat across files."""
        return not (f.cache_name or "").split("-", 2)[1].startswith("rnd")

    def _name_for(self, f: File) -> str:
        if isinstance(f, BufferFile):
            # hashing a buffer is free; always content-address it
            return buffer_cache_name(f.data)
        if isinstance(f, LocalFile):
            if f.cache_level == CacheLevel.WORKER:
                name = local_cache_name(f.path)
            else:
                name = self._random_name("local")
            if f.size is None and os.path.isfile(f.path):
                f.size = os.path.getsize(f.path)
            return name
        if isinstance(f, URLFile):
            if f.cache_level == CacheLevel.WORKER:
                headers = self.header_fetcher(f.url) if self.header_fetcher else {}
                return url_cache_name(f.url, headers, self.url_downloader)
            return self._random_name("url")
        if isinstance(f, MiniTaskFile):
            spec = self._mini_task_spec(f)
            return f"task-md5-{spec}{self._salt(f.cache_level)}"
        if isinstance(f, TempFile):
            # named when bound to a producing task; placeholder until then
            return self._random_name("temp")
        return self._random_name("file")

    def _mini_task_spec(self, f: MiniTaskFile) -> str:
        task = f.mini_task
        input_names = []
        for remote_name, dep in task.inputs:
            input_names.append((remote_name, self.assign(dep)))
        f.dependencies = tuple(name for _, name in input_names)
        return task_spec_hash(
            task.command, input_names, task.resources.to_dict(), task.env
        )

    def name_temp_output(self, f: TempFile, producing_task) -> str:
        """(Re)name a temp file from its producing task's spec hash.

        Called when a temp file is attached as a task output, per the
        paper: "a TempFile ... is also named by computing the hash of
        the producing task".  Salted for non-worker lifetimes.
        """
        input_names = [
            (remote_name, self.assign(dep)) for remote_name, dep in producing_task.inputs
        ]
        spec = task_spec_hash(
            producing_task.command,
            input_names,
            producing_task.resources.to_dict(),
            producing_task.env,
        )
        old = f.cache_name
        if old is not None:
            self._issued.discard(old)
        # distinguish multiple temp outputs of one task by output name
        out_name = next(
            (rn for rn, ff in producing_task.outputs if ff is f), f.file_id
        )
        f.cache_name = (
            f"temp-md5-{hash_bytes((spec + ':' + out_name).encode())}"
            f"{self._salt(f.cache_level)}"
        )
        f.producer_task_id = producing_task.task_id
        self._issued.add(f.cache_name)
        return f.cache_name

    def name_task_output(self, f: File, task, merkle: str) -> str:
        """(Re)name a memo-eligible task's output from the task merkle.

        Memoized outputs must land on the *same* cache name in every
        run and every tenant — that identity is what lets a later
        identical submission adopt the recorded result — so the name is
        derived purely from the task merkle plus the output's sandbox
        name, never salted with the run nonce.
        """
        old = f.cache_name
        if old is not None:
            self._issued.discard(old)
        out_name = next((rn for rn, ff in task.outputs if ff is f), f.file_id)
        f.cache_name = f"memo-md5-{hash_bytes((merkle + ':' + out_name).encode())}"
        if isinstance(f, TempFile):
            f.producer_task_id = task.task_id
        self._issued.add(f.cache_name)
        return f.cache_name
