"""File declarations: the data half of a TaskVine workflow.

All data accessed or produced by a workflow must be explicitly declared
(paper §2.3).  Each named data object is a :class:`File`, whether it is
a single file, a container image, or a directory tree.  Files are
immutable once created: replicas may exist on many workers at once with
no consistency protocol.

Subtypes mirror the paper:

* :class:`LocalFile` — a path in the shared filesystem.
* :class:`BufferFile` — a small literal byte string from the
  application's memory.
* :class:`URLFile` — a remote object the worker downloads on demand.
* :class:`TempFile` — an ephemeral file that exists only inside the
  cluster and is never materialized outside it.
* :class:`MiniTaskFile` — a file produced on demand by executing a
  *mini task* at the worker (e.g. ``declare_untar``).

Cache lifetimes (:class:`CacheLevel`) control how long a worker may keep
an object: ``TASK`` files die with their task, ``WORKFLOW`` files (the
default) die with the workflow, and ``WORKER`` files persist across
workflows and therefore require content-addressable names
(:mod:`repro.core.naming`).
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.task import Task

__all__ = [
    "CacheLevel",
    "File",
    "LocalFile",
    "BufferFile",
    "URLFile",
    "TempFile",
    "MiniTaskFile",
    "FileRegistry",
]


class CacheLevel(enum.IntEnum):
    """Expected lifetime of a file, hinted by the application (paper §2.3).

    Ordering is meaningful: a larger level means a longer lifetime, and
    eviction/garbage-collection policies compare levels directly.
    """

    #: Consumed only by the task it is attached to; discarded immediately.
    TASK = 0
    #: Reused during the current workflow run; deleted at its conclusion.
    WORKFLOW = 1
    #: Kept by the worker for future workflows while space allows.
    WORKER = 2

    @classmethod
    def parse(cls, value: "CacheLevel | str | int") -> "CacheLevel":
        """Accept the enum itself, its name (any case), or its int value."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls[value.upper()]
        return cls(value)


_file_ids = itertools.count(1)


class File:
    """A named, immutable data object in a workflow.

    Instances are handles: declaring a file does not imply it exists at
    any worker yet (URL and temp files are materialized lazily, after
    which the worker sends a ``cache-update``).  The manager assigns
    each file a unique *cache name* (see :mod:`repro.core.naming`) which
    is the key used in worker caches and the replica table.
    """

    #: short tag used in cache-name prefixes and traces
    kind = "file"

    def __init__(self, cache: "CacheLevel | str" = CacheLevel.WORKFLOW) -> None:
        self.file_id: str = f"f{next(_file_ids)}"
        self.cache_level = CacheLevel.parse(cache)
        #: assigned by the manager's naming policy; None until declared
        self.cache_name: Optional[str] = None
        #: size in bytes, once known (declared, measured, or reported)
        self.size: Optional[int] = None
        #: cache names this file's materialization depends on (mini tasks)
        self.dependencies: tuple[str, ...] = ()

    def source_description(self) -> str:
        """Human-readable provenance used in logs and error messages."""
        return self.kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} {self.file_id} "
            f"cache={self.cache_level.name} name={self.cache_name}>"
        )


class LocalFile(File):
    """A file or directory in the shared filesystem of the cluster."""

    kind = "local"

    def __init__(self, path: str, cache: "CacheLevel | str" = CacheLevel.WORKFLOW):
        super().__init__(cache)
        self.path = path

    def source_description(self) -> str:
        return f"local:{self.path}"


class BufferFile(File):
    """A literal byte string held in the manager's memory.

    Typically small (per-task query strings, configuration snippets);
    the manager pushes the bytes directly to workers.
    """

    kind = "buffer"

    def __init__(self, data: bytes, cache: "CacheLevel | str" = CacheLevel.WORKFLOW):
        if isinstance(data, str):
            data = data.encode()
        super().__init__(cache)
        self.data = bytes(data)
        self.size = len(self.data)

    def source_description(self) -> str:
        return f"buffer[{self.size}B]"


class URLFile(File):
    """A remote object fetched by the worker on demand.

    The manager never needs the content; it derives a cache name from
    the response headers (checksum if offered, else URL+ETag+mtime) so
    that stale data can never be served under an old name (paper §3.2).
    """

    kind = "url"

    def __init__(self, url: str, cache: "CacheLevel | str" = CacheLevel.WORKFLOW):
        super().__init__(cache)
        self.url = url

    def source_description(self) -> str:
        return f"url:{self.url}"


class TempFile(File):
    """An ephemeral file produced by a task and kept only in-cluster.

    Temp files never travel back to the manager unless explicitly
    fetched; downstream tasks consume them from worker storage,
    which is what removes the manager round-trip in the TopEFT
    experiment (paper Fig. 13).
    """

    kind = "temp"

    def __init__(self, cache: "CacheLevel | str" = CacheLevel.WORKFLOW):
        super().__init__(cache)
        #: task id of the producer once the file is bound as an output
        self.producer_task_id: Optional[str] = None


class MiniTaskFile(File):
    """A file materialized on demand by running a mini task (paper §2.4/§3.1).

    The wrapped task's single declared output becomes this file's
    content.  Its cache name is the Merkle hash of the task
    specification, so two identical transformations of identical inputs
    share one cached object.
    """

    kind = "minitask"

    def __init__(self, mini_task: "Task", cache: "CacheLevel | str" = CacheLevel.WORKFLOW):
        super().__init__(cache)
        self.mini_task = mini_task

    def source_description(self) -> str:
        return f"minitask:{self.mini_task.command!r}"


class FileRegistry:
    """Manager-side index of every declared file.

    Maps both declaration ids and cache names to :class:`File` handles,
    and answers lifetime queries for garbage collection.  Registering
    two files that resolve to the same cache name is allowed (identical
    content declared twice) and returns the canonical first handle.
    """

    def __init__(self) -> None:
        self._by_id: dict[str, File] = {}
        self._by_name: dict[str, File] = {}

    def register(self, f: File) -> File:
        """Record ``f``; returns the canonical handle for its cache name."""
        if f.cache_name is None:
            raise ValueError(f"file {f.file_id} has no cache name yet")
        self._by_id[f.file_id] = f
        canonical = self._by_name.setdefault(f.cache_name, f)
        return canonical

    def by_id(self, file_id: str) -> File:
        """Look up a file by declaration id (KeyError if unknown)."""
        return self._by_id[file_id]

    def by_name(self, cache_name: str) -> File:
        """Look up the canonical file for a cache name (KeyError if unknown)."""
        return self._by_name[cache_name]

    def __contains__(self, cache_name: str) -> bool:
        return cache_name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def in_declaration_order(self, names: "set[str] | list[str]") -> list[str]:
        """``names`` ordered by when their canonical file was declared.

        Recovery paths that iterate set-valued queries (a departed
        worker's lost replicas, say) would otherwise walk cache names in
        hash order of their run-scoped nonces, making two identically
        seeded runs recover — and log — in different orders.
        """
        index = {name: i for i, name in enumerate(self._by_name)}
        return sorted(names, key=lambda n: index.get(n, len(index)))

    def names_at_level(self, *levels: CacheLevel) -> set[str]:
        """All cache names whose canonical file has one of ``levels``."""
        wanted = set(levels)
        return {
            name for name, f in self._by_name.items() if f.cache_level in wanted
        }

    def collectable_names(self) -> set[str]:
        """Cache names safe to delete at workflow end.

        ``WORKER``-lifetime files are excluded: they persist for future
        workflows (paper §3.2).
        """
        return self.names_at_level(CacheLevel.TASK, CacheLevel.WORKFLOW)
