"""The TaskVine manager: event-driven socket adapter over the control plane.

All *policy* — placement, transfer planning, replica and staging state
machines, retry/replication/regeneration — lives in
:class:`~repro.core.control_plane.ControlPlane`; this module only
provides the real runtime's *mechanisms* as a
:class:`~repro.core.control_plane.RuntimePort`: socket connections and
per-worker sender threads, wire message encoding, payload
(de)serialization, and result retrieval back to the application.  The
simulator drives the very same control plane with virtual-time
mechanisms, so any behavioural change belongs in ``control_plane.py``,
never here.

Concurrency model: a single ``selectors``-based *reactor* thread owns
the entire receive path — it accepts workers, reassembles frames from
non-blocking reads (:class:`~repro.protocol.connection.FrameReassembler`),
unwraps ``batch`` envelopes, and feeds complete messages to the control
plane under the state lock.  Outbound commands still go through one
sender thread per worker so large object pushes never stall the lock.
Application threads interact through the public API
(declare/submit/wait/fetch) which takes the same lock, so the manager
is safe to drive from ordinary sequential application code.

``Manager(network="threads")`` retains the historical
thread-per-connection receive path; it exists as the benchmark
baseline for ``benchmarks/bench_manager_throughput.py`` and as a
fallback, and shares all message handling with the reactor.
"""

from __future__ import annotations

import collections
import itertools
import os
import queue
import selectors
import socket
import tempfile
import threading
import time
import urllib.parse
import uuid
from typing import Callable, Optional, Sequence

from repro.core.control_plane import (
    MINITASK_SOURCE,
    NO_SOURCE,
    ControlPlane,
    LibraryState,
    StagingJob,
)
from repro.core.files import (
    BufferFile,
    CacheLevel,
    File,
    LocalFile,
    MiniTaskFile,
    TempFile,
    URLFile,
)
from repro.core.gc import collect_workflow
from repro.core.library import FunctionCall, Library
from repro.core.naming import Namer, task_merkle
from repro.core.resources import ResourcePool, Resources
from repro.core.resultref import ResultProxy, ResultRef, scan_refs
from repro.core.task import MiniTask, PythonTask, Task, TaskResult, TaskState
from repro.core.transfer_table import MANAGER_SOURCE, Transfer
from repro.observe.metrics import MetricsRegistry, SnapshotDumper
from repro.observe.txnlog import TransactionLogWriter
from repro.protocol import serialization as ser
from repro.protocol.connection import (
    IO_CHUNK,
    SESSION_CLIENT,
    SESSION_WORKER,
    Connection,
    FrameReassembler,
    ProtocolError,
    encode_frame,
    listen,
    session_kind,
)
from repro.protocol.messages import CLIENT_KINDS, M, WireError, validate
from repro.util.logging import get_logger

__all__ = ["Manager", "ManagerError"]

log = get_logger(__name__)

#: per-call non-blocking send flag; 0 where unsupported
_MSG_DONTWAIT = getattr(socket, "MSG_DONTWAIT", 0)


class ManagerError(RuntimeError):
    """Workflow-level failure raised to the application."""


class _WorkerHandle:
    """Manager-side connection state for one worker.

    Outbound traffic goes through a per-worker sender thread fed by an
    outbox of closures, so large object pushes never execute while the
    manager's state lock is held — the lock is only ever taken for
    bookkeeping, which makes reader/sender deadlock impossible.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        conn: Connection,
        capacity: Resources,
        transfer_host: str,
        transfer_port: int,
    ) -> None:
        self.worker_id = f"W{next(self._ids):03d}"
        self.conn = conn
        self.capacity = capacity
        self.pool = ResourcePool(capacity)
        self.transfer_host = transfer_host
        self.transfer_port = transfer_port
        #: shared with the control plane's WorkerState after admission
        self.running: set[str] = set()
        self.libraries: set[str] = set()
        self.alive = True
        self.last_seen = time.time()
        #: frames buffered during a reactor sweep, flushed as one send
        #: (guarded by the manager's state lock)
        self.pending_frames: list[bytes] = []
        #: held by whoever is writing the socket, so the reactor's
        #: opportunistic direct writes can never interleave with a
        #: sender-thread operation mid-stream
        self.wire_lock = threading.Lock()
        self.outbox: "queue.Queue[Optional[Callable[[Connection], None]]]" = queue.Queue()
        self._sender = threading.Thread(target=self._send_loop, daemon=True)
        self._sender.start()

    def _send_loop(self) -> None:
        while True:
            fn = self.outbox.get()
            if fn is None:
                return
            try:
                with self.wire_lock:
                    fn(self.conn)
            except (ProtocolError, OSError):
                self.alive = False
                return

    def enqueue(self, fn: Callable[[Connection], None]) -> None:
        """Queue an outbound operation for the sender thread."""
        self.outbox.put(fn)

    def stop_sender(self) -> None:
        """Stop the sender thread after flushing queued sends."""
        self.outbox.put(None)


class _ClientHandle:
    """Manager-side send channel for one attached client session.

    Mirrors the sender-thread shape of :class:`_WorkerHandle` (same
    ``pending_frames`` / ``wire_lock`` / ``outbox`` surface) so the
    manager's ``_send`` / ``_flush_pending`` machinery serves clients
    and workers identically.
    """

    def __init__(self, conn: Connection) -> None:
        self.conn = conn
        self.alive = True
        self.pending_frames: list[bytes] = []
        self.wire_lock = threading.Lock()
        self.outbox: "queue.Queue[Optional[Callable[[Connection], None]]]" = queue.Queue()
        self._sender = threading.Thread(target=self._send_loop, daemon=True)
        self._sender.start()

    def _send_loop(self) -> None:
        while True:
            fn = self.outbox.get()
            if fn is None:
                return
            try:
                with self.wire_lock:
                    fn(self.conn)
            except (ProtocolError, OSError):
                self.alive = False
                return

    def enqueue(self, fn: Callable[[Connection], None]) -> None:
        self.outbox.put(fn)

    def stop_sender(self) -> None:
        self.outbox.put(None)


class _ConnState:
    """Reactor-side receive state for one inbound connection.

    ``handle``/``client`` are both None until the peer's first frame
    decides its role (REGISTER admits a worker, CLIENT_HELLO a client
    session); ``pending`` holds a control message whose announced bulk
    payload (``file_data`` content, ``task_done`` result, declared
    buffer bytes) is still being reassembled.
    """

    __slots__ = ("conn", "frames", "handle", "client", "pending")

    def __init__(self, conn: Connection) -> None:
        self.conn = conn
        self.frames = FrameReassembler()
        self.handle: Optional[_WorkerHandle] = None
        self.client: Optional["_ClientSession"] = None
        self.pending: Optional[dict] = None


class _LibraryState(LibraryState):
    """Control-plane library state plus the real runtime's payload."""

    def __init__(
        self,
        library: Library,
        resources: Resources,
        slots: int,
        payload: Optional[bytes] = None,
    ) -> None:
        super().__init__(library.name, (), resources, slots)
        self.library = library
        #: client-shipped tables arrive pre-serialized and travel to
        #: workers verbatim; locally created libraries serialize here
        self.payload = (
            payload
            if payload is not None
            else ser.dumps_portable(dict(library.functions))
        )


def _call_result_name(task: FunctionCall) -> Optional[str]:
    """Cache name of a call's by-reference result output (None = inline)."""
    for name, f in task.outputs:
        if name == FunctionCall.RESULT_NAME:
            return f.cache_name
    return None


class _ClientSession:
    """One tenant's attachment to a long-lived manager.

    The session outlives its socket: a client may detach (or crash)
    and later reattach with its token, picking up the notices that
    were buffered in between.  ``loopback`` marks the in-process
    session that backs ``Manager.submit``/``wait`` — it has no socket
    and its completions go to the manager's completion queue.
    """

    _ids = itertools.count(1)

    #: cap on notices buffered for a detached session; beyond it the
    #: oldest are dropped (counted in ``dropped``) so a crashed client
    #: cannot grow the service without bound
    MAX_BUFFERED = 4096

    def __init__(self, tenant: str) -> None:
        self.session_id = f"C{next(self._ids):03d}"
        self.token = uuid.uuid4().hex
        self.tenant = tenant
        self.loopback = False
        self.handle: Optional[_ClientHandle] = None
        #: outstanding task ids owned by this session
        self.tasks: set[str] = set()
        #: notices generated while detached, replayed on reattach
        self.buffered: collections.deque = collections.deque(maxlen=self.MAX_BUFFERED)
        #: cumulative task_result notices emitted for this session;
        #: workflow_done carries it so clients can tell a momentary
        #: empty-queue notice from actual completion of all submits
        self.delivered = 0
        #: notices lost to the buffer cap while detached
        self.dropped = 0
        #: wall-clock time the session lost its attachment (reaping TTL)
        self.detached_at: Optional[float] = None
        #: True when the session was rebuilt from the journal after a
        #: manager restart: its pre-crash notices are gone (counted in
        #: ``dropped``) and the next welcome says so
        self.restored = False


class _MemoHarvestWaiter:
    """Adapter retaining a ``send_back`` reply in the memo store.

    Rides the same fetch plane as application fetches, so a result
    payload coming back for any reason can double as the memo store's
    retained copy (digest recorded alongside).
    """

    #: retention is opportunistic: its fetch must never trigger
    #: lineage regeneration when the replicas are simply gone
    best_effort = True

    def __init__(self, store, merkle: str, cache_name: str) -> None:
        self.store = store
        self.merkle = merkle
        self.cache_name = cache_name

    def put(self, payload: Optional[bytes]) -> None:
        if payload is None:
            return
        md5 = self.store.store_payload(self.cache_name, payload)
        self.store.set_output_md5(self.merkle, self.cache_name, md5)


class _ClientFetchWaiter:
    """Adapter forwarding a ``send_back`` reply to an attached client.

    Quacks like the ``queue.Queue`` the in-process fetch path parks on
    (``put(payload)``), so ``_on_file_data`` serves both without
    knowing which kind of waiter it is completing.
    """

    def __init__(self, service: "ManagerService", sess: _ClientSession, cache_name: str) -> None:
        self.service = service
        self.sess = sess
        self.cache_name = cache_name

    def put(self, payload: Optional[bytes]) -> None:
        self.service._send_file_data(self.sess, self.cache_name, payload)


class _FetchState:
    """One cache name's in-flight byte resolution at the manager.

    Tracks which worker is currently being asked (``asked is None``
    while parked on lineage regeneration), which holders were already
    tried, and every waiter sharing the resolution — concurrent fetches
    of one name cost one ``send_back``, not one per requester.  Waiters
    quack ``put(payload_or_None)``: ``queue.Queue`` (in-process
    fetches), :class:`_ClientFetchWaiter`, :class:`_MemoHarvestWaiter`.
    """

    __slots__ = ("waiters", "asked", "tried", "started")

    def __init__(self) -> None:
        self.waiters: list = []
        self.asked: Optional[str] = None
        self.tried: set[str] = set()
        self.started = time.monotonic()


class ManagerService:
    """Session table of service mode: many client workflows, one manager.

    Clients attach over the same reactor the workers use; the first
    frame on a connection decides its role.  Each session owns a
    tenant namespace (the cache names it declared or produced), rides
    the control plane's per-tenant quotas and fair-share queue, and
    shares the content-addressed cache with every other tenant — a
    second workflow declaring identical inputs gets a cache hit and
    zero re-transfer (paper §3.2's point of naming by content).

    All methods run under the manager's state lock.  Protocol errors
    from a client answer with ``client_reject`` (and a
    ``client_rejected`` event) instead of unwinding the connection.
    """

    def __init__(self, mgr: "Manager", project_name: str, password: Optional[str]) -> None:
        self.mgr = mgr
        self.project_name = project_name
        self.password = password
        #: attach-token -> session (reattach looks up here)
        self.sessions: dict[str, _ClientSession] = {}
        #: outstanding task id -> owning session (remote sessions only)
        self.by_task: dict[str, _ClientSession] = {}
        self.loopback = _ClientSession("default")
        self.loopback.loopback = True

    # -- admission -----------------------------------------------------

    def hello(self, state: _ConnState, msg: dict) -> None:
        """Authenticate and attach (or reattach) a client connection."""
        tenant = str(msg["tenant"])
        if self.password is not None and msg.get("password") != self.password:
            self._reject_conn(state.conn, "auth", f"bad password for tenant {tenant!r}")
            return
        token = msg.get("session")
        if token is not None:
            sess = self.sessions.get(token)
            if sess is None or sess.tenant != tenant:
                self._reject_conn(state.conn, "session", "unknown session token")
                return
            if sess.handle is not None:
                self._displace(sess)  # the new attachment wins
        else:
            sess = _ClientSession(tenant)
            self.sessions[sess.token] = sess
            if self.mgr.journal is not None:
                self.mgr.journal.record_session(
                    sess.token, sess.session_id, tenant
                )
        sess.handle = _ClientHandle(state.conn)
        sess.detached_at = None
        state.client = sess
        mgr = self.mgr
        mgr.control.tenant_account(tenant)
        mgr.control.log.emit(
            mgr.now(), "client_attach", worker=sess.session_id, category=tenant
        )
        mgr._send(
            sess.handle,
            {
                "type": M.WELCOME,
                "session": sess.token,
                "tenant": tenant,
                "project": self.project_name,
                "done": sess.delivered,
                "missed": sess.dropped,
                "recovered": sess.restored,
            },
        )
        sess.restored = False
        while sess.buffered:
            mgr._send(sess.handle, sess.buffered.popleft())

    def _displace(self, sess: _ClientSession) -> None:
        """Tear down the old attachment of a session that is reattaching.

        The stale connection is fully disowned here, on the reactor
        thread that owns the selector: its conn-state stops pointing at
        the session (so its eventual EOF cannot detach the new
        attachment, and frames it has in flight can no longer reach
        the session), and the socket is unregistered and closed.
        """
        old = sess.handle
        sess.handle = None
        if old is None:
            return
        old.stop_sender()
        old.alive = False
        sel = getattr(self.mgr, "_sel", None)
        if sel is not None:
            try:
                state = sel.get_key(old.conn.sock).data
            except (KeyError, ValueError):
                state = None
            if isinstance(state, _ConnState):
                state.client = None
            try:
                sel.unregister(old.conn.sock)
            except (KeyError, ValueError):
                pass
        old.conn.close()

    def client_gone(self, state: _ConnState) -> None:
        """EOF/teardown on a client connection: detach, keep the workflow.

        Only the connection that owns the session's *current* handle may
        detach it — the EOF of a socket displaced by a reattach must not
        touch the live attachment.
        """
        sess, state.client = state.client, None
        if sess is None:
            return
        if sess.handle is None or sess.handle.conn is not state.conn:
            return  # a displaced (stale) socket died; the session lives on
        sess.handle.stop_sender()
        sess.handle = None
        sess.detached_at = time.time()
        mgr = self.mgr
        mgr.control.log.emit(
            mgr.now(), "client_detach", worker=sess.session_id, category=sess.tenant
        )

    def reap_sessions(self, now: float, ttl: float) -> list[str]:
        """Expire sessions detached longer than ``ttl`` with no work left.

        A session with outstanding tasks is kept (its results would be
        lost); once those drain, the TTL runs from the detach time, so
        a client that crashed and never reattaches is eventually
        forgotten along with its buffered notices.
        """
        expired = [
            s
            for s in self.sessions.values()
            if s.handle is None
            and not s.tasks
            and s.detached_at is not None
            and now - s.detached_at > ttl
        ]
        for sess in expired:
            del self.sessions[sess.token]
            sess.buffered.clear()
            if self.mgr.journal is not None:
                self.mgr.journal.record_session_closed(sess.token)
            self.mgr.control.log.emit(
                self.mgr.now(), "client_expired",
                worker=sess.session_id, category=sess.tenant,
            )
        return [s.session_id for s in expired]

    def restore_sessions(self, journal) -> None:
        """Rebuild the session table from journal records after a restart.

        Each restored session comes back *detached*: the client's old
        socket died with the previous manager life, so it reattaches by
        token exactly like a voluntary detach/reattach.  Notices emitted
        before the crash are gone — every journaled terminal task of the
        session counts into ``dropped`` so the reattach ``welcome``
        reports an honest ``missed`` figure (results stay fetchable by
        task id / cache name).
        """
        mgr = self.mgr
        if journal.max_session_id:
            # new sessions must not reuse a restored session's id
            cur = next(_ClientSession._ids)
            _ClientSession._ids = itertools.count(
                max(cur, journal.max_session_id + 1)
            )
        by_token: dict[str, _ClientSession] = {}
        for token, rec in journal.sessions.items():
            sess = _ClientSession(rec.get("tenant", "default"))
            sess.token = token
            sess.session_id = rec.get("sid", sess.session_id)
            sess.restored = True
            sess.detached_at = time.time()
            self.sessions[token] = sess
            by_token[token] = sess
            mgr.control.log.emit(
                mgr.now(), "session_restored",
                worker=sess.session_id, category=sess.tenant,
            )
        for task in mgr.control.tasks.values():
            token = getattr(task, "session_token", None)
            sess = by_token.get(token) if token else None
            if sess is None:
                continue
            if task.is_done:
                sess.dropped += 1  # its pre-crash notice did not survive
            else:
                sess.tasks.add(task.task_id)
                self.by_task[task.task_id] = sess

    def attached_handles(self) -> list[_ClientHandle]:
        return [s.handle for s in self.sessions.values() if s.handle is not None]

    # -- request dispatch ----------------------------------------------

    def handle_message(
        self, sess: _ClientSession, mtype: str, msg: dict, payload: Optional[bytes]
    ) -> None:
        try:
            if mtype == M.DECLARE_FILE:
                self._declare(sess, msg, payload)
            elif mtype == M.SUBMIT_TASK:
                self._submit_spec(sess, msg)
            elif mtype == M.SUBMIT_DAG:
                self._submit_dag(sess, msg)
            elif mtype == M.FETCH_RESULT:
                self._fetch(sess, msg)
            elif mtype == M.CREATE_LIBRARY:
                self._create_library(sess, msg, payload)
            elif mtype == M.DETACH:
                self._detach(sess)
            else:  # a second client_hello on an attached session
                raise ManagerError(f"unexpected {mtype!r} on an attached session")
        except ManagerError as exc:
            self.reject(sess, "request", str(exc), ref=msg.get("ref"))

    def reject(
        self, sess: _ClientSession, code: str, detail: str, ref=None
    ) -> None:
        """Answer a bad client request without unwinding the connection."""
        mgr = self.mgr
        mgr.control.log.emit(
            mgr.now(), "client_rejected", worker=sess.session_id, category=code
        )
        frame = {"type": M.CLIENT_REJECT, "reason": f"{code}: {detail}"}
        if ref is not None:
            frame["ref"] = ref
        if sess.handle is not None:
            mgr._send(sess.handle, frame)

    def _reject_conn(self, conn: Connection, code: str, detail: str) -> None:
        # pre-auth rejects have no session/handle yet: answer directly
        # on the reactor thread (one tiny frame on an empty socket)
        self.mgr.control.log.emit(self.mgr.now(), "client_rejected", category=code)
        try:
            conn.send_message({"type": M.CLIENT_REJECT, "reason": f"{code}: {detail}"})
        except (ProtocolError, OSError):
            pass

    # -- declarations ---------------------------------------------------

    def _declare(self, sess: _ClientSession, msg: dict, payload: Optional[bytes]) -> None:
        mgr = self.mgr
        spec = msg["spec"]
        kind = spec.get("kind", "buffer")
        level = CacheLevel.parse(spec.get("level", "workflow"))
        if kind == "buffer":
            f: File = BufferFile(payload if payload is not None else b"", level)
            source, size = MANAGER_SOURCE, f.size or 0
        elif kind == "url":
            f = URLFile(str(spec["url"]), level)
            host = urllib.parse.urlparse(f.url).netloc or "localfs"
            source, size = f"url:{host}", mgr._url_size(f.url)
        elif kind == "local":
            f = LocalFile(self._local_path(sess, str(spec["path"])), level)
            source, size = MANAGER_SOURCE, f.size or mgr._local_size(f.path)
        else:
            raise ManagerError(f"unknown file kind {kind!r}")
        mgr.namer.assign(f)
        name = f.cache_name
        acct = mgr.control.tenant_account(sess.tenant)
        hit = name in mgr.control.fixed_sources
        if not hit:
            reason = mgr.control.tenant_charge_bytes(sess.tenant, size)
            if reason is not None:
                raise ManagerError(reason)
            mgr.control.declare(f, source, size)
        elif name not in acct.names:
            # content-identical to another tenant's declaration: the
            # existing replicas serve it, nothing moves again
            mgr.control.tenant_cache_hit(sess.tenant, name, size)
        mgr.control.tenant_add_name(sess.tenant, name)
        if sess.handle is not None:
            mgr._send(
                sess.handle,
                {
                    "type": M.FILE_DECLARED,
                    "ref": msg.get("ref"),
                    "cache_name": name,
                    "cache_hit": hit,
                    "size": size,
                },
            )

    def _local_path(self, sess: _ClientSession, path: str) -> str:
        """Resolve a ``kind="local"`` declaration path for one session.

        The loopback session *is* the in-process application — it may
        name anything the manager process can read.  Remote tenants all
        share one project password, so an unrestricted local declare
        would let any of them read any file on the manager host
        (/etc/passwd, another tenant's data): their paths must resolve
        — symlinks included — inside the operator-configured
        ``client_local_root``, or the declare is refused outright.
        """
        if sess.loopback:
            return os.path.abspath(path)
        root = self.mgr.client_local_root
        if root is None:
            raise ManagerError(
                'file kind "local" is disabled for remote clients '
                "(the service was started without a client_local_root)"
            )
        root = os.path.realpath(root)
        real = os.path.realpath(
            path if os.path.isabs(path) else os.path.join(root, path)
        )
        if real != root and not real.startswith(root + os.sep):
            raise ManagerError(
                f"{path!r} resolves outside the service's client_local_root"
            )
        return real

    # -- submission ------------------------------------------------------

    def _build_task(self, sess: _ClientSession, spec: dict, keymap: dict) -> Task:
        mgr = self.mgr
        if spec.get("kind") == "call":
            task: Task = self._build_call(spec)
        else:
            task = Task(str(spec["command"]))
        acct = mgr.control.tenant_account(sess.tenant)
        for entry in spec.get("inputs", ()):
            sandbox, src = entry[0], entry[1]
            if isinstance(src, dict):
                f = keymap.get(src.get("key"))
                if f is None:
                    raise ManagerError(f"unknown dag key {src.get('key')!r}")
            else:
                if src not in acct.names:
                    self._adopt_name(sess, acct, src)
                f = mgr.registry.by_name(src)
            task.add_input(f, sandbox)
        for entry in spec.get("outputs", ()):
            if isinstance(entry, (list, tuple)):
                sandbox, key = entry[0], entry[1] if len(entry) > 1 else None
            else:
                sandbox, key = entry, None
            out = TempFile()
            task.add_output(out, sandbox)
            if key is not None:
                keymap[key] = out
        if "resources" in spec:
            task.set_resources(Resources.from_dict(spec["resources"]))
        if "priority" in spec:
            task.set_priority(float(spec["priority"]))
        if "category" in spec:
            task.set_category(str(spec["category"]))
        if spec.get("deterministic"):
            task.set_deterministic(True)
        task.set_tenant(sess.tenant)
        return task

    def _build_call(self, spec: dict) -> FunctionCall:
        """A remote serverless invocation: args travel as a staged blob.

        The client declared its pickled argument tuple as an ordinary
        buffer (``args_cache``) and lists it — plus any ``ResultRef``
        arguments — among the task inputs, so the staging planner moves
        every byte the invocation needs worker-to-worker.  Remote calls
        are always by-reference: only a ref comes back.
        """
        mgr = self.mgr
        lib = str(spec["library"])
        state = mgr.control.libraries.get(lib)
        if state is None:
            raise ManagerError(f"function call names unknown library {lib!r}")
        fn = str(spec["function"])
        if fn not in state.library.functions:
            raise ManagerError(f"library {lib!r} has no function {fn!r}")
        task = FunctionCall(lib, fn)
        task.set_by_reference()
        args_cache = spec.get("args_cache")
        if args_cache is not None:
            task.args_name = str(args_cache)
            f = (
                mgr.registry.by_name(task.args_name)
                if task.args_name in mgr.registry
                else None
            )
            if isinstance(f, BufferFile):
                # merkle identity hashes the exact argument bytes, so
                # identical remote calls memo-match across runs/tenants
                task.args_blob = f.data
        return task

    def _adopt_name(self, sess: _ClientSession, acct, src: str) -> None:
        """Admit a cache name from outside the tenant's namespace.

        Content-addressed names act as capabilities: a client holding a
        ``ResultRef`` to another tenant's published output may consume
        it, and the shared bytes charge the consuming tenant zero — the
        same ``cache_shared`` accounting as a cross-tenant declare hit.
        Names with no live backing (no replica, no retained payload)
        stay namespace errors.
        """
        mgr = self.mgr
        backed = src in mgr.registry and (
            mgr.replicas.replica_count(src) > 0
            or (mgr.memo_store is not None and mgr.memo_store.has_payload(src))
        )
        if not backed:
            raise ManagerError(
                f"input {src!r} is outside tenant {sess.tenant!r}'s namespace"
            )
        mgr.control.tenant_cache_hit(sess.tenant, src, mgr.sizes.get(src, 0))
        mgr.control.tenant_add_name(sess.tenant, src)

    def _submit(self, sess: _ClientSession, task: Task) -> str:
        mgr = self.mgr
        blocked = mgr.control.tenant_submit_blocked(task.tenant)
        if blocked is not None:
            raise ManagerError(blocked)
        if not sess.loopback:
            # journaled with the submit so a restarted manager can route
            # the task's outcome back to the reattached session
            task.session_token = sess.token
        tid = mgr._submit_prepared(task)
        for _name, f in task.outputs:
            mgr.control.tenant_add_name(task.tenant, f.cache_name)
        if not sess.loopback:
            sess.tasks.add(tid)
            self.by_task[tid] = sess
        return tid

    def submit_local(self, task: Task) -> str:
        """Loopback client: the in-process API rides the same session path."""
        return self._submit(self.loopback, task)

    def _accept(self, sess: _ClientSession, ref, task: Task, tid: str) -> None:
        if sess.handle is None:
            return
        self.mgr._send(
            sess.handle,
            {
                "type": M.TASK_ACCEPTED,
                "ref": ref,
                "task_id": tid,
                "outputs": {name: f.cache_name for name, f in task.outputs},
            },
        )

    def _submit_spec(self, sess: _ClientSession, msg: dict) -> None:
        task = self._build_task(sess, msg["spec"], {})
        tid = self._submit(sess, task)
        self._accept(sess, msg.get("ref"), task, tid)

    def _submit_dag(self, sess: _ClientSession, msg: dict) -> None:
        specs = msg["tasks"]
        if not isinstance(specs, list) or not specs:
            raise ManagerError("submit_dag needs a non-empty task list")
        keymap: dict = {}
        tasks = [self._build_task(sess, spec, keymap) for spec in specs]
        acct = self.mgr.control.tenant_account(sess.tenant)
        headroom = acct.task_headroom()
        if headroom is not None and headroom < len(tasks):
            raise ManagerError(
                f"tenant {sess.tenant!r} task quota headroom {headroom} "
                f"cannot admit a {len(tasks)}-task dag"
            )
        ref = msg.get("ref")
        for i, task in enumerate(tasks):
            tid = self._submit(sess, task)
            self._accept(sess, f"{ref}[{i}]", task, tid)

    # -- serverless -------------------------------------------------------

    def _create_library(
        self, sess: _ClientSession, msg: dict, payload: Optional[bytes]
    ) -> None:
        """Install a client-shipped library of serverless functions.

        The serialized function table is never unpickled here — the
        manager keeps a name-level shell for validation and routing and
        forwards the opaque payload to workers verbatim.  Re-creating a
        library whose name and function set already exist is idempotent
        (a cache hit in spirit), so every session of a tenant — and a
        reattaching client — can issue the same ``create_library``
        unconditionally.
        """
        mgr = self.mgr
        name = str(msg["library"])
        names = [str(n) for n in msg.get("functions", ())]
        existing = mgr.control.libraries.get(name)
        if existing is not None:
            if set(names) != set(existing.library.functions):
                raise ManagerError(
                    f"library {name!r} already exists with a different function table"
                )
        else:
            if not payload:
                raise ManagerError(
                    f"create_library {name!r} carries no function table"
                )
            library = Library.from_names(name, names)
            mgr.control.libraries[name] = _LibraryState(
                library,
                Resources(cores=1),
                int(msg.get("slots", 1)),
                payload=payload,
            )
            mgr.control.install_library(name)
        if sess.handle is not None:
            mgr._send(
                sess.handle,
                {
                    "type": M.LIBRARY_CREATED,
                    "ref": msg.get("ref"),
                    "library": name,
                    "functions": names,
                },
            )

    # -- completion and retrieval ----------------------------------------

    def task_delivered(self, task: Task) -> Optional[_ClientSession]:
        """Route a completed task to its owning remote session.

        Returns None when the task belongs to the in-process loopback
        path (the caller then feeds the completion queue as before).
        """
        sess = self.by_task.pop(task.task_id, None)
        if sess is None:
            return None
        sess.tasks.discard(task.task_id)
        sess.delivered += 1
        r = task.result
        notice = {
            "type": M.TASK_RESULT,
            "task_id": task.task_id,
            "state": task.state.value,
            "exit_code": r.exit_code if r else -1,
            "failure": r.failure if r else None,
            "output": (r.output or "")[-2000:] if r else "",
            "outputs": {name: f.cache_name for name, f in task.outputs},
        }
        if isinstance(task, FunctionCall) and task.state == TaskState.DONE:
            name = _call_result_name(task)
            if name is not None:
                # the value never travels in the notice: consumers get a
                # ref and resolve (or chain) it through the fetch plane
                mgr = self.mgr
                notice["result_ref"] = ResultRef(
                    cache_name=name,
                    size=mgr.sizes.get(name, 0),
                    holders=tuple(sorted(mgr.replicas.locate(name))),
                ).to_dict()
        self._notify(sess, notice)
        if not sess.tasks:
            # "nothing outstanding" can be momentary under incremental
            # submission (task 1 done while task 2's submit is in
            # flight); the notice carries the cumulative delivery count
            # so the client can match it against its accepted submits
            # instead of trusting the first empty transition.
            mgr = self.mgr
            mgr.control.log.emit(mgr.now(), "workflow_done", category=sess.tenant)
            self._notify(
                sess,
                {
                    "type": M.WORKFLOW_DONE,
                    "tenant": sess.tenant,
                    "done": sess.delivered,
                },
            )
        return sess

    def _notify(self, sess: _ClientSession, frame: dict) -> None:
        if sess.handle is not None and sess.handle.alive:
            self.mgr._send(sess.handle, frame)
        else:
            if len(sess.buffered) == sess.buffered.maxlen:
                sess.dropped += 1  # deque evicts the oldest notice
            sess.buffered.append(frame)

    def _fetch(self, sess: _ClientSession, msg: dict) -> None:
        mgr = self.mgr
        name = str(msg["cache_name"])
        acct = mgr.control.tenant_account(sess.tenant)
        if name not in acct.names:
            raise ManagerError(
                f"{name!r} is outside tenant {sess.tenant!r}'s namespace"
            )
        f = mgr.registry.by_name(name) if name in mgr.registry else None
        if isinstance(f, BufferFile):
            self._send_file_data(sess, name, f.data)
            return
        # everything else rides the fetch plane: live holders first
        # (retrying across them if one dies mid-serve), then the memo
        # store's retained payload, then lineage regeneration; only
        # when all three come up empty does the client see found=False
        mgr._request_payload(name, _ClientFetchWaiter(self, sess, name))

    def _send_file_data(
        self, sess: _ClientSession, name: str, payload: Optional[bytes]
    ) -> None:
        if sess.handle is None or not sess.handle.alive:
            return  # detached: the replica stays fetchable on reattach
        frame = {
            "type": M.FILE_DATA,
            "cache_name": name,
            "found": payload is not None,
            "size": len(payload or b""),
        }
        self.mgr._send(sess.handle, frame, payload if payload else None)

    def _detach(self, sess: _ClientSession) -> None:
        if sess.handle is not None:
            self.mgr._send(sess.handle, {"type": M.DETACHED, "session": sess.token})
        # the client closes its end after the ack; the reactor's EOF
        # unwind then runs client_gone(), which buffers further notices


class Manager:
    """Coordinates workers to execute a declared workflow (paper Fig. 1)."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        worker_transfer_limit: Optional[int] = 3,
        source_transfer_limit: Optional[int] = 100,
        locality: bool = True,
        seed: Optional[int] = None,
        transfer_retries: int = 3,
        resource_learning: bool = False,
        worker_liveness_timeout: Optional[float] = 60.0,
        temp_replica_count: int = 1,
        txn_log_path: Optional[str] = None,
        metrics_dump_path: Optional[str] = None,
        metrics_dump_interval: float = 5.0,
        transfer_backoff_base: float = 0.5,
        requeue_backoff_base: float = 0.0,
        blocklist_threshold: int = 5,
        network: str = "reactor",
        project_name: str = "repro",
        password: Optional[str] = None,
        fair_share: bool = True,
        default_task_quota: Optional[int] = None,
        default_byte_quota: Optional[int] = None,
        client_local_root: Optional[str] = None,
        client_session_ttl: Optional[float] = 3600.0,
        memo_dir: Optional[str] = None,
        memo_opt_out: Optional[Sequence[str]] = None,
        memo_payload_limit: Optional[int] = None,
        journal_dir: Optional[str] = None,
        recovery_grace: float = 10.0,
        inline_call_results: bool = False,
        fetch_ttl: float = 300.0,
    ) -> None:
        if network not in ("reactor", "threads"):
            raise ValueError(f"unknown network mode {network!r}")
        self.network = network
        self._lock = threading.RLock()
        self._t0 = time.time()
        #: persistent memoization store; None disables memoization
        self.memo_store = None
        if memo_dir is not None:
            from repro.memo.store import MemoStore

            self.memo_store = MemoStore(memo_dir, payload_limit=memo_payload_limit)
        #: durable write-ahead journal; None runs the manager in-memory
        #: only (the historical behavior)
        self.journal = None
        if journal_dir is not None:
            from repro.core.journal import ControlPlaneJournal

            self.journal = ControlPlaneJournal(journal_dir)
        self.recovery_grace = recovery_grace
        self.control = ControlPlane(
            self,
            worker_transfer_limit=worker_transfer_limit,
            source_transfer_limit=source_transfer_limit,
            locality=locality,
            transfer_retries=transfer_retries,
            temp_replica_count=temp_replica_count,
            resource_learning=resource_learning,
            metrics=MetricsRegistry(),
            transfer_backoff_base=transfer_backoff_base,
            requeue_backoff_base=requeue_backoff_base,
            blocklist_threshold=blocklist_threshold,
            rng_seed=seed if seed is not None else 0,
            fair_share=fair_share,
            default_task_quota=default_task_quota,
            default_byte_quota=default_byte_quota,
            memo=self.memo_store,
            memo_opt_out=memo_opt_out,
            journal=self.journal,
        )
        #: directory remote clients' ``kind="local"`` declarations must
        #: resolve inside; None (the default) disables them entirely
        self.client_local_root = client_local_root
        #: idle seconds after which a detached session with no
        #: outstanding tasks is reaped; None keeps sessions forever
        self.client_session_ttl = client_session_ttl
        #: client-session table (service mode); the in-process API is
        #: its loopback session, so one code path owns all submissions
        self.service = ManagerService(self, project_name, password)
        #: streams every event to disk as it is emitted (live tailable)
        self._txn_writer: Optional[TransactionLogWriter] = None
        if txn_log_path is not None:
            # a recovering manager *appends* a new @header segment so
            # the crashed life's events stay in place for forensics
            self._txn_writer = TransactionLogWriter(
                txn_log_path,
                runtime="real",
                resume=self.journal is not None and self.journal.recovered,
            )
            self.control.log.attach(self._txn_writer)
        self._metrics_dumper: Optional[SnapshotDumper] = None
        if metrics_dump_path is not None:
            self._metrics_dumper = SnapshotDumper(
                self.control.metrics, metrics_dump_path, metrics_dump_interval
            ).start()
        self.namer = Namer(seed=seed)
        self.namer.header_fetcher = self._url_headers

        #: legacy wire discipline: function-call values ride the
        #: task_done reply through the manager (the bench baseline the
        #: by-reference result plane is measured against)
        self.inline_call_results = inline_call_results
        #: seconds before an in-flight result fetch is abandoned and
        #: its orphaned waiters are failed (liveness-sweep hygiene)
        self.fetch_ttl = fetch_ttl
        self.workers: dict[str, _WorkerHandle] = {}
        self._completed: "queue.Queue[Task]" = queue.Queue()
        #: result cache_name -> value-retrieval task (python task, or a
        #: loopback function call in value mode) awaiting its payload
        self._retrieving: dict[str, Task] = {}
        #: result names whose cache-update must trigger a fetch: the
        #: worker announced the harvest but the update had not landed yet
        self._awaiting_result: dict[str, Task] = {}
        #: in-flight result fetches by cache name — shared waiter lists,
        #: holder retry on death/denial, regeneration parking
        self._fetch_states: dict[str, _FetchState] = {}

        # network traffic accounting (docs/observability.md "net.*")
        m = self.control.metrics
        self._m_frames_in = m.counter("net.frames_in")
        self._m_frames_out = m.counter("net.frames_out")
        self._m_messages_in = m.counter("net.messages_in")
        self._m_batch_fill = m.histogram("net.batch_fill")
        self._m_loop = m.histogram("net.reactor_loop_seconds")

        # pump coalescing while a batch envelope unwraps (under _lock)
        self._defer_pump = False
        self._pump_wanted = False
        #: reactor-only: set around a whole event sweep so one pump
        #: absorbs every message of the sweep (written/read only by the
        #: reactor thread; request_pump checks thread identity)
        self._reactor_defer = False
        #: live schedule_pump timers, cancelled at close
        self._timers: set[threading.Timer] = set()
        self._closing = threading.Event()

        self._listener = listen(host, port)
        self.host, self.port = self._listener.getsockname()
        #: True when this life restored state journaled by a prior one
        self.recovered = False
        if self.journal is not None:
            with self._lock:
                if self.control.restore_from_journal():
                    self.recovered = True
                    self.service.restore_sessions(self.journal)
                    # hold placements until the workers the journal knew
                    # about rejoin (their caches re-adopt) or grace ends
                    self.control.begin_recovery(recovery_grace)
                self.journal.record_meta(port=self.port, project=project_name)
        self._reactor_thread: Optional[threading.Thread] = None
        self._accept_thread: Optional[threading.Thread] = None
        if network == "reactor":
            self._sel = selectors.DefaultSelector()
            # self-pipe: lets close() interrupt a pending select()
            self._wake_r, self._wake_w = socket.socketpair()
            self._wake_r.setblocking(False)
            self._sel.register(self._listener, selectors.EVENT_READ, "accept")
            self._sel.register(self._wake_r, selectors.EVENT_READ, "wake")
            self._reactor_thread = threading.Thread(
                target=self._reactor_loop, name="manager-reactor", daemon=True
            )
            self._reactor_thread.start()
        else:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, daemon=True
            )
            self._accept_thread.start()
        #: seconds of silence (no message, not even a heartbeat) after
        #: which a worker is declared dead; None disables the reaper
        self.worker_liveness_timeout = worker_liveness_timeout
        self._reaper_thread: Optional[threading.Thread] = None
        if worker_liveness_timeout is not None or client_session_ttl is not None:
            self._reaper_thread = threading.Thread(
                target=self._reaper_loop, daemon=True
            )
            self._reaper_thread.start()

    # -- control-plane state views (single source of truth) --------------

    registry = property(lambda self: self.control.registry)
    replicas = property(lambda self: self.control.replicas)
    transfers = property(lambda self: self.control.transfers)
    scheduler = property(lambda self: self.control.scheduler)
    log = property(lambda self: self.control.log)
    metrics = property(lambda self: self.control.metrics)
    categories = property(lambda self: self.control.categories)
    tasks = property(lambda self: self.control.tasks)
    fixed_sources = property(lambda self: self.control.fixed_sources)
    sizes = property(lambda self: self.control.sizes)
    libraries = property(lambda self: self.control.libraries)
    _closed = property(lambda self: self.control.closed)

    # ------------------------------------------------------------------
    # RuntimePort: real-runtime mechanisms behind the control plane
    # ------------------------------------------------------------------

    def now(self) -> float:
        return time.time() - self._t0

    def worker_connected(self, worker_id: str) -> bool:
        handle = self.workers.get(worker_id)
        return handle is not None and handle.alive

    def request_pump(self) -> None:
        # callers already hold the state lock; pump synchronously — but
        # while a batch envelope unwraps, or while the reactor is mid
        # event sweep, coalesce to one pump at the end (the main
        # throughput lever of the event-driven path: K completions in a
        # sweep cost one scheduling pass, not K)
        if self._defer_pump or (
            self._reactor_defer
            and threading.current_thread() is self._reactor_thread
        ):
            self._pump_wanted = True
            return
        self.control.pump()

    def schedule_pump(self, delay: float) -> None:
        """Wake the control plane after ``delay`` wall seconds.

        Used by retry/requeue backoffs: a held-off transfer or task
        needs a pump when its holdoff expires even if no worker message
        arrives in the meantime.
        """

        def fire() -> None:
            self._timers.discard(timer)
            with self._lock:
                if not self.control.closed:
                    self.control.pump()

        timer = threading.Timer(max(0.0, delay), fire)
        timer.daemon = True
        self._timers.add(timer)
        timer.start()

    def push_object(self, record: Transfer, level: CacheLevel) -> None:
        handle = self.workers.get(record.dest_worker)
        if handle is None:
            return
        self._send_object(handle, record.cache_name, level, record.transfer_id)

    def send_fetch(self, record: Transfer, level: CacheLevel) -> None:
        handle = self.workers.get(record.dest_worker)
        if handle is None:
            return
        if record.source.startswith("url:"):
            f = self.registry.by_name(record.cache_name)
            assert isinstance(f, URLFile)
            source = {"kind": "url", "url": f.url}
        else:
            src = self.workers[record.source]
            source = {
                "kind": "worker",
                "host": src.transfer_host,
                "port": src.transfer_port,
            }
        self._send(
            handle,
            {
                "type": M.FETCH_FILE,
                "cache_name": record.cache_name,
                "source": source,
                "transfer_id": record.transfer_id,
                "level": int(level),
            },
        )

    def run_minitask(self, job: StagingJob) -> None:
        handle = self.workers.get(job.worker_id)
        if handle is None:
            return
        mini = job.file.mini_task
        spec = {
            "command": mini.command,
            "inputs": [
                [sandbox_name, dep.cache_name] for sandbox_name, dep in mini.inputs
            ],
            "output_name": mini.output_name,
            "env": mini.env,
            "resources": mini.resources.to_dict(),
        }
        self._send(
            handle,
            {
                "type": M.STAGE_MINITASK,
                "cache_name": job.file.cache_name,
                "spec": spec,
                "level": int(job.file.cache_level),
                "transfer_id": job.transfer_id,
            },
        )

    def start_task(self, task: Task) -> None:
        handle = self.workers.get(task.worker_id or "")
        if handle is None:
            return
        if isinstance(task, FunctionCall):
            msg = {
                "type": M.INVOKE,
                "task_id": task.task_id,
                "library": task.library_name,
                "function": task.function_name,
            }
            result_name = _call_result_name(task)
            if result_name is not None:
                rf = next(
                    f for n, f in task.outputs if n == FunctionCall.RESULT_NAME
                )
                msg["result_name"] = result_name
                msg["result_level"] = int(rf.cache_level)
                msg["inputs"] = [f.cache_name for _n, f in task.inputs]
            if task.args_name is not None:
                # remote form: the argument blob was staged as an input,
                # so nothing but the control frame goes over this hop
                msg["args_cache"] = task.args_name
                msg["payload_size"] = 0
                self._send(handle, msg)
                return
            from repro.worker.library_instance import pack_invocation

            blob = pack_invocation(task.args, dict(task.kwargs))
            msg["payload_size"] = len(blob)
            self._send(handle, msg, blob)
            return
        self._send(
            handle,
            {
                "type": M.EXECUTE,
                "task_id": task.task_id,
                "command": task.command,
                "inputs": [[name, f.cache_name] for name, f in task.inputs],
                "outputs": [
                    [name, f.cache_name, int(f.cache_level)]
                    for name, f in task.outputs
                ],
                "env": task.env,
                "resources": task.resources.to_dict(),
            },
        )

    def cancel_task(self, task: Task) -> None:
        handle = self.workers.get(task.worker_id or "")
        if handle is not None:
            self._send(handle, {"type": M.CANCEL_TASK, "task_id": task.task_id})

    def task_preempted(self, task: Task) -> None:
        pass  # nothing buffered outside the control plane for a lost task

    def launch_library(self, lib: LibraryState, worker_id: str) -> None:
        assert isinstance(lib, _LibraryState)
        handle = self.workers.get(worker_id)
        if handle is None:
            return
        self._send(
            handle,
            {
                "type": M.INSTALL_LIBRARY,
                "library": lib.library.name,
                "functions": lib.library.function_names(),
                "payload_size": len(lib.payload),
                "task_id": f"lib:{lib.library.name}",
                "slots": lib.slots,
            },
            lib.payload,
        )

    def store_replica(
        self, worker_id: str, cache_name: str, size: int, level: CacheLevel
    ) -> None:
        pass  # real workers persist to disk before reporting cache-update

    def delete_replica(self, worker_id: str, cache_name: str) -> None:
        handle = self.workers.get(worker_id)
        if handle is not None and handle.alive:
            self._send(handle, {"type": M.UNLINK, "cache_name": cache_name})

    def finish_drain(self, worker_id: str) -> None:
        """RuntimePort drain hook: every sole-holder object has migrated
        off the worker, so order it out.  The shutdown travels the
        normal command path; the worker's run loop exits on it, the
        socket closes, and ``_on_worker_gone`` → ``worker_left`` then
        finds every needed replica already backed by a survivor."""
        handle = self.workers.get(worker_id)
        if handle is not None and handle.alive:
            self._send(handle, {"type": M.SHUTDOWN})

    def deliver(self, task: Task, regenerated: bool) -> None:
        if regenerated:  # regeneration reruns were already delivered
            return
        if (
            isinstance(task, FunctionCall)
            and task.state == TaskState.DONE
            and not task._output_set
            and _call_result_name(task) is not None
        ):
            self._publish_proxy(task)
        if self.service.task_delivered(task) is None:
            self._completed.put(task)  # loopback (in-process) session

    def _publish_proxy(self, task: FunctionCall) -> None:
        """Stamp a completed by-reference call with its lazy result proxy.

        The value stays in worker caches; ``output()`` hands back a
        :class:`ResultProxy` whose first dereference resolves through
        the fetch plane (replica send-back with holder retry, the memo
        store's retained payload, or lineage regeneration).  Covers
        fresh executions and memo hits alike.
        """
        name = _call_result_name(task)
        assert name is not None
        ref = ResultRef(
            cache_name=name,
            size=self.sizes.get(name, 0),
            holders=tuple(sorted(self.replicas.locate(name))),
        )
        task.set_output_value(ResultProxy(ref, fetcher=self._fetch_result_bytes))
        self.control._m_proxies.inc()

    # -- memoization mechanisms (optional RuntimePort hooks) -------------

    def memo_attach(self, cache_name: str, size: int, md5: Optional[str]) -> bool:
        """True iff a retained payload can soundly back ``cache_name``.

        Called by the control plane while validating a memo entry whose
        replicas are gone.  A payload that fails its digest is dropped
        on the spot — a corrupt retained copy must never be served.
        """
        store = self.memo_store
        if store is None or md5 is None:
            return False
        if store.verify_payload(cache_name, md5):
            return True
        store.drop_payload(cache_name)
        return False

    def memo_persist(self, task: Task, merkle: str, outputs) -> None:
        """Retain small outputs of a freshly recorded entry as payloads.

        Each qualifying output is pulled back from a live replica via
        the ordinary ``send_back`` path; the waiter stores the bytes and
        stamps the digest into the store when they arrive.  Best effort:
        an output that never lands simply keeps ``md5=None`` and the
        entry stays replica-backed only.
        """
        store = self.memo_store
        if store is None:
            return
        for out in outputs:
            if out.size > store.payload_limit:
                continue
            if out.md5 is not None and store.verify_payload(out.cache_name, out.md5):
                continue
            holders = [
                w for w in self.replicas.locate(out.cache_name) if w in self.workers
            ]
            if not holders:
                continue
            self._request_payload(
                out.cache_name, _MemoHarvestWaiter(store, merkle, out.cache_name)
            )

    def memo_finalize(self, task: Task, entry) -> bool:
        """Reconstruct the application-visible value of a memo hit.

        Command tasks carry everything in their output files, so they
        always finalize.  A python task's value must be decoded from the
        retained result payload — without one (or with a recorded
        exception) the hit is vetoed and the task runs.  Function calls
        follow the same rule in value (loopback) mode; by-reference and
        remote calls always finalize — their proxy resolves lazily
        through the fetch plane, which the validated entry (live
        replicas or a digest-verified payload) is known to serve.
        """
        if isinstance(task, FunctionCall):
            result_name = _call_result_name(task)
            if result_name is None:
                return False  # inline mode: the value only ever rode the wire
            if task.by_reference or getattr(task, "session_token", None) is not None:
                return True
            return self._finalize_value(task, entry, result_name)
        if not isinstance(task, PythonTask):
            return True
        result_name = task.outputs[-1][1].cache_name
        if not self._finalize_value(task, entry, result_name):
            return False
        self._retrieving.pop(result_name, None)
        return True

    def _finalize_value(self, task: Task, entry, result_name: str) -> bool:
        """Decode a retained result payload into a value-mode task."""
        out = next((o for o in entry.outputs if o.cache_name == result_name), None)
        if out is None or not self.memo_attach(result_name, out.size, out.md5):
            return False  # no digest-verified retained copy of the value
        data = self._memo_payload_bytes(result_name)
        if data is None:
            return False
        try:
            decoded = ser.loads(data)
        except ser.SerializationError:
            return False
        if not decoded.get("ok"):
            return False
        task.set_output_value(decoded.get("value"))
        return True

    def _memo_payload_bytes(self, cache_name: str) -> Optional[bytes]:
        """A retained payload's bytes, or None if absent/unreadable."""
        store = self.memo_store
        if store is None or not store.has_payload(cache_name):
            return None
        try:
            with open(store.payload_path(cache_name), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    # ------------------------------------------------------------------
    # public API: declarations
    # ------------------------------------------------------------------

    def declare_local(self, path: str, cache: "CacheLevel | str" = CacheLevel.WORKFLOW) -> LocalFile:
        """Declare a file or directory from the shared filesystem."""
        f = LocalFile(os.path.abspath(path), cache)
        with self._lock:
            self.namer.assign(f)
            self.control.declare(f, MANAGER_SOURCE, f.size or self._local_size(f.path))
        return f

    @staticmethod
    def _local_size(path: str) -> int:
        if os.path.isdir(path):
            return sum(
                os.path.getsize(os.path.join(r, name))
                for r, _d, files in os.walk(path)
                for name in files
            )
        return os.path.getsize(path) if os.path.exists(path) else 0

    def declare_buffer(
        self, data: "bytes | str", cache: "CacheLevel | str" = CacheLevel.WORKFLOW
    ) -> BufferFile:
        """Declare literal bytes from the application's memory."""
        f = BufferFile(data, cache)
        with self._lock:
            self.namer.assign(f)
            self.control.declare(f, MANAGER_SOURCE, f.size or 0)
        return f

    def declare_url(self, url: str, cache: "CacheLevel | str" = CacheLevel.WORKFLOW) -> URLFile:
        """Declare a remote object; workers fetch it on demand."""
        f = URLFile(url, cache)
        with self._lock:
            self.namer.assign(f)
            host = urllib.parse.urlparse(url).netloc or "localfs"
            self.control.declare(f, f"url:{host}", self._url_size(url))
        return f

    @staticmethod
    def _url_size(url: str) -> int:
        if url.startswith("file://"):
            path = url[len("file://"):]
            return Manager._local_size(path) if os.path.exists(path) else 0
        return 0

    @staticmethod
    def _url_headers(url: str) -> dict[str, str]:
        """Pseudo-headers for naming: stat-derived for ``file://`` URLs."""
        if url.startswith("file://"):
            path = url[len("file://"):]
            st = os.stat(path)
            return {
                "ETag": f"{st.st_ino:x}-{st.st_size:x}",
                "Last-Modified": str(st.st_mtime_ns),
            }
        try:
            import urllib.request

            req = urllib.request.Request(url, method="HEAD")
            with urllib.request.urlopen(req, timeout=30) as resp:
                return dict(resp.headers.items())
        except OSError:
            return {}

    def declare_temp(self) -> TempFile:
        """Declare an ephemeral file that never leaves the cluster."""
        f = TempFile()
        with self._lock:
            self.namer.assign(f)
            self.control.declare(f, NO_SOURCE, 0)
        return f

    def declare_minitask(
        self, mini: MiniTask, cache: "CacheLevel | str" = CacheLevel.WORKFLOW
    ) -> MiniTaskFile:
        """Wrap a task as an on-demand file transformation (paper Fig. 6)."""
        for _, dep in mini.inputs:
            if dep.cache_name is None:
                raise ManagerError(
                    f"mini task input {dep.file_id} must be declared first"
                )
        f = MiniTaskFile(mini, cache)
        with self._lock:
            self.namer.assign(f)
            self.control.declare(f, MINITASK_SOURCE, 0)
        return f

    def declare_untar(
        self, tarball: File, cache: "CacheLevel | str" = CacheLevel.WORKFLOW
    ) -> MiniTaskFile:
        """Built-in unpack mini task (paper Fig. 3 ``declare_untar``)."""
        mini = MiniTask("mkdir unpacked && tar -xf input.tar -C unpacked")
        mini.set_output_name("unpacked")
        mini.add_input(tarball, "input.tar")
        return self.declare_minitask(mini, cache)

    # ------------------------------------------------------------------
    # public API: tasks
    # ------------------------------------------------------------------

    def submit(self, task: Task) -> str:
        """Submit a task for execution; returns its id.

        Routes through the service's loopback session, so in-process
        submissions ride the same quota/accounting path as remote
        clients while keeping this signature unchanged.
        """
        with self._lock:
            return self.service.submit_local(task)

    def _submit_prepared(self, task: Task) -> str:
        """Validation + naming shared by loopback and client submits.

        Callers hold the state lock and have already passed tenant
        quota admission.
        """
        if task.state != TaskState.CREATED:
            raise ManagerError(f"task {task.task_id} already submitted")
        if isinstance(task, PythonTask):
            self._prepare_python_task(task)
        if isinstance(task, FunctionCall):
            if task.library_name not in self.control.libraries:
                raise ManagerError(
                    f"function call names unknown library {task.library_name!r}"
                )
            self._prepare_function_call(task)
        for _, f in task.inputs:
            if f.cache_name is None or f.cache_name not in self.control.fixed_sources:
                # ids are assigned at submit, so name the command here
                raise ManagerError(
                    f"input {f.file_id} of task {task.command!r} was not declared"
                )
        self._memo_name_outputs(task)
        for _, f in task.outputs:
            if f.cache_name is None:
                self.namer.assign(f)
                self.control.declare_output_file(f)
        if isinstance(task, PythonTask):
            self._retrieving[task.outputs[-1][1].cache_name] = task
        return self.control.submit(task)

    def _memo_name_outputs(self, task: Task) -> None:
        """Content-address a memo-eligible task's unnamed outputs.

        The same recipe must map to the same cache names across runs
        and tenants for memoization to mean anything, so eligible
        outputs get deterministic ``memo-md5-`` names derived from the
        task merkle instead of run-salted temp names — and worker-
        lifetime cache levels, so their replicas survive workflow GC
        and worker restarts.
        """
        if (
            self.memo_store is None
            or not task.deterministic
            or not task.outputs
            or task.tenant in self.control.memo_opt_out
        ):
            return
        merkle = task_merkle(task)  # inputs were validated as named above
        for _, f in task.outputs:
            if self.control.memo_renameable(f):
                f.cache_level = CacheLevel.WORKER
                self.namer.name_task_output(f, task, merkle)
                self.control.declare_output_file(f)

    def _prepare_python_task(self, task: PythonTask) -> None:
        payload = ser.dumps_portable(
            {"func": task.func, "args": task.args, "kwargs": task.kwargs}
        )
        pf = BufferFile(payload, CacheLevel.TASK)
        self.namer.assign(pf)
        self.control.declare(pf, MANAGER_SOURCE, len(payload))
        task.inputs.append((task.PAYLOAD_NAME, pf))
        result = TempFile()
        # named (memo-aware) and declared in _submit_prepared's output
        # pass; _retrieving is registered there once the name exists
        task.outputs.append((task.RESULT_NAME, result))

    def _prepare_function_call(self, task: FunctionCall) -> None:
        """Attach the by-reference result output and proxy-argument inputs.

        Proxy arguments become ordinary task inputs, so the staging
        planner moves the referenced bytes worker-to-worker (peer
        transfers) and the invocation dereferences them from the local
        cache — result payloads never route through the manager.  With
        ``inline_call_results`` the legacy wire discipline is kept:
        no result output, the pickled value rides the task_done reply.
        """
        for ref in scan_refs((task.args, dict(task.kwargs))):
            if any(f.cache_name == ref.cache_name for _n, f in task.inputs):
                continue
            if ref.cache_name not in self.registry:
                raise ManagerError(
                    f"proxy argument {ref.cache_name} references an unknown object"
                )
            task.add_input(self.registry.by_name(ref.cache_name), ref.cache_name)
        if self.inline_call_results or any(
            n == FunctionCall.RESULT_NAME for n, _f in task.outputs
        ):
            return
        task.add_output(TempFile(), FunctionCall.RESULT_NAME)

    def wait(self, timeout: Optional[float] = None) -> Optional[Task]:
        """Block until some task completes; None on timeout.

        Completed tasks may have succeeded or failed — inspect
        ``task.result``/``task.state``, mirroring the TaskVine API.
        """
        try:
            return self._completed.get(timeout=timeout)
        except queue.Empty:
            return None

    def empty(self) -> bool:
        """True when no submitted task remains incomplete."""
        with self._lock:
            return self.control.outstanding == 0

    def cancel(self, task: Task) -> bool:
        """Cancel a submitted task; returns False if already terminal.

        Queued tasks are withdrawn immediately; a running task's whole
        process group is killed at the worker.  A cancelled task is
        delivered through :meth:`wait` with state ``CANCELLED``.
        """
        with self._lock:
            return self.control.cancel(task)

    def run_until_done(self, timeout: float = 300.0) -> list[Task]:
        """Convenience driver: wait for every outstanding task.

        Raises :class:`ManagerError` if the deadline passes first.
        """
        deadline = time.time() + timeout
        finished = []
        while not self.empty():
            remaining = deadline - time.time()
            if remaining <= 0:
                raise ManagerError(
                    f"workflow did not finish within {timeout}s "
                    f"({self.control.outstanding} tasks outstanding)"
                )
            t = self.wait(timeout=min(1.0, remaining))
            if t is not None:
                finished.append(t)
        while True:  # drain anything that raced the empty() check
            t = self.wait(timeout=0.01)
            if t is None:
                break
            finished.append(t)
        return finished

    # -- serverless ----------------------------------------------------

    def create_library(
        self,
        name: str,
        functions: Sequence[Callable],
        resources: Resources = Resources(cores=1),
        function_slots: int = 1,
    ) -> Library:
        """Define a library of Python functions for serverless calls."""
        library = Library(name, functions)
        with self._lock:
            if name in self.control.libraries:
                raise ManagerError(f"library {name!r} already created")
            self.control.libraries[name] = _LibraryState(
                library, resources, function_slots
            )
        return library

    def install_library(self, name: str) -> None:
        """Deploy the library to every current and future worker."""
        with self._lock:
            self.control.install_library(name)

    # -- tenancy ---------------------------------------------------------

    def set_tenant_quota(
        self,
        tenant: str,
        task_quota: Optional[int] = None,
        byte_quota: Optional[int] = None,
    ) -> None:
        """Override one tenant's quotas (None = unlimited dimension)."""
        with self._lock:
            self.control.set_tenant_quota(tenant, task_quota, byte_quota)

    # -- data retrieval ---------------------------------------------------

    def fetch_bytes(self, f: File, timeout: float = 60.0) -> bytes:
        """Fetch a file's content back to the application.

        Buffers are returned directly; local files are read from disk;
        anything else is pulled from a worker replica.  Directory
        objects are returned as an uncompressed tar stream.
        """
        if isinstance(f, BufferFile):
            return f.data
        if isinstance(f, LocalFile):
            with open(f.path, "rb") as fh:
                return fh.read()
        name = f.cache_name
        if name is None:
            raise ManagerError(f"file {f.file_id} was never declared")
        return self._fetch_result_bytes(name, timeout=timeout)

    def _fetch_result_bytes(self, cache_name: str, timeout: float = 60.0) -> bytes:
        """Resolve a cache name to bytes through the fetch plane.

        This is the fetcher bound into every published
        :class:`ResultProxy` and the backend of :meth:`fetch_bytes`:
        live holders are asked first (retrying across them if one dies
        or denies mid-serve), then the memo store's retained payload,
        then lineage regeneration.  Raises when every source comes up
        empty or the deadline passes.
        """
        waiter: "queue.Queue[Optional[bytes]]" = queue.Queue()
        with self._lock:
            self._request_payload(cache_name, waiter)
        try:
            data = waiter.get(timeout=timeout)
        except queue.Empty:
            raise ManagerError(f"timed out fetching {cache_name}") from None
        if data is None:
            raise ManagerError(f"no worker holds {cache_name}")
        return data

    # -- the fetch plane --------------------------------------------------

    def _request_payload(self, name: str, waiter=None) -> None:
        """Ensure the bytes of ``name`` are being fetched; park ``waiter``.

        Concurrent requests for one name share a single in-flight
        resolution: one ``send_back`` on the wire, every waiter served
        from the same reply.  Callers hold the state lock.
        """
        st = self._fetch_states.get(name)
        if st is not None:
            if waiter is not None:
                st.waiters.append(waiter)
            return
        st = self._fetch_states[name] = _FetchState()
        if waiter is not None:
            st.waiters.append(waiter)
        self._fetch_advance(name, st)

    def _fetch_advance(self, name: str, st: _FetchState) -> None:
        """Ask the next source for ``name``'s bytes.

        Source order: an untried live holder (lowest worker id, so the
        choice is deterministic), the memo store's retained payload,
        then lineage regeneration — the fetch parks (``asked=None``)
        until the regenerated replica's cache-update advances it.  With
        nothing left the fetch settles as unservable.
        """
        holders = [
            w
            for w in self.replicas.locate(name)
            if w in self.workers and w not in st.tried
        ]
        if holders:
            wid = min(holders)
            st.tried.add(wid)
            st.asked = wid
            self._send(self.workers[wid], {"type": M.SEND_BACK, "cache_name": name})
            return
        payload = self._memo_payload_bytes(name)
        if payload is not None:
            self._fetch_settle(name, payload)
            return
        # best-effort waiters (memo retention) never justify re-running
        # the producer; a value retrieval or an application fetch does
        needy = name in self._retrieving or any(
            not getattr(w, "best_effort", False) for w in st.waiters
        )
        if needy and name in self.registry and self.control._regenerate(name):
            st.asked = None  # parked: the regenerated replica advances it
            self.request_pump()
            return
        self._fetch_settle(name, None)

    def _fetch_settle(
        self, name: str, payload: Optional[bytes], worker_id: str = "@manager"
    ) -> None:
        """Resolve an in-flight fetch: serve every waiter at once."""
        st = self._fetch_states.pop(name, None)
        if st is None:
            return
        if payload is not None and st.waiters:
            self.control.count_fetch(worker_id, name, len(payload))
        for waiter in st.waiters:
            waiter.put(payload)
        if payload is None:
            self._fail_retrieval(name)

    def _fail_retrieval(self, name: str) -> None:
        """Fail a deferred value retrieval whose bytes are unrecoverable."""
        task = self._retrieving.get(name)
        if task is None or task.is_done or task.result is None:
            return  # nothing parked, or not yet a deferred completion
        self._retrieving.pop(name, None)
        result = task.result
        result.failure = result.failure or "result file missing at worker"
        self.control.finish_deferred(task, result)

    # -- lifecycle --------------------------------------------------------

    def drain_worker(self, worker_id: str) -> bool:
        """Gracefully drain one worker (elastic scale-down surface).

        Manager-initiated twin of the worker's ``draining`` announce:
        the fleet supervisor / autoscaler calls this to shrink the
        fleet without losing sole-holder cache objects.  Returns False
        when the worker is unknown or already draining.
        """
        with self._lock:
            return self.control.drain_worker(worker_id)

    def close(self, shutdown_workers: bool = True) -> None:
        """Garbage-collect workflow files and release all connections."""
        with self._lock:
            if self.control.closed:
                return
            self.control.closed = True
            # unblock every parked fetcher before the wires go away
            for st in self._fetch_states.values():
                for waiter in st.waiters:
                    waiter.put(None)
            self._fetch_states.clear()
            deletions = collect_workflow(self.control.registry, self.control.replicas)
            for wid, names in deletions.items():
                handle = self.workers.get(wid)
                if handle is None or not handle.alive:
                    continue
                for name in names:
                    try:
                        self._send(handle, {"type": M.UNLINK, "cache_name": name})
                    except (ProtocolError, OSError):
                        break
            handles = list(self.workers.values())
            client_handles = self.service.attached_handles()
        # stop the receive path first so no reads race the teardown: the
        # reactor unregisters every selector key before exiting, and only
        # then are the connections themselves torn down
        self._closing.set()
        if self._reactor_thread is not None:
            self._wake_reactor()
            self._reactor_thread.join(timeout=10)
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=10)
        # flush outboxes outside the lock, then tear connections down
        for handle in handles:
            if handle.alive and shutdown_workers:
                self._send(handle, {"type": M.SHUTDOWN})
            handle.stop_sender()
        for handle in handles:
            handle._sender.join(timeout=10)
            handle.conn.close()
        for chandle in client_handles:
            chandle.stop_sender()
            chandle._sender.join(timeout=10)
            chandle.conn.close()
        for timer in list(self._timers):
            timer.cancel()
        self._timers.clear()
        with self._lock:
            self.control.log.emit(self.now(), "workflow_done")
            try:
                # shutdown before close: closing the fd alone does not
                # wake a thread blocked in accept() (legacy accept loop)
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10)
        if self._reactor_thread is not None:
            self._wake_r.close()
            self._wake_w.close()
        if self._metrics_dumper is not None:
            self._metrics_dumper.stop()
        if self._txn_writer is not None:
            self._txn_writer.close()
        if self.journal is not None:
            self.journal.close()

    def crash(self) -> None:
        """Die abruptly, as ``kill -9`` would: no workflow GC, no
        SHUTDOWN to workers, no farewell events.

        Connections are simply severed — workers with a
        ``--reconnect`` window will back off and re-register with the
        next manager life, whose journal replay (the same
        ``journal_dir``) is the only record this life leaves behind.
        Used by crash-recovery tests; operational crashes need no help.
        """
        with self._lock:
            if self.control.closed:
                return
            self.control.closed = True
            handles = list(self.workers.values())
            client_handles = self.service.attached_handles()
        self._closing.set()
        if self._reactor_thread is not None:
            self._wake_reactor()
            self._reactor_thread.join(timeout=10)
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=10)
        for handle in handles + list(client_handles):
            handle.stop_sender()
            handle._sender.join(timeout=10)
            handle.conn.close()
        for timer in list(self._timers):
            timer.cancel()
        self._timers.clear()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10)
        if self._reactor_thread is not None:
            self._wake_r.close()
            self._wake_w.close()
        if self._metrics_dumper is not None:
            self._metrics_dumper.stop()
        # the journal and txn log hold only already-fsynced appends; a
        # real SIGKILL would leave exactly these bytes behind
        if self._txn_writer is not None:
            self._txn_writer.close()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "Manager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker admission and message handling
    # ------------------------------------------------------------------

    def _reaper_loop(self) -> None:
        """Reap silent workers and long-abandoned client sessions."""
        timeouts = [
            t
            for t in (self.worker_liveness_timeout, self.client_session_ttl)
            if t is not None
        ]
        interval = max(1.0, min(timeouts) / 4) if timeouts else 15.0
        while not self._closing.wait(interval):
            if self.worker_liveness_timeout is not None:
                self._reap_stale(time.time())
            self._reap_sessions(time.time())
            self._reap_fetches(time.monotonic())

    def _reap_fetches(self, now: float) -> list[str]:
        """Fail fetches stuck past the TTL (orphaned-waiter hygiene).

        A fetch normally resolves or fails through holder replies,
        worker-loss retries, or regeneration; this sweep is the
        backstop for the ways those signals can be lost (a reply frame
        dropped mid-teardown, a regeneration whose producer hangs), so
        no client ever waits on a fetch the manager has forgotten.
        """
        with self._lock:
            stale = [
                name
                for name, st in self._fetch_states.items()
                if now - st.started > self.fetch_ttl
            ]
            for name in stale:
                log.warning(
                    "fetch of %s abandoned after %.0fs", name, self.fetch_ttl
                )
                self._fetch_settle(name, None)
        return stale

    def _find_stale(self, now: float) -> list[_WorkerHandle]:
        """Workers silent past the liveness timeout as of ``now``."""
        with self._lock:
            return [
                h for h in self.workers.values()
                if h.alive and now - h.last_seen > self.worker_liveness_timeout
            ]

    def _reap_stale(self, now: float) -> list[str]:
        """Declare every stale worker dead; returns their ids.

        Split from the reaper thread's sleep loop so liveness handling
        is testable against a pinned clock.
        """
        stale = self._find_stale(now)
        for handle in stale:
            log.warning(
                "worker %s silent for %.0fs; declaring it dead",
                handle.worker_id, now - handle.last_seen,
            )
            self._drop_connection(handle)
        return [h.worker_id for h in stale]

    def _reap_sessions(self, now: float) -> list[str]:
        """Expire long-detached client sessions (always-on hygiene)."""
        if self.client_session_ttl is None:
            return []
        with self._lock:
            return self.service.reap_sessions(now, self.client_session_ttl)

    def _drop_connection(self, handle: _WorkerHandle) -> None:
        """Force a worker's connection down from any thread.

        In reactor mode only a ``shutdown`` is issued: the fd stays
        valid, the reactor wakes with EOF readiness and unwinds the
        connection itself — closing an fd that is still registered in a
        live selector from another thread would race the event loop.
        """
        if self._reactor_thread is not None:
            try:
                handle.conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        else:
            handle.conn.close()  # reader thread unwinds into _on_worker_gone

    def _register_worker(self, conn: Connection, msg: dict) -> _WorkerHandle:
        """Admission bookkeeping shared by both receive paths."""
        handle = _WorkerHandle(
            conn,
            Resources.from_dict(msg["capacity"]),
            msg.get("transfer_host", "127.0.0.1"),
            int(msg["transfer_port"]),
        )
        handle.workdir = msg.get("workdir")
        with self._lock:
            self.workers[handle.worker_id] = handle
            log.info(
                "worker %s %s (%s cores, transfer port %d, %d cached objects)",
                handle.worker_id,
                "rejoined" if msg.get("rejoin") else "joined",
                handle.capacity.cores,
                handle.transfer_port, len(msg.get("cached", [])),
            )
            # adopt persisted worker-lifetime cache contents (hot cache)
            state = self.control.worker_joined(
                handle.worker_id,
                handle.pool,
                cached=[
                    (name, int(size)) for name, size, _level in msg.get("cached", [])
                ],
                rejoin=bool(msg.get("rejoin")),
            )
            handle.running = state.running
        return handle

    # -- event-driven receive path (the default) ------------------------

    def _wake_reactor(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except OSError:
            pass

    def _reactor_loop(self) -> None:
        """Single-threaded receive path: accept, reassemble, dispatch."""
        sel = self._sel
        while not self._closing.is_set():
            events = sel.select(timeout=0.5)
            if self._closing.is_set():
                break
            if not events:
                continue
            started = time.monotonic()
            self._reactor_defer = True
            try:
                for key, _mask in events:
                    if key.data == "accept":
                        self._reactor_accept()
                    elif key.data == "wake":
                        try:
                            self._wake_r.recv(4096)
                        except OSError:
                            pass
                    else:
                        self._reactor_service(key.data)
                with self._lock:
                    if self._pump_wanted:
                        self._pump_wanted = False
                        if not self.control.closed:
                            self.control.pump()
                    # hand each worker's sweep output to its sender as
                    # one write (pump included: defer flag still set)
                    for handle in self.workers.values():
                        self._flush_pending(handle)
                    for chandle in self.service.attached_handles():
                        self._flush_pending(chandle)
            finally:
                self._reactor_defer = False
            self._m_loop.observe(time.monotonic() - started)
        # teardown: unregister every key; close only unadmitted sockets
        # (admitted workers' connections are torn down by close() after
        # their sender threads flush)
        for key in list(sel.get_map().values()):
            try:
                sel.unregister(key.fileobj)
            except (KeyError, ValueError):
                pass
            if (
                isinstance(key.data, _ConnState)
                and key.data.handle is None
                and key.data.client is None
            ):
                key.data.conn.close()
        sel.close()

    def _reactor_accept(self) -> None:
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        conn = Connection(sock)
        self._sel.register(sock, selectors.EVENT_READ, _ConnState(conn))

    def _reactor_service(self, state: _ConnState) -> None:
        """Drain one readable connection (bounded, then back to select).

        The per-call read budget keeps one fast sender from starving
        other connections; epoll is level-triggered, so leftover bytes
        re-report readiness on the next loop.
        """
        try:
            for _ in range(64):
                data = state.conn.recv_ready()
                if data is None:
                    return  # nothing more right now
                state.frames.feed(data)
                self._reactor_drain(state)
                if data == b"":
                    self._reactor_close(state)
                    return
                if len(data) < IO_CHUNK:
                    # short read: the socket is almost surely drained —
                    # skip the would-be-EAGAIN recv; epoll is level-
                    # triggered, so any leftover re-reports readiness
                    return
        except (ProtocolError, WireError, OSError) as exc:
            if state.handle is not None:
                log.warning(
                    "dropping worker %s: %s", state.handle.worker_id, exc
                )
            self._reactor_close(state)

    def _reactor_drain(self, state: _ConnState) -> None:
        """Dispatch every complete item the reassembler can yield."""
        while True:
            item = state.frames.next_item()
            if item is None:
                return
            kind, value = item
            if kind == "bytes":
                msg, state.pending = state.pending, None
                if state.client is not None:
                    with self._lock:
                        self.service.handle_message(
                            state.client, msg["type"], msg, value
                        )
                else:
                    self._dispatch(state.handle, msg["type"], msg, value)
                continue
            msg = value
            self._m_frames_in.inc()
            if state.client is not None:
                self._client_frame(state, msg)
                continue
            mtype = validate(msg)  # WireError unwinds the connection
            if state.handle is None:
                role = session_kind(mtype)
                if role == SESSION_CLIENT:
                    with self._lock:
                        self.service.hello(state, msg)
                    continue
                if role != SESSION_WORKER:
                    raise ProtocolError(
                        f"expected a session-opening frame, got {mtype!r}"
                    )
                state.handle = self._register_worker(state.conn, msg)
            elif mtype == M.FILE_DATA and msg.get("found"):
                state.pending = msg
                state.frames.expect_bytes(int(msg["size"]))
            elif mtype == M.TASK_DONE and msg.get("result_size"):
                state.pending = msg
                state.frames.expect_bytes(int(msg["result_size"]))
            else:
                self._dispatch(state.handle, mtype, msg, None)

    def _client_frame(self, state: _ConnState, msg: dict) -> None:
        """Validate and route one frame from an attached client.

        Protocol violations on a client session answer with a
        ``client_reject`` frame instead of unwinding the connection —
        a misbehaving tenant must not lose its attachment over one bad
        request.  (Workers keep the strict unwind: their frames come
        from manager-trusted code.)
        """
        sess = state.client
        self._m_messages_in.inc()
        try:
            mtype = validate(msg)
            if mtype not in CLIENT_KINDS:
                raise WireError(f"{mtype!r} is not a client message")
        except WireError as exc:
            with self._lock:
                self.service.reject(sess, "protocol", str(exc), ref=msg.get("ref"))
            return
        spec = msg.get("spec") or {}
        if (
            mtype == M.DECLARE_FILE
            and spec.get("kind", "buffer") == "buffer"
            and int(spec.get("size", 0)) > 0
        ):
            state.pending = msg
            state.frames.expect_bytes(int(spec["size"]))
            return
        if mtype == M.CREATE_LIBRARY and int(msg.get("payload_size", 0)) > 0:
            # the serialized function table follows as one bulk payload
            state.pending = msg
            state.frames.expect_bytes(int(msg["payload_size"]))
            return
        with self._lock:
            self.service.handle_message(sess, mtype, msg, None)

    def _dispatch(
        self, handle: _WorkerHandle, mtype: str, msg: dict, payload: Optional[bytes]
    ) -> None:
        handle.last_seen = time.time()
        with self._lock:
            self._on_worker_message(handle, mtype, msg, payload)

    def _reactor_close(self, state: _ConnState) -> None:
        try:
            self._sel.unregister(state.conn.sock)
        except (KeyError, ValueError):
            pass
        state.conn.close()
        if state.handle is not None:
            with self._lock:
                self._on_worker_gone(state.handle)
        elif state.client is not None:
            with self._lock:
                self.service.client_gone(state)

    # -- legacy threaded receive path (benchmark baseline) ---------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._admit, args=(Connection(sock),), daemon=True
            ).start()

    def _admit(self, conn: Connection) -> None:
        try:
            msg = conn.recv_message()
            if validate(msg) != M.REGISTER:
                conn.close()
                return
        except (ProtocolError, OSError):
            conn.close()
            return
        handle = self._register_worker(conn, msg)
        reader = threading.Thread(
            target=self._reader_loop, args=(handle,), daemon=True
        )
        reader.start()

    def _reader_loop(self, handle: _WorkerHandle) -> None:
        try:
            while True:
                msg = handle.conn.recv_message()
                self._m_frames_in.inc()
                mtype = validate(msg)
                payload: Optional[bytes] = None
                if mtype == M.FILE_DATA and msg.get("found"):
                    payload = handle.conn.recv_bytes(int(msg["size"]))
                elif mtype == M.TASK_DONE and msg.get("result_size"):
                    payload = handle.conn.recv_bytes(int(msg["result_size"]))
                self._dispatch(handle, mtype, msg, payload)
        except (ProtocolError, OSError):
            pass
        with self._lock:
            self._on_worker_gone(handle)

    def _on_worker_message(
        self, handle: _WorkerHandle, mtype: str, msg: dict, payload: Optional[bytes]
    ) -> None:
        if mtype == M.BATCH:
            # coalesced payload-free notices (already schema-validated).
            # Defer pumps until the whole envelope is applied: one pump
            # absorbs all the state changes instead of one per notice.
            subs = msg["messages"]
            self._m_batch_fill.observe(len(subs))
            self._defer_pump = True
            try:
                for sub in subs:
                    self._on_worker_message(handle, sub["type"], sub, None)
            finally:
                self._defer_pump = False
            if self._pump_wanted:
                self._pump_wanted = False
                if not self.control.closed:
                    # re-defers to the sweep's single pump when the
                    # reactor is mid-sweep; pumps now in threads mode
                    self.request_pump()
            return
        self._m_messages_in.inc()
        if mtype == M.CACHE_UPDATE:
            self._on_cache_update(handle, msg)
        elif mtype == M.CACHE_INVALID:
            self.control.on_cache_invalid(
                handle.worker_id,
                msg["cache_name"],
                msg.get("transfer_id"),
                msg.get("reason", "transfer failed"),
                corrupt=bool(msg.get("corrupt")),
            )
        elif mtype == M.FAULT:
            # a chaos-run worker announcing self-sabotage, so the txn
            # log pairs the injected fault with the recovery it forces
            self.control.note_fault(
                handle.worker_id, msg["category"], msg.get("cache_name")
            )
        elif mtype == M.DRAINING:
            # a graceful departure: stop placing onto the worker, migrate
            # its sole-holder objects, answer with shutdown when done
            self.control.drain_worker(handle.worker_id)
        elif mtype == M.TASK_DONE:
            self._on_task_done(handle, msg, payload)
        elif mtype == M.LIBRARY_READY:
            self._on_library_ready(handle, msg)
        elif mtype == M.FILE_DATA:
            self._on_file_data(handle, msg, payload)

    def _on_cache_update(self, handle: _WorkerHandle, msg: dict) -> None:
        name = msg["cache_name"]
        self.control.on_cache_update(
            handle.worker_id, name, int(msg["size"]), msg.get("transfer_id")
        )
        # a value-mode task finished before its result replica
        # registered; now that the replica exists, pull the value back
        task = self._awaiting_result.pop(name, None)
        if task is not None:
            self._request_payload(name)
        st = self._fetch_states.get(name)
        if st is not None and st.asked is None:
            # a fetch parked on lineage regeneration: the regenerated
            # replica just landed, so the (possibly re-tried) holder
            # can serve it now
            st.tried.discard(handle.worker_id)
            self._fetch_advance(name, st)

    # -- task completion --------------------------------------------------

    def _on_task_done(
        self, handle: _WorkerHandle, msg: dict, payload: Optional[bytes]
    ) -> None:
        task_id = msg["task_id"]
        if task_id.startswith("lib:"):
            self.control.on_library_failed(handle.worker_id, task_id[len("lib:"):])
            return
        result = TaskResult(
            exit_code=int(msg["exit_code"]),
            output=msg.get("output", ""),
            failure=msg.get("failure"),
            exceeded=list(msg.get("exceeded", [])),
            measured=(
                Resources.from_dict(msg["measured"]) if "measured" in msg else None
            ),
            execution_time=float(msg.get("execution_time", 0.0)),
            staging_time=float(msg.get("staging_time", 0.0)),
        )
        task = self.control.on_task_result(handle.worker_id, task_id, result)
        if task is None:
            return  # stale report, or requeued by a retry policy
        if isinstance(task, FunctionCall):
            self._on_call_done(handle, task, result, msg, payload)
            return
        if isinstance(task, PythonTask) and result.exit_code in (0, 1):
            if task._output_set:
                # regeneration rerun: the value was already retrieved
                self.control.complete_task(task, task.result or result)
                return
            result_name = task.outputs[-1][1].cache_name
            if self.replicas.replica_count(result_name):
                task.result = result
                self._request_payload(result_name)
                self.control.complete_task(task, result, defer=True)
                return  # completion finishes in _on_file_data
            if result_name in msg.get("harvested", ()):
                # the worker harvested the result but its cache-update is
                # still in flight behind this message; defer until it lands
                task.result = result
                self._awaiting_result[result_name] = task
                self.control.complete_task(task, result, defer=True)
                return
            # no result file anywhere: fail loudly instead of handing the
            # application a DONE task whose output() raises
            tail = (result.output or "").strip()[-500:]
            result.failure = result.failure or (
                f"result file never produced (exit {result.exit_code})"
                + (f": {tail}" if tail else "")
            )
        self.control.complete_task(task, result)

    def _on_call_done(
        self,
        handle: _WorkerHandle,
        task: FunctionCall,
        result: TaskResult,
        msg: dict,
        payload: Optional[bytes],
    ) -> None:
        """Route a finished function call by its result discipline."""
        if payload is not None:
            # legacy inline result: the pickled value rode the task_done
            # reply through the manager — counted as a retrieval so the
            # bench can hold inline against the by-reference plane
            self.control.count_retrieval(
                handle.worker_id, f"result:{task.task_id}", len(payload)
            )
            self._set_call_output(task, result, payload)
            self.control.complete_task(task, result)
            return
        result_name = _call_result_name(task)
        if result_name is None or result.exit_code != 0:
            # an inline call that produced no reply payload (the library
            # never ran), or a failed invocation: terminal either way
            if result.exit_code != 0 and not result.failure:
                result.failure = f"invocation failed (exit {result.exit_code})"
            self.control.complete_task(task, result)
            return
        if task._output_set:
            # regeneration rerun: the value was already delivered
            self.control.complete_task(task, task.result or result)
            return
        if task.by_reference or getattr(task, "session_token", None) is not None:
            # by-reference: the envelope stays in the worker's cache and
            # only a ref travels — the proxy is stamped at delivery
            self.control.complete_task(task, result)
            return
        # loopback value semantics: the application asked for a value,
        # not a proxy, so pull the envelope back like a python result
        if self.replicas.replica_count(result_name):
            task.result = result
            self._retrieving[result_name] = task
            self._request_payload(result_name)
            self.control.complete_task(task, result, defer=True)
            return  # completion finishes in _on_file_data
        if result_name in msg.get("harvested", ()):
            task.result = result
            self._retrieving[result_name] = task
            self._awaiting_result[result_name] = task
            self.control.complete_task(task, result, defer=True)
            return
        tail = (result.output or "").strip()[-500:]
        result.failure = result.failure or (
            "result file never produced" + (f": {tail}" if tail else "")
        )
        self.control.complete_task(task, result)

    def _set_call_output(self, task: FunctionCall, result: TaskResult, blob: bytes) -> None:
        try:
            decoded = ser.loads(blob)
        except ser.SerializationError as exc:
            result.failure = f"result decode failed: {exc}"
            return
        if decoded.get("ok"):
            task.set_output_value(decoded.get("value"))
        else:
            result.failure = decoded.get("traceback") or repr(decoded.get("error"))
            result.exit_code = result.exit_code or 1

    def _on_library_ready(self, handle: _WorkerHandle, msg: dict) -> None:
        name = msg["library"]
        if name in self.control.libraries:
            handle.libraries.add(name)
        self.control.on_library_ready(handle.worker_id, name)

    def _on_file_data(
        self, handle: Optional[_WorkerHandle], msg: dict, payload: Optional[bytes]
    ) -> None:
        name = msg["cache_name"]
        wid = handle.worker_id if handle is not None else "@manager"
        if payload is None:
            # the asked worker denies holding the object (evicted,
            # corrupt): move the fetch on to the next source instead of
            # failing every waiter on one holder's say-so
            st = self._fetch_states.get(name)
            if st is not None and st.asked == wid:
                self.control.count_fetch_retry(name, wid, "not_found")
                st.asked = None
                self._fetch_advance(name, st)
                return
            if st is not None:
                return  # a stale miss from a superseded source
            self._fail_retrieval(name)
            return
        task = self._retrieving.pop(name, None)
        if task is not None and not task.is_done and task.result is not None:
            self.control.count_retrieval(wid, name, len(payload))
            result = task.result
            self._decode_value(task, result, payload)
            self.control.finish_deferred(task, result)
        self._fetch_settle(name, payload, worker_id=wid)

    def _decode_value(self, task: Task, result: TaskResult, payload: bytes) -> None:
        """Decode a pulled-back result envelope into a value-mode task."""
        try:
            decoded = ser.loads(payload)
        except ser.SerializationError as exc:
            result.failure = f"result decode failed: {exc}"
            return
        if decoded.get("ok"):
            task.set_output_value(decoded.get("value"))
            return
        if isinstance(task, PythonTask):
            # exit-1 semantics: the exception is the task's output
            task.set_output_value(None)
            result.failure = decoded.get("traceback") or "remote exception"
            err = decoded.get("error")
            if isinstance(err, BaseException):
                task.set_output_value(err)
            return
        result.failure = decoded.get("traceback") or repr(decoded.get("error"))
        result.exit_code = result.exit_code or 1

    def _on_worker_gone(self, handle: _WorkerHandle) -> None:
        if not handle.alive:
            return
        handle.alive = False
        log.warning("worker %s disconnected", handle.worker_id)
        self.workers.pop(handle.worker_id, None)
        handle.stop_sender()
        self.control.worker_left(handle.worker_id)
        # in-flight fetches asked of the dead worker move on to the
        # next holder instead of stranding their waiters until timeout
        for name, st in list(self._fetch_states.items()):
            if st.asked == handle.worker_id:
                self.control.count_fetch_retry(name, handle.worker_id, "worker_lost")
                st.asked = None
                self._fetch_advance(name, st)

    # -- low-level send -------------------------------------------------------

    def _send_object(
        self, handle: _WorkerHandle, cache_name: str, level: CacheLevel, transfer_id: str
    ) -> None:
        """Push a manager-held object (buffer or local path) to a worker."""
        f = self.registry.by_name(cache_name)
        header = {
            "type": M.PUT_FILE,
            "cache_name": cache_name,
            "level": int(level),
            "transfer_id": transfer_id,
        }
        if isinstance(f, BufferFile):
            header["size"] = len(f.data)
            self._send(handle, header, f.data)
        elif isinstance(f, LocalFile):
            path = f.path

            def push(conn: Connection) -> None:
                # runs on the sender thread: packing and streaming large
                # objects must not stall the manager's state lock
                if os.path.isdir(path):
                    from repro.worker.transfers import pack_directory

                    with tempfile.NamedTemporaryFile(suffix=".tar", delete=False) as tf:
                        tar_path = tf.name
                    try:
                        pack_directory(path, tar_path)
                        size = os.path.getsize(tar_path)
                        header["size"] = size
                        header["format"] = "tar"
                        conn.send_message(header)
                        conn.send_file(tar_path, size)
                    finally:
                        os.unlink(tar_path)
                else:
                    size = os.path.getsize(path)
                    header["size"] = size
                    conn.send_message(header)
                    conn.send_file(path, size)

            self._m_frames_out.inc()
            self._flush_pending(handle)
            handle.enqueue(push)
        elif self.memo_store is not None and self.memo_store.has_payload(cache_name):
            # memo-hit output with no live replica: the manager serves
            # the retained payload (validated at hit time) like a buffer
            path = self.memo_store.payload_path(cache_name)

            def push_payload(conn: Connection) -> None:
                size = os.path.getsize(path)
                header["size"] = size
                conn.send_message(header)
                conn.send_file(path, size)

            self._m_frames_out.inc()
            self._flush_pending(handle)
            handle.enqueue(push_payload)
        else:
            raise ManagerError(
                f"{type(f).__name__} {cache_name} cannot be manager-sourced"
            )

    def _send(self, handle: _WorkerHandle, message: dict, payload: Optional[bytes] = None) -> None:
        """Queue a control message (plus optional byte payload).

        Callers hold the state lock.  While the reactor is mid event
        sweep, payload-free frames it generates are buffered on the
        handle and flushed as a single sender wakeup at sweep end —
        one ``sendall`` carries every command the sweep produced for
        that worker.  Any other sender first flushes the buffer, so
        per-worker wire order always matches issue order.
        """
        self._m_frames_out.inc()
        if (
            payload is None
            and self._reactor_defer
            and threading.current_thread() is self._reactor_thread
        ):
            handle.pending_frames.append(encode_frame(message))
            return
        self._flush_pending(handle)

        def do(conn: Connection) -> None:
            conn.send_message(message)
            if payload is not None:
                conn.send_bytes(payload)

        handle.enqueue(do)

    @staticmethod
    def _flush_pending(handle: _WorkerHandle) -> None:
        """Flush sweep-buffered frames as one write.

        Fast path: when the worker's sender thread is idle (nothing
        queued, nothing mid-write), the frames go straight out with one
        non-blocking ``send`` — no thread wakeup at all.  Any leftover
        on a full socket buffer, or any contention, falls back to the
        sender thread, which also preserves ordering behind whatever is
        already queued.
        """
        if not handle.pending_frames:
            return
        blob = b"".join(handle.pending_frames)
        handle.pending_frames = []
        if handle.wire_lock.acquire(blocking=False):
            try:
                if handle.outbox.empty():
                    try:
                        sent = handle.conn.sock.send(blob, _MSG_DONTWAIT)
                    except (BlockingIOError, InterruptedError):
                        sent = 0
                    except OSError:
                        handle.alive = False
                        return
                    if sent < len(blob):
                        rest = blob[sent:]
                        handle.enqueue(lambda conn: conn.send_frame(rest))
                    return
            finally:
                handle.wire_lock.release()
        handle.enqueue(lambda conn: conn.send_frame(blob))
