"""The TaskVine manager: policy engine for the real multi-process runtime.

The manager directs the overall execution (paper §2.2): it accepts the
workflow definition, names every file, dispatches tasks to workers,
directs file transfers (manager→worker, peer-to-peer, URL, mini-task
staging), collects results, and performs garbage collection.  As a
general rule the manager makes all *policy* decisions while workers
provide the *mechanisms* — and the policy here is the very same code
the simulator runs: :class:`~repro.core.scheduler.Scheduler` over the
File Replica Table and Current Transfer Table.

Concurrency model: one listening/accept thread admits workers; each
worker connection gets a reader thread; all shared state is guarded by
a single re-entrant lock, and every outbound command is sent while
holding it.  Application threads interact through the public API
(declare/submit/wait/fetch) which takes the same lock, so the manager
is safe to drive from ordinary sequential application code.
"""

from __future__ import annotations

import collections
import itertools
import os
import queue
import tempfile
import threading
import time
import urllib.parse
from typing import Callable, Optional, Sequence

from repro.core.events import EventLog
from repro.core.files import (
    BufferFile,
    CacheLevel,
    File,
    FileRegistry,
    LocalFile,
    MiniTaskFile,
    TempFile,
    URLFile,
)
from repro.core.gc import collect_workflow
from repro.core.library import FunctionCall, Library
from repro.core.naming import Namer
from repro.core.replica_table import ReplicaTable
from repro.core.resources import ResourcePool, Resources
from repro.core.scheduler import Scheduler, WorkerView
from repro.core.task import MiniTask, PythonTask, Task, TaskResult, TaskState
from repro.core.transfer_table import MANAGER_SOURCE, TransferTable
from repro.protocol import serialization as ser
from repro.protocol.connection import Connection, ProtocolError, listen
from repro.protocol.messages import M, validate
from repro.util.logging import get_logger

__all__ = ["Manager", "ManagerError"]

log = get_logger(__name__)

#: fixed-source marker for worker-resident-only files (temps)
NO_SOURCE = "@none"
MINITASK_SOURCE = "@minitask"


class ManagerError(RuntimeError):
    """Workflow-level failure raised to the application."""


class _WorkerHandle:
    """Manager-side state for one connected worker.

    Outbound traffic goes through a per-worker sender thread fed by an
    outbox of closures, so large object pushes never execute while the
    manager's state lock is held — the lock is only ever taken for
    bookkeeping, which makes reader/sender deadlock impossible.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        conn: Connection,
        capacity: Resources,
        transfer_host: str,
        transfer_port: int,
    ) -> None:
        self.worker_id = f"W{next(self._ids):03d}"
        self.conn = conn
        self.capacity = capacity
        self.pool = ResourcePool(capacity)
        self.transfer_host = transfer_host
        self.transfer_port = transfer_port
        self.running: set[str] = set()
        self.libraries: set[str] = set()
        self.alive = True
        self.last_seen = time.time()
        self.outbox: "queue.Queue[Optional[Callable[[Connection], None]]]" = queue.Queue()
        self._sender = threading.Thread(target=self._send_loop, daemon=True)
        self._sender.start()

    def _send_loop(self) -> None:
        while True:
            fn = self.outbox.get()
            if fn is None:
                return
            try:
                fn(self.conn)
            except (ProtocolError, OSError):
                self.alive = False
                return

    def enqueue(self, fn: Callable[[Connection], None]) -> None:
        """Queue an outbound operation for the sender thread."""
        self.outbox.put(fn)

    def stop_sender(self) -> None:
        """Stop the sender thread after flushing queued sends."""
        self.outbox.put(None)


class _StagingJob:
    """A pending mini-task materialization at one worker."""

    def __init__(self, file: MiniTaskFile, worker_id: str, transfer_id: str) -> None:
        self.file = file
        self.worker_id = worker_id
        self.transfer_id = transfer_id
        self.started = False


class _LibraryState:
    """Install state of one library across workers."""

    def __init__(self, library: Library, resources: Resources, slots: int) -> None:
        self.library = library
        self.resources = resources
        self.slots = slots
        self.payload = ser.dumps_portable(dict(library.functions))
        self.installed = False
        #: worker_id -> "installing" | "ready" | "failed"
        self.state: dict[str, str] = {}


class Manager:
    """Coordinates workers to execute a declared workflow (paper Fig. 1)."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        worker_transfer_limit: Optional[int] = 3,
        source_transfer_limit: Optional[int] = 100,
        locality: bool = True,
        seed: Optional[int] = None,
        transfer_retries: int = 3,
        resource_learning: bool = False,
        worker_liveness_timeout: Optional[float] = 60.0,
    ) -> None:
        self._lock = threading.RLock()
        #: per-category usage learning; when enabled, tasks that did not
        #: size themselves explicitly start at the learned allocation
        from repro.core.categories import CategoryTracker

        self.resource_learning = resource_learning
        self.categories = CategoryTracker()
        self.namer = Namer(seed=seed)
        self.namer.header_fetcher = self._url_headers
        self.registry = FileRegistry()
        self.replicas = ReplicaTable()
        self.transfers = TransferTable(
            worker_limit=worker_transfer_limit, source_limit=source_transfer_limit
        )
        self.scheduler = Scheduler(self.replicas, self.transfers, locality=locality)
        self.log = EventLog()
        self._t0 = time.time()
        self.transfer_retries = transfer_retries

        self.tasks: dict[str, Task] = {}
        self._ready: list[Task] = []
        self._dispatched: dict[str, Task] = {}
        self._running: dict[str, Task] = {}
        self._completed: "queue.Queue[Task]" = queue.Queue()
        self._outstanding = 0

        self.workers: dict[str, _WorkerHandle] = {}
        self.fixed_sources: dict[str, str] = {}
        self.sizes: dict[str, int] = {}
        self._retrieving: dict[str, Task] = {}  # result cache_name -> python task
        self._fetch_waiters: dict[str, list[queue.Queue]] = collections.defaultdict(list)
        self._staging: list[_StagingJob] = []
        self._transfer_attempts: collections.Counter = collections.Counter()
        self._pinned: dict[str, collections.Counter] = collections.defaultdict(
            collections.Counter
        )
        self._input_refs: collections.Counter = collections.Counter()
        self.libraries: dict[str, _LibraryState] = {}
        self._lib_load: collections.Counter = collections.Counter()
        self._closed = False

        self._listener = listen(host, port)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        #: seconds of silence (no message, not even a heartbeat) after
        #: which a worker is declared dead; None disables the reaper
        self.worker_liveness_timeout = worker_liveness_timeout
        if worker_liveness_timeout is not None:
            threading.Thread(target=self._reaper_loop, daemon=True).start()

    def _reaper_loop(self) -> None:
        """Close connections of workers that stopped talking entirely."""
        interval = max(1.0, (self.worker_liveness_timeout or 60.0) / 4)
        while not self._closed:
            time.sleep(interval)
            now = time.time()
            with self._lock:
                stale = [
                    h for h in self.workers.values()
                    if h.alive and now - h.last_seen > self.worker_liveness_timeout
                ]
            for handle in stale:
                log.warning(
                    "worker %s silent for %.0fs; declaring it dead",
                    handle.worker_id, now - handle.last_seen,
                )
                handle.conn.close()  # reader thread unwinds into _on_worker_gone

    # ------------------------------------------------------------------
    # public API: declarations
    # ------------------------------------------------------------------

    def _now(self) -> float:
        return time.time() - self._t0

    def declare_local(self, path: str, cache: "CacheLevel | str" = CacheLevel.WORKFLOW) -> LocalFile:
        """Declare a file or directory from the shared filesystem."""
        f = LocalFile(os.path.abspath(path), cache)
        with self._lock:
            self.namer.assign(f)
            self.registry.register(f)
            self.fixed_sources[f.cache_name] = MANAGER_SOURCE
            self.sizes[f.cache_name] = f.size or self._local_size(f.path)
        return f

    @staticmethod
    def _local_size(path: str) -> int:
        if os.path.isdir(path):
            return sum(
                os.path.getsize(os.path.join(r, name))
                for r, _d, files in os.walk(path)
                for name in files
            )
        return os.path.getsize(path) if os.path.exists(path) else 0

    def declare_buffer(
        self, data: "bytes | str", cache: "CacheLevel | str" = CacheLevel.WORKFLOW
    ) -> BufferFile:
        """Declare literal bytes from the application's memory."""
        f = BufferFile(data, cache)
        with self._lock:
            self.namer.assign(f)
            self.registry.register(f)
            self.fixed_sources[f.cache_name] = MANAGER_SOURCE
            self.sizes[f.cache_name] = f.size or 0
        return f

    def declare_url(self, url: str, cache: "CacheLevel | str" = CacheLevel.WORKFLOW) -> URLFile:
        """Declare a remote object; workers fetch it on demand."""
        f = URLFile(url, cache)
        with self._lock:
            self.namer.assign(f)
            self.registry.register(f)
            host = urllib.parse.urlparse(url).netloc or "localfs"
            self.fixed_sources[f.cache_name] = f"url:{host}"
            self.sizes[f.cache_name] = self._url_size(url)
        return f

    @staticmethod
    def _url_size(url: str) -> int:
        if url.startswith("file://"):
            path = url[len("file://"):]
            return Manager._local_size(path) if os.path.exists(path) else 0
        return 0

    @staticmethod
    def _url_headers(url: str) -> dict[str, str]:
        """Pseudo-headers for naming: stat-derived for ``file://`` URLs."""
        if url.startswith("file://"):
            path = url[len("file://"):]
            st = os.stat(path)
            return {
                "ETag": f"{st.st_ino:x}-{st.st_size:x}",
                "Last-Modified": str(st.st_mtime_ns),
            }
        try:
            import urllib.request

            req = urllib.request.Request(url, method="HEAD")
            with urllib.request.urlopen(req, timeout=30) as resp:
                return dict(resp.headers.items())
        except OSError:
            return {}

    def declare_temp(self) -> TempFile:
        """Declare an ephemeral file that never leaves the cluster."""
        f = TempFile()
        with self._lock:
            self.namer.assign(f)
            self.registry.register(f)
            self.fixed_sources[f.cache_name] = NO_SOURCE
            self.sizes[f.cache_name] = 0
        return f

    def declare_minitask(
        self, mini: MiniTask, cache: "CacheLevel | str" = CacheLevel.WORKFLOW
    ) -> MiniTaskFile:
        """Wrap a task as an on-demand file transformation (paper Fig. 6)."""
        for _, dep in mini.inputs:
            if dep.cache_name is None:
                raise ManagerError(
                    f"mini task input {dep.file_id} must be declared first"
                )
        f = MiniTaskFile(mini, cache)
        with self._lock:
            self.namer.assign(f)
            self.registry.register(f)
            self.fixed_sources[f.cache_name] = MINITASK_SOURCE
            self.sizes[f.cache_name] = 0
        return f

    def declare_untar(
        self, tarball: File, cache: "CacheLevel | str" = CacheLevel.WORKFLOW
    ) -> MiniTaskFile:
        """Built-in unpack mini task (paper Fig. 3 ``declare_untar``)."""
        mini = MiniTask("mkdir unpacked && tar -xf input.tar -C unpacked")
        mini.set_output_name("unpacked")
        mini.add_input(tarball, "input.tar")
        return self.declare_minitask(mini, cache)

    # ------------------------------------------------------------------
    # public API: tasks
    # ------------------------------------------------------------------

    def submit(self, task: Task) -> str:
        """Submit a task for execution; returns its id."""
        with self._lock:
            if task.state != TaskState.CREATED:
                raise ManagerError(f"task {task.task_id} already submitted")
            if isinstance(task, PythonTask):
                self._prepare_python_task(task)
            if isinstance(task, FunctionCall):
                if task.library_name not in self.libraries:
                    raise ManagerError(
                        f"function call names unknown library {task.library_name!r}"
                    )
            for _, f in task.inputs:
                if f.cache_name is None or f.cache_name not in self.fixed_sources:
                    raise ManagerError(
                        f"input {f.file_id} of {task.task_id} was not declared"
                    )
                self._input_refs[f.cache_name] += 1
            for _, f in task.outputs:
                if f.cache_name is None:
                    self.namer.assign(f)
                    self.registry.register(f)
                    self.fixed_sources[f.cache_name] = NO_SOURCE
                    self.sizes.setdefault(f.cache_name, 0)
            if self.resource_learning and not task.resources_explicit:
                task.resources = self.categories.first_allocation(
                    task.category, task.resources
                )
            task.state = TaskState.READY
            task.submitted_at = self._now()
            self.tasks[task.task_id] = task
            self._ready.append(task)
            self._outstanding += 1
            self._pump()
            return task.task_id

    def _prepare_python_task(self, task: PythonTask) -> None:
        payload = ser.dumps_portable(
            {"func": task.func, "args": task.args, "kwargs": task.kwargs}
        )
        pf = BufferFile(payload, CacheLevel.TASK)
        self.namer.assign(pf)
        self.registry.register(pf)
        self.fixed_sources[pf.cache_name] = MANAGER_SOURCE
        self.sizes[pf.cache_name] = len(payload)
        task.inputs.append((task.PAYLOAD_NAME, pf))
        result = TempFile()
        self.namer.assign(result)
        self.registry.register(result)
        self.fixed_sources[result.cache_name] = NO_SOURCE
        self.sizes[result.cache_name] = 0
        task.outputs.append((task.RESULT_NAME, result))
        self._retrieving[result.cache_name] = task

    def wait(self, timeout: Optional[float] = None) -> Optional[Task]:
        """Block until some task completes; None on timeout.

        Completed tasks may have succeeded or failed — inspect
        ``task.result``/``task.state``, mirroring the TaskVine API.
        """
        try:
            return self._completed.get(timeout=timeout)
        except queue.Empty:
            return None

    def empty(self) -> bool:
        """True when no submitted task remains incomplete."""
        with self._lock:
            return self._outstanding == 0

    def cancel(self, task: Task) -> bool:
        """Cancel a submitted task; returns False if already terminal.

        Queued tasks are withdrawn immediately; a running task's whole
        process group is killed at the worker.  A cancelled task is
        delivered through :meth:`wait` with state ``CANCELLED``.
        """
        with self._lock:
            if task.is_done or task.task_id not in self.tasks:
                return False
            if task.state == TaskState.READY:
                self._ready = [t for t in self._ready if t.task_id != task.task_id]
                for name in task.input_cache_names():
                    self._input_refs[name] -= 1
            elif task.state in (TaskState.DISPATCHED, TaskState.RUNNING):
                handle = self.workers.get(task.worker_id or "")
                if handle is not None:
                    self._release_task(task, handle)
                    handle.running.discard(task.task_id)
                    if task.state == TaskState.RUNNING:
                        self._send(
                            handle,
                            {"type": M.CANCEL_TASK, "task_id": task.task_id},
                        )
                self._dispatched.pop(task.task_id, None)
                self._running.pop(task.task_id, None)
            task.state = TaskState.CANCELLED
            task.result = TaskResult(exit_code=-1, failure="cancelled")
            self._outstanding -= 1
            self._completed.put(task)
            self._pump()
            return True

    def run_until_done(self, timeout: float = 300.0) -> list[Task]:
        """Convenience driver: wait for every outstanding task.

        Raises :class:`ManagerError` if the deadline passes first.
        """
        deadline = time.time() + timeout
        finished = []
        while not self.empty():
            remaining = deadline - time.time()
            if remaining <= 0:
                raise ManagerError(
                    f"workflow did not finish within {timeout}s "
                    f"({self._outstanding} tasks outstanding)"
                )
            t = self.wait(timeout=min(1.0, remaining))
            if t is not None:
                finished.append(t)
        while True:  # drain anything that raced the empty() check
            t = self.wait(timeout=0.01)
            if t is None:
                break
            finished.append(t)
        return finished

    # -- serverless ----------------------------------------------------

    def create_library(
        self,
        name: str,
        functions: Sequence[Callable],
        resources: Resources = Resources(cores=1),
        function_slots: int = 1,
    ) -> Library:
        """Define a library of Python functions for serverless calls."""
        library = Library(name, functions)
        with self._lock:
            if name in self.libraries:
                raise ManagerError(f"library {name!r} already created")
            self.libraries[name] = _LibraryState(library, resources, function_slots)
        return library

    def install_library(self, name: str) -> None:
        """Deploy the library to every current and future worker."""
        with self._lock:
            state = self.libraries[name]
            state.installed = True
            for handle in self.workers.values():
                self._install_on(state, handle)

    def _install_on(self, state: _LibraryState, handle: _WorkerHandle) -> None:
        wid = handle.worker_id
        if wid in state.state:
            return
        if not handle.pool.can_fit(state.resources):
            return
        handle.pool.allocate(f"lib:{state.library.name}", state.resources)
        state.state[wid] = "installing"
        self.log.emit(
            self._now(), "task_start",
            worker=wid, task=f"{state.library.name}@{wid}", category="library",
        )
        self._send(
            handle,
            {
                "type": M.INSTALL_LIBRARY,
                "library": state.library.name,
                "functions": state.library.function_names(),
                "payload_size": len(state.payload),
                "task_id": f"lib:{state.library.name}",
                "slots": state.slots,
            },
            state.payload,
        )

    # -- data retrieval ---------------------------------------------------

    def fetch_bytes(self, f: File, timeout: float = 60.0) -> bytes:
        """Fetch a file's content back to the application.

        Buffers are returned directly; local files are read from disk;
        anything else is pulled from a worker replica.  Directory
        objects are returned as an uncompressed tar stream.
        """
        if isinstance(f, BufferFile):
            return f.data
        if isinstance(f, LocalFile):
            with open(f.path, "rb") as fh:
                return fh.read()
        waiter: "queue.Queue[Optional[bytes]]" = queue.Queue()
        with self._lock:
            name = f.cache_name
            if name is None:
                raise ManagerError(f"file {f.file_id} was never declared")
            holders = [
                w for w in self.replicas.locate(name) if w in self.workers
            ]
            if not holders:
                raise ManagerError(f"no worker holds {name}")
            self._fetch_waiters[name].append(waiter)
            self._send(self.workers[holders[0]], {"type": M.SEND_BACK, "cache_name": name})
        try:
            data = waiter.get(timeout=timeout)
        except queue.Empty:
            raise ManagerError(f"timed out fetching {name}") from None
        if data is None:
            raise ManagerError(f"worker could not serve {name}")
        return data

    # -- lifecycle --------------------------------------------------------

    def close(self, shutdown_workers: bool = True) -> None:
        """Garbage-collect workflow files and release all connections."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            deletions = collect_workflow(self.registry, self.replicas)
            for wid, names in deletions.items():
                handle = self.workers.get(wid)
                if handle is None or not handle.alive:
                    continue
                for name in names:
                    try:
                        self._send(handle, {"type": M.UNLINK, "cache_name": name})
                    except (ProtocolError, OSError):
                        break
            handles = list(self.workers.values())
        # flush outboxes outside the lock, then tear connections down
        for handle in handles:
            if handle.alive and shutdown_workers:
                self._send(handle, {"type": M.SHUTDOWN})
            handle.stop_sender()
        for handle in handles:
            handle._sender.join(timeout=10)
            handle.conn.close()
        with self._lock:
            self.log.emit(self._now(), "workflow_done")
            try:
                self._listener.close()
            except OSError:
                pass

    def __enter__(self) -> "Manager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker admission and message handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._admit, args=(Connection(sock),), daemon=True
            ).start()

    def _admit(self, conn: Connection) -> None:
        try:
            msg = conn.recv_message()
            if validate(msg) != M.REGISTER:
                conn.close()
                return
        except (ProtocolError, OSError):
            conn.close()
            return
        handle = _WorkerHandle(
            conn,
            Resources.from_dict(msg["capacity"]),
            msg.get("transfer_host", "127.0.0.1"),
            int(msg["transfer_port"]),
        )
        handle.workdir = msg.get("workdir")
        with self._lock:
            self.workers[handle.worker_id] = handle
            log.info(
                "worker %s joined (%s cores, transfer port %d, %d cached objects)",
                handle.worker_id, handle.capacity.cores,
                handle.transfer_port, len(msg.get("cached", [])),
            )
            self.log.emit(self._now(), "worker_join", worker=handle.worker_id)
            # adopt persisted worker-lifetime cache contents (hot cache)
            for name, size, _level in msg.get("cached", []):
                self.replicas.add_replica(name, handle.worker_id, int(size))
                self.sizes.setdefault(name, int(size))
                self.fixed_sources.setdefault(name, NO_SOURCE)
            for state in self.libraries.values():
                if state.installed:
                    self._install_on(state, handle)
            self._pump()
        reader = threading.Thread(
            target=self._reader_loop, args=(handle,), daemon=True
        )
        reader.start()

    def _reader_loop(self, handle: _WorkerHandle) -> None:
        try:
            while True:
                msg = handle.conn.recv_message()
                mtype = validate(msg)
                payload: Optional[bytes] = None
                if mtype == M.FILE_DATA and msg.get("found"):
                    payload = handle.conn.recv_bytes(int(msg["size"]))
                elif mtype == M.TASK_DONE and msg.get("result_size"):
                    payload = handle.conn.recv_bytes(int(msg["result_size"]))
                handle.last_seen = time.time()
                with self._lock:
                    self._on_worker_message(handle, mtype, msg, payload)
        except (ProtocolError, OSError):
            pass
        with self._lock:
            self._on_worker_gone(handle)

    def _on_worker_message(
        self, handle: _WorkerHandle, mtype: str, msg: dict, payload: Optional[bytes]
    ) -> None:
        if mtype == M.CACHE_UPDATE:
            self._on_cache_update(handle, msg)
        elif mtype == M.CACHE_INVALID:
            self._on_cache_invalid(handle, msg)
        elif mtype == M.TASK_DONE:
            self._on_task_done(handle, msg, payload)
        elif mtype == M.LIBRARY_READY:
            self._on_library_ready(handle, msg)
        elif mtype == M.FILE_DATA:
            self._on_file_data(msg, payload)
        self._pump()

    # -- cache updates ----------------------------------------------------

    def _on_cache_update(self, handle: _WorkerHandle, msg: dict) -> None:
        name = msg["cache_name"]
        size = int(msg["size"])
        transfer_id = msg.get("transfer_id")
        self.sizes[name] = size
        if name in self.registry:
            self.registry.by_name(name).size = size
        self.replicas.add_replica(name, handle.worker_id, size)
        self.log.emit(
            self._now(), "file_cached", worker=handle.worker_id, file=name, size=size
        )
        if transfer_id is not None:
            try:
                record = self.transfers.complete(transfer_id)
                self.log.emit(
                    self._now(), "transfer_end",
                    worker=handle.worker_id, file=name, size=size,
                )
            except KeyError:
                pass
            self._staging = [
                j for j in self._staging if j.transfer_id != transfer_id
            ]

    def _on_cache_invalid(self, handle: _WorkerHandle, msg: dict) -> None:
        name = msg["cache_name"]
        transfer_id = msg.get("transfer_id")
        self.replicas.remove_replica(name, handle.worker_id)
        if transfer_id is None:
            return  # autonomous eviction, not a failed command
        try:
            self.transfers.complete(transfer_id)
        except KeyError:
            pass
        self._staging = [j for j in self._staging if j.transfer_id != transfer_id]
        self._transfer_attempts[name] += 1
        if self._transfer_attempts[name] > self.transfer_retries:
            self._fail_tasks_needing(name, msg.get("reason", "transfer failed"))

    def _fail_tasks_needing(self, name: str, reason: str) -> None:
        doomed = [
            t
            for t in list(self._ready) + list(self._dispatched.values())
            if name in t.input_cache_names()
        ]
        for t in doomed:
            self._finish_task(
                t,
                TaskResult(exit_code=-1, failure=f"input {name} unavailable: {reason}"),
            )

    # -- task completion --------------------------------------------------

    def _on_task_done(
        self, handle: _WorkerHandle, msg: dict, payload: Optional[bytes]
    ) -> None:
        task_id = msg["task_id"]
        if task_id.startswith("lib:"):
            name = task_id[len("lib:"):]
            state = self.libraries.get(name)
            if state is not None:
                state.state[handle.worker_id] = "failed"
                try:
                    handle.pool.release(task_id)
                except KeyError:
                    pass
            return
        task = self._running.pop(task_id, None)
        if task is None:
            return
        handle.running.discard(task_id)
        result = TaskResult(
            exit_code=int(msg["exit_code"]),
            output=msg.get("output", ""),
            failure=msg.get("failure"),
            exceeded=list(msg.get("exceeded", [])),
            measured=(
                Resources.from_dict(msg["measured"]) if "measured" in msg else None
            ),
            execution_time=float(msg.get("execution_time", 0.0)),
            staging_time=float(msg.get("staging_time", 0.0)),
        )
        task.finished_at = self._now()
        self.log.emit(
            self._now(), "task_end",
            worker=handle.worker_id, task=task_id, category=task.category,
        )
        self._release_task(task, handle)
        self.categories.record(
            task.category,
            result.measured or task.resources,
            exceeded=bool(result.exceeded),
        )
        # sandbox failures mean an input vanished between dispatch and
        # execution (e.g. autonomous cache eviction won a race): replan
        # the transfers and retry rather than failing the task
        if (
            result.failure == "sandbox"
            and task.retries_used < task.max_retries
        ):
            task.retries_used += 1
            task.state = TaskState.READY
            task.worker_id = None
            self._ready.append(task)
            return
        # resource-exceeded retry policy (paper §2.1): grow to the
        # category's observed peak when learning, else scale the request
        if (
            result.exceeded
            and result.exit_code != 0
            and task.retries_used < task.max_retries
        ):
            task.retries_used += 1
            if self.resource_learning:
                task.resources = self.categories.retry_allocation(
                    task.category, task.resources
                )
            else:
                task.resources = task.resources.scaled(task.retry_resource_growth)
            task.state = TaskState.READY
            task.worker_id = None
            self._ready.append(task)
            return
        if isinstance(task, FunctionCall) and payload is not None:
            self._set_call_output(task, result, payload)
            self._finish_task(task, result)
            return
        if isinstance(task, PythonTask):
            # result value comes back via SEND_BACK of the result file
            result_name = task.outputs[-1][1].cache_name
            if result.exit_code in (0, 1) and self.replicas.replica_count(result_name):
                task.result = result
                holders = list(self.replicas.locate(result_name))
                self._send(
                    self.workers[holders[0]],
                    {"type": M.SEND_BACK, "cache_name": result_name},
                )
                return  # completion deferred to _on_file_data
        self._finish_task(task, result)

    def _set_call_output(self, task: FunctionCall, result: TaskResult, blob: bytes) -> None:
        try:
            decoded = ser.loads(blob)
        except ser.SerializationError as exc:
            result.failure = f"result decode failed: {exc}"
            return
        if decoded.get("ok"):
            task.set_output_value(decoded.get("value"))
        else:
            result.failure = decoded.get("traceback") or repr(decoded.get("error"))
            result.exit_code = result.exit_code or 1

    def _release_task(self, task: Task, handle: _WorkerHandle) -> None:
        try:
            handle.pool.release(task.task_id)
        except KeyError:
            pass
        if isinstance(task, FunctionCall):
            self._lib_load[(handle.worker_id, task.library_name)] -= 1
        pinned = self._pinned[handle.worker_id]
        for name in task.input_cache_names():
            pinned[name] -= 1
            self._input_refs[name] -= 1
            if (
                self._input_refs[name] <= 0
                and name in self.registry
                and self.registry.by_name(name).cache_level == CacheLevel.TASK
            ):
                for wid in self.replicas.forget_name(name):
                    w = self.workers.get(wid)
                    if w is not None and w.alive:
                        self._send(w, {"type": M.UNLINK, "cache_name": name})
                        self.log.emit(
                            self._now(), "file_deleted", worker=wid, file=name
                        )

    def _finish_task(self, task: Task, result: TaskResult) -> None:
        if task.is_done:
            return
        task.result = result
        ok = result.ok
        if isinstance(task, PythonTask) and result.exit_code == 1:
            ok = True  # the exception is delivered through output()
        task.state = TaskState.DONE if ok else TaskState.FAILED
        for collection in (self._ready, ):
            if task in collection:
                collection.remove(task)
        self._dispatched.pop(task.task_id, None)
        self._running.pop(task.task_id, None)
        self._outstanding -= 1
        self._completed.put(task)

    def _on_library_ready(self, handle: _WorkerHandle, msg: dict) -> None:
        name = msg["library"]
        state = self.libraries.get(name)
        if state is None:
            return
        state.state[handle.worker_id] = "ready"
        handle.libraries.add(name)
        self.log.emit(
            self._now(), "library_ready", worker=handle.worker_id, category=name
        )

    def _on_file_data(self, msg: dict, payload: Optional[bytes]) -> None:
        name = msg["cache_name"]
        task = self._retrieving.pop(name, None)
        if task is not None and isinstance(task, PythonTask):
            result = task.result or TaskResult(exit_code=0)
            if payload is None:
                result.failure = "result file missing at worker"
            else:
                try:
                    decoded = ser.loads(payload)
                    if decoded.get("ok"):
                        task.set_output_value(decoded.get("value"))
                    else:
                        task.set_output_value(None)
                        result.failure = decoded.get("traceback") or "remote exception"
                        err = decoded.get("error")
                        if isinstance(err, BaseException):
                            task.set_output_value(err)
                except ser.SerializationError as exc:
                    result.failure = f"result decode failed: {exc}"
            self._finish_task(task, result)
        waiters = self._fetch_waiters.pop(name, [])
        for waiter in waiters:
            waiter.put(payload)

    def _on_worker_gone(self, handle: _WorkerHandle) -> None:
        if not handle.alive:
            return
        handle.alive = False
        log.warning("worker %s disconnected", handle.worker_id)
        self.workers.pop(handle.worker_id, None)
        self.replicas.remove_worker(handle.worker_id)
        self.transfers.cancel_for_worker(handle.worker_id)
        self._staging = [j for j in self._staging if j.worker_id != handle.worker_id]
        self._pinned.pop(handle.worker_id, None)
        self.log.emit(self._now(), "worker_leave", worker=handle.worker_id)
        # requeue or fail every task that was on this worker
        lost = [
            t
            for t in list(self._dispatched.values()) + list(self._running.values())
            if t.worker_id == handle.worker_id
        ]
        for task in lost:
            self._dispatched.pop(task.task_id, None)
            self._running.pop(task.task_id, None)
            if isinstance(task, FunctionCall):
                self._lib_load[(handle.worker_id, task.library_name)] -= 1
            if task.retries_used < task.max_retries:
                task.retries_used += 1
                task.state = TaskState.READY
                task.worker_id = None
                self._ready.append(task)
            else:
                self._finish_task(
                    task, TaskResult(exit_code=-1, failure="worker lost")
                )
        handle.stop_sender()
        for state in self.libraries.values():
            state.state.pop(handle.worker_id, None)
        self._pump()

    # ------------------------------------------------------------------
    # scheduling pump (the same structure the simulator uses)
    # ------------------------------------------------------------------

    def _view_of(self, handle: _WorkerHandle, library: Optional[str]) -> Optional[WorkerView]:
        if not handle.alive:
            return None
        if library is not None:
            state = self.libraries[library]
            if state.state.get(handle.worker_id) != "ready":
                return None
            if self._lib_load[(handle.worker_id, library)] >= state.slots:
                return None
        return WorkerView(
            worker_id=handle.worker_id,
            capacity=handle.capacity,
            allocated=handle.pool.allocated,
            running_tasks=len(handle.running),
        )

    def _pump(self) -> None:
        if self._closed:
            return
        views_cache: dict[Optional[str], dict[str, WorkerView]] = {}

        def get_views(key: Optional[str]) -> dict[str, WorkerView]:
            if key not in views_cache:
                views = {}
                for handle in self.workers.values():
                    v = self._view_of(handle, key)
                    if v is not None:
                        views[handle.worker_id] = v
                views_cache[key] = views
            return views_cache[key]

        placed = []
        failures = 0
        for task in Scheduler.order_ready(self._ready):
            if not self._inputs_obtainable(task):
                continue
            key = task.library_name if isinstance(task, FunctionCall) else None
            wid = self.scheduler.choose_worker(task, get_views(key))
            if wid is None:
                failures += 1
                if failures >= 64:
                    break
                continue
            self._dispatch(task, wid)
            placed.append(task)
            for k, vdict in views_cache.items():
                fresh = self._view_of(self.workers[wid], k)
                if fresh is None:
                    vdict.pop(wid, None)
                else:
                    vdict[wid] = fresh
        if placed:
            placed_ids = {t.task_id for t in placed}
            self._ready = [t for t in self._ready if t.task_id not in placed_ids]
        for task in list(self._dispatched.values()):
            self._stage_inputs(task)
        for job in list(self._staging):
            if not job.started:
                self._advance_staging(job)

    def _inputs_obtainable(self, task: Task) -> bool:
        for name in task.input_cache_names():
            if self.replicas.replica_count(name) > 0:
                continue
            if self.fixed_sources.get(name, MANAGER_SOURCE) == NO_SOURCE:
                return False
        return True

    def _dispatch(self, task: Task, wid: str) -> None:
        log.debug("dispatch %s -> %s (%s)", task.task_id, wid, task.category)
        handle = self.workers[wid]
        handle.pool.allocate(task.task_id, task.resources)
        handle.running.add(task.task_id)
        task.worker_id = wid
        task.state = TaskState.DISPATCHED
        self._dispatched[task.task_id] = task
        if isinstance(task, FunctionCall):
            self._lib_load[(wid, task.library_name)] += 1
        for name in task.input_cache_names():
            self._pinned[wid][name] += 1
        self._stage_inputs(task)

    def _stage_inputs(self, task: Task) -> None:
        wid = task.worker_id
        assert wid is not None
        if isinstance(task, FunctionCall) and not task.inputs:
            self._start_execution(task)
            return
        plan = self.scheduler.plan_transfers(task, wid, self.fixed_sources)
        for cache_name, source in plan.transfers:
            self._start_transfer(cache_name, source, wid)
        if all(self.replicas.has_replica(n, wid) for n in task.input_cache_names()):
            self._start_execution(task)

    def _start_transfer(self, cache_name: str, source: str, dst_wid: str) -> None:
        log.debug("transfer %s: %s -> %s", cache_name[:24], source, dst_wid)
        handle = self.workers[dst_wid]
        size = self.sizes.get(cache_name, 0)
        record = self.transfers.begin(cache_name, source, dst_wid, size, self._now())
        self.log.emit(
            self._now(), "transfer_start", worker=dst_wid, file=cache_name, size=size
        )
        level = (
            self.registry.by_name(cache_name).cache_level
            if cache_name in self.registry
            else CacheLevel.WORKFLOW
        )
        if source == MINITASK_SOURCE:
            f = self.registry.by_name(cache_name)
            assert isinstance(f, MiniTaskFile)
            job = _StagingJob(f, dst_wid, record.transfer_id)
            self._staging.append(job)
            self._advance_staging(job)
            return
        if source == MANAGER_SOURCE:
            self._send_object(handle, cache_name, level, record.transfer_id)
            return
        if source.startswith("url:"):
            f = self.registry.by_name(cache_name)
            assert isinstance(f, URLFile)
            self._send(
                handle,
                {
                    "type": M.FETCH_FILE,
                    "cache_name": cache_name,
                    "source": {"kind": "url", "url": f.url},
                    "transfer_id": record.transfer_id,
                    "level": int(level),
                },
            )
            return
        # peer worker source
        src = self.workers[source]
        self._send(
            handle,
            {
                "type": M.FETCH_FILE,
                "cache_name": cache_name,
                "source": {
                    "kind": "worker",
                    "host": src.transfer_host,
                    "port": src.transfer_port,
                },
                "transfer_id": record.transfer_id,
                "level": int(level),
            },
        )

    def _send_object(
        self, handle: _WorkerHandle, cache_name: str, level: CacheLevel, transfer_id: str
    ) -> None:
        """Push a manager-held object (buffer or local path) to a worker."""
        f = self.registry.by_name(cache_name)
        header = {
            "type": M.PUT_FILE,
            "cache_name": cache_name,
            "level": int(level),
            "transfer_id": transfer_id,
        }
        if isinstance(f, BufferFile):
            header["size"] = len(f.data)
            self._send(handle, header, f.data)
        elif isinstance(f, LocalFile):
            path = f.path

            def push(conn: Connection) -> None:
                # runs on the sender thread: packing and streaming large
                # objects must not stall the manager's state lock
                if os.path.isdir(path):
                    from repro.worker.transfers import pack_directory

                    with tempfile.NamedTemporaryFile(suffix=".tar", delete=False) as tf:
                        tar_path = tf.name
                    try:
                        pack_directory(path, tar_path)
                        size = os.path.getsize(tar_path)
                        header["size"] = size
                        header["format"] = "tar"
                        conn.send_message(header)
                        conn.send_file(tar_path, size)
                    finally:
                        os.unlink(tar_path)
                else:
                    size = os.path.getsize(path)
                    header["size"] = size
                    conn.send_message(header)
                    conn.send_file(path, size)

            handle.enqueue(push)
        else:
            raise ManagerError(
                f"{type(f).__name__} {cache_name} cannot be manager-sourced"
            )

    def _advance_staging(self, job: _StagingJob) -> None:
        wid = job.worker_id
        mini = job.file.mini_task
        missing = [
            n for n in mini.input_cache_names() if not self.replicas.has_replica(n, wid)
        ]
        if missing:
            plan = self.scheduler.plan_transfers(mini, wid, self.fixed_sources)
            for cache_name, source in plan.transfers:
                self._start_transfer(cache_name, source, wid)
            return
        job.started = True
        level = job.file.cache_level
        spec = {
            "command": mini.command,
            "inputs": [
                [sandbox_name, dep.cache_name] for sandbox_name, dep in mini.inputs
            ],
            "output_name": mini.output_name,
            "env": mini.env,
            "resources": mini.resources.to_dict(),
        }
        self.log.emit(
            self._now(), "stage_start", worker=wid, file=job.file.cache_name
        )
        self._send(
            self.workers[wid],
            {
                "type": M.STAGE_MINITASK,
                "cache_name": job.file.cache_name,
                "spec": spec,
                "level": int(level),
                "transfer_id": job.transfer_id,
            },
        )

    def _start_execution(self, task: Task) -> None:
        if task.state != TaskState.DISPATCHED:
            return
        wid = task.worker_id
        handle = self.workers[wid]
        self._dispatched.pop(task.task_id, None)
        self._running[task.task_id] = task
        task.state = TaskState.RUNNING
        task.started_at = self._now()
        self.log.emit(
            self._now(), "task_start", worker=wid, task=task.task_id,
            category=task.category,
        )
        if isinstance(task, FunctionCall):
            from repro.worker.library_instance import pack_invocation

            blob = pack_invocation(task.args, dict(task.kwargs))
            self._send(
                handle,
                {
                    "type": M.INVOKE,
                    "task_id": task.task_id,
                    "library": task.library_name,
                    "function": task.function_name,
                    "payload_size": len(blob),
                },
                blob,
            )
            return
        self._send(
            handle,
            {
                "type": M.EXECUTE,
                "task_id": task.task_id,
                "command": task.command,
                "inputs": [[name, f.cache_name] for name, f in task.inputs],
                "outputs": [
                    [name, f.cache_name, int(f.cache_level)]
                    for name, f in task.outputs
                ],
                "env": task.env,
                "resources": task.resources.to_dict(),
            },
        )

    # -- low-level send -------------------------------------------------------

    @staticmethod
    def _send(handle: _WorkerHandle, message: dict, payload: Optional[bytes] = None) -> None:
        """Queue a control message (plus optional byte payload)."""

        def do(conn: Connection) -> None:
            conn.send_message(message)
            if payload is not None:
                conn.send_bytes(payload)

        handle.enqueue(do)
