"""Garbage collection and cache eviction policy.

The manager performs garbage collection (paper §2.2): ``TASK``-lifetime
files are deleted as soon as their consuming task completes, and
``TASK``/``WORKFLOW``-lifetime files are removed from every worker at
workflow end, so a future run choosing the same random names can never
observe stale data.  ``WORKER``-lifetime files persist while resources
allow; when a worker's disk fills, the manager selects victims with the
eviction planner below (least-valuable first: shortest declared
lifetime, then least recently used).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.files import CacheLevel, FileRegistry
from repro.core.replica_table import ReplicaTable

__all__ = ["CacheEntryInfo", "collect_workflow", "collect_task_inputs", "plan_eviction"]


@dataclass(frozen=True, slots=True)
class CacheEntryInfo:
    """What the eviction planner needs to know about one cached object."""

    cache_name: str
    size: int
    level: CacheLevel
    #: timestamp of the last task that consumed the object at this worker
    last_used: float


def collect_workflow(
    registry: FileRegistry, replicas: ReplicaTable
) -> dict[str, set[str]]:
    """Deletions to issue at workflow end: worker id → cache names.

    Includes every replica of every ``TASK``/``WORKFLOW``-lifetime file;
    ``WORKER``-lifetime files are never collected here.
    """
    doomed = registry.collectable_names()
    deletions: dict[str, set[str]] = {}
    for name in doomed:
        for worker_id in replicas.locate(name):
            deletions.setdefault(worker_id, set()).add(name)
    return deletions


def collect_task_inputs(
    task_input_names: Iterable[str],
    registry: FileRegistry,
    still_needed: Mapping[str, int],
) -> set[str]:
    """Names deletable immediately after one task completes.

    A ``TASK``-lifetime input is discarded as soon as no other
    unfinished task references it (``still_needed`` maps cache name →
    count of remaining references).
    """
    deletable = set()
    for name in task_input_names:
        if name not in registry:
            continue
        if registry.by_name(name).cache_level != CacheLevel.TASK:
            continue
        if still_needed.get(name, 0) <= 0:
            deletable.add(name)
    return deletable


def plan_eviction(
    entries: Iterable[CacheEntryInfo],
    needed_bytes: int,
    pinned: frozenset[str] | set[str] = frozenset(),
) -> list[str]:
    """Choose cache objects to delete to free at least ``needed_bytes``.

    Victims are chosen least-valuable first: shortest declared lifetime,
    then least-recently-used, then largest (to minimize the number of
    deletions).  Objects in ``pinned`` (inputs of running or dispatched
    tasks) are never chosen.  Returns the chosen cache names in eviction
    order; the list may free less than requested if the cache simply
    does not contain enough evictable bytes.
    """
    if needed_bytes <= 0:
        return []
    candidates = sorted(
        (e for e in entries if e.cache_name not in pinned),
        key=lambda e: (e.level, e.last_used, -e.size),
    )
    victims: list[str] = []
    freed = 0
    for entry in candidates:
        if freed >= needed_bytes:
            break
        victims.append(entry.cache_name)
        freed += entry.size
    return victims
