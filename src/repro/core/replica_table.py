"""File Replica Table: the manager's unified view of cluster storage.

Files are located at workers through this table (paper §3.3): for every
cache name it records which workers hold a replica and how large the
object is.  The table is updated from worker ``cache-update`` and
``cache-invalid`` messages and consulted by the scheduler both for task
placement (locality) and for choosing peer transfer sources.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["ReplicaTable"]


class ReplicaTable:
    """Bidirectional index of (cache name ↔ worker) replica facts."""

    def __init__(self) -> None:
        self._workers_by_name: dict[str, set[str]] = {}
        self._names_by_worker: dict[str, set[str]] = {}
        self._sizes: dict[str, int] = {}

    # -- mutation -------------------------------------------------------

    def add_replica(self, cache_name: str, worker_id: str, size: Optional[int] = None) -> None:
        """Record that ``worker_id`` now holds ``cache_name``.

        Idempotent; ``size`` (bytes) is recorded the first time it is
        learned and must not contradict a previously known size.
        """
        self._workers_by_name.setdefault(cache_name, set()).add(worker_id)
        self._names_by_worker.setdefault(worker_id, set()).add(cache_name)
        if size is not None:
            known = self._sizes.get(cache_name)
            if known is not None and known != size:
                raise ValueError(
                    f"size mismatch for {cache_name}: {known} vs {size} "
                    "(files are immutable)"
                )
            self._sizes[cache_name] = size

    def remove_replica(self, cache_name: str, worker_id: str) -> None:
        """Forget one replica; idempotent if already absent."""
        workers = self._workers_by_name.get(cache_name)
        if workers is not None:
            workers.discard(worker_id)
            if not workers:
                del self._workers_by_name[cache_name]
        names = self._names_by_worker.get(worker_id)
        if names is not None:
            names.discard(cache_name)

    def remove_worker(self, worker_id: str) -> set[str]:
        """Drop every replica held by a departed worker; returns the names."""
        names = self._names_by_worker.pop(worker_id, set())
        for name in names:
            workers = self._workers_by_name.get(name)
            if workers is not None:
                workers.discard(worker_id)
                if not workers:
                    del self._workers_by_name[name]
        return names

    def forget_name(self, cache_name: str) -> set[str]:
        """Drop every replica of a file (e.g. after garbage collection)."""
        workers = self._workers_by_name.pop(cache_name, set())
        for w in workers:
            self._names_by_worker.get(w, set()).discard(cache_name)
        self._sizes.pop(cache_name, None)
        return workers

    # -- queries ----------------------------------------------------------

    def locate(self, cache_name: str) -> set[str]:
        """Workers currently holding a replica (copy; may be empty)."""
        return set(self._workers_by_name.get(cache_name, ()))

    def holdings(self, worker_id: str) -> set[str]:
        """Cache names held by one worker (copy; may be empty)."""
        return set(self._names_by_worker.get(worker_id, ()))

    def has_replica(self, cache_name: str, worker_id: str) -> bool:
        """True if the specific worker holds the file."""
        return worker_id in self._workers_by_name.get(cache_name, ())

    def replica_count(self, cache_name: str) -> int:
        """Number of workers holding the file."""
        return len(self._workers_by_name.get(cache_name, ()))

    def size_of(self, cache_name: str, default: int = 0) -> int:
        """Known size in bytes, or ``default`` if never reported."""
        return self._sizes.get(cache_name, default)

    def cached_bytes_at(self, worker_id: str, cache_names: Iterable[str]) -> int:
        """Total known bytes of ``cache_names`` already present at a worker.

        This is the locality score used for task placement: the worker
        possessing the most input bytes wins (paper §3.3).
        """
        held = self._names_by_worker.get(worker_id, ())
        return sum(self._sizes.get(n, 0) for n in cache_names if n in held)

    def cached_count_at(self, worker_id: str, cache_names: Iterable[str]) -> int:
        """How many of ``cache_names`` are present at a worker."""
        held = self._names_by_worker.get(worker_id, ())
        return sum(1 for n in cache_names if n in held)

    def total_names(self) -> int:
        """Number of distinct cache names with at least one replica."""
        return len(self._workers_by_name)

    def total_replicas(self) -> int:
        """Number of (file, worker) replica pairs cluster-wide."""
        return sum(len(w) for w in self._workers_by_name.values())

    def names(self) -> set[str]:
        """All cache names with at least one replica (copy)."""
        return set(self._workers_by_name)
