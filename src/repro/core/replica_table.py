"""File Replica Table: the manager's unified view of cluster storage.

Files are located at workers through this table (paper §3.3): for every
cache name it records which workers hold a replica and how large the
object is.  The table is updated from worker ``cache-update`` and
``cache-invalid`` messages and consulted by the scheduler both for task
placement (locality) and for choosing peer transfer sources.

The table maintains *incremental indexes* alongside the raw facts so
the scheduler's hot path never rescans state:

* ``bytes_at(worker)`` — total known bytes held per worker, updated in
  O(1) on every replica event (used to rank replication targets).
* ``locality_scores(names)`` — per-worker byte totals restricted to one
  task's inputs, computed by walking the *holders of those inputs* only
  (O(replicas-of-inputs)) instead of probing every worker.

Every mutation prunes exhausted entries: a name with no surviving
replica drops its worker set *and* its recorded size, and a worker with
no holdings drops its name set and byte total — a long-lived manager's
table is bounded by live replicas, not by everything it ever saw.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["ReplicaTable"]


class ReplicaTable:
    """Bidirectional index of (cache name ↔ worker) replica facts."""

    def __init__(self) -> None:
        self._workers_by_name: dict[str, set[str]] = {}
        self._names_by_worker: dict[str, set[str]] = {}
        self._sizes: dict[str, int] = {}
        #: incremental per-worker byte totals (sum of known sizes held)
        self._bytes_by_worker: dict[str, int] = {}

    # -- mutation -------------------------------------------------------

    def add_replica(self, cache_name: str, worker_id: str, size: Optional[int] = None) -> None:
        """Record that ``worker_id`` now holds ``cache_name``.

        Idempotent; ``size`` (bytes) is recorded the first time it is
        learned and must not contradict a previously known size.  When a
        size is learned *after* replicas exist, every current holder's
        byte total is credited retroactively, so the incremental index
        always equals a from-scratch recount.
        """
        known = self._sizes.get(cache_name)
        if size is not None and known is not None and known != size:
            raise ValueError(
                f"size mismatch for {cache_name}: {known} vs {size} "
                "(files are immutable)"
            )
        holders = self._workers_by_name.setdefault(cache_name, set())
        newly_held = worker_id not in holders
        if newly_held:
            holders.add(worker_id)
            self._names_by_worker.setdefault(worker_id, set()).add(cache_name)
        if size is not None and known is None:
            self._sizes[cache_name] = size
            if size:
                for w in holders:
                    self._bytes_by_worker[w] = self._bytes_by_worker.get(w, 0) + size
        elif newly_held:
            s = self._sizes.get(cache_name, 0)
            if s:
                self._bytes_by_worker[worker_id] = (
                    self._bytes_by_worker.get(worker_id, 0) + s
                )

    def remove_replica(self, cache_name: str, worker_id: str) -> None:
        """Forget one replica; idempotent if already absent."""
        workers = self._workers_by_name.get(cache_name)
        if workers is None or worker_id not in workers:
            return
        workers.discard(worker_id)
        self._debit(worker_id, cache_name)
        names = self._names_by_worker.get(worker_id)
        if names is not None:
            names.discard(cache_name)
            if not names:
                del self._names_by_worker[worker_id]
        if not workers:
            del self._workers_by_name[cache_name]
            self._sizes.pop(cache_name, None)

    def remove_worker(self, worker_id: str) -> set[str]:
        """Drop every replica held by a departed worker; returns the names."""
        names = self._names_by_worker.pop(worker_id, set())
        self._bytes_by_worker.pop(worker_id, None)
        for name in names:
            workers = self._workers_by_name.get(name)
            if workers is not None:
                workers.discard(worker_id)
                if not workers:
                    del self._workers_by_name[name]
                    self._sizes.pop(name, None)
        return names

    def forget_name(self, cache_name: str) -> set[str]:
        """Drop every replica of a file (e.g. after garbage collection)."""
        workers = self._workers_by_name.pop(cache_name, set())
        for w in workers:
            self._debit(w, cache_name)
            names = self._names_by_worker.get(w)
            if names is not None:
                names.discard(cache_name)
                if not names:
                    del self._names_by_worker[w]
        self._sizes.pop(cache_name, None)
        return workers

    def _debit(self, worker_id: str, cache_name: str) -> None:
        """Subtract one replica's bytes from a worker's running total."""
        s = self._sizes.get(cache_name, 0)
        if not s:
            return
        remaining = self._bytes_by_worker.get(worker_id, 0) - s
        if remaining > 0:
            self._bytes_by_worker[worker_id] = remaining
        else:
            self._bytes_by_worker.pop(worker_id, None)

    # -- queries ----------------------------------------------------------

    def locate(self, cache_name: str) -> set[str]:
        """Workers currently holding a replica (copy; may be empty)."""
        return set(self._workers_by_name.get(cache_name, ()))

    def holdings(self, worker_id: str) -> set[str]:
        """Cache names held by one worker (copy; may be empty)."""
        return set(self._names_by_worker.get(worker_id, ()))

    def has_replica(self, cache_name: str, worker_id: str) -> bool:
        """True if the specific worker holds the file."""
        return worker_id in self._workers_by_name.get(cache_name, ())

    def replica_count(self, cache_name: str) -> int:
        """Number of workers holding the file."""
        return len(self._workers_by_name.get(cache_name, ()))

    def size_of(self, cache_name: str, default: int = 0) -> int:
        """Known size in bytes, or ``default`` if never reported.

        Sizes are pruned with their last replica, so a name nobody holds
        reports ``default`` even if a size was once known.
        """
        return self._sizes.get(cache_name, default)

    def bytes_at(self, worker_id: str) -> int:
        """Total known bytes held by one worker — O(1) from the index."""
        return self._bytes_by_worker.get(worker_id, 0)

    def workers_holding_any(self, cache_names: Iterable[str]) -> set[str]:
        """Union of holders over ``cache_names`` (the placement candidates)."""
        out: set[str] = set()
        for n in cache_names:
            w = self._workers_by_name.get(n)
            if w:
                out |= w
        return out

    def locality_scores(self, cache_names: Iterable[str]) -> dict[str, int]:
        """Per-worker input-byte totals for one task's inputs.

        Walks the holders of each input (rather than probing every
        worker), so the cost scales with the replicas of *these* files.
        Workers holding only zero-sized (or size-unknown) inputs score 0
        and are omitted — for placement they rank identically to
        non-holders, which the fallback path already covers.  A name
        listed twice is counted twice, exactly as
        :meth:`cached_bytes_at` does over the same list.
        """
        scores: dict[str, int] = {}
        for n in cache_names:
            size = self._sizes.get(n, 0)
            if not size:
                continue
            for w in self._workers_by_name.get(n, ()):
                scores[w] = scores.get(w, 0) + size
        return scores

    def cached_bytes_at(self, worker_id: str, cache_names: Iterable[str]) -> int:
        """Total known bytes of ``cache_names`` already present at a worker.

        This is the locality score used for task placement: the worker
        possessing the most input bytes wins (paper §3.3).
        """
        held = self._names_by_worker.get(worker_id, ())
        return sum(self._sizes.get(n, 0) for n in cache_names if n in held)

    def cached_count_at(self, worker_id: str, cache_names: Iterable[str]) -> int:
        """How many of ``cache_names`` are present at a worker."""
        held = self._names_by_worker.get(worker_id, ())
        return sum(1 for n in cache_names if n in held)

    def total_names(self) -> int:
        """Number of distinct cache names with at least one replica."""
        return len(self._workers_by_name)

    def total_replicas(self) -> int:
        """Number of (file, worker) replica pairs cluster-wide."""
        return sum(len(w) for w in self._workers_by_name.values())

    def names(self) -> set[str]:
        """All cache names with at least one replica (copy)."""
        return set(self._workers_by_name)
