"""Resource specification and accounting.

Every task declares a fixed quantity of resources (cores, memory, disk,
gpus) which the worker enforces at execution time; the manager packs
tasks onto workers without overcommitting (paper §2.1).  The same
:class:`Resources` value type describes task requests, library
allocations, and worker capacities in both the real and simulated
runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Resources", "ResourcePool", "ResourceExhausted"]


class ResourceExhausted(RuntimeError):
    """Raised when an allocation is requested that does not fit a pool."""


@dataclass(frozen=True, slots=True)
class Resources:
    """An immutable bundle of schedulable resources.

    ``memory`` and ``disk`` are in megabytes, matching the paper's units.
    Instances are valid dict keys and safe to share between threads.
    """

    cores: float = 1.0
    memory: int = 0
    disk: int = 0
    gpus: int = 0

    def __post_init__(self) -> None:
        if self.cores < 0 or self.memory < 0 or self.disk < 0 or self.gpus < 0:
            raise ValueError(f"resources must be non-negative: {self}")

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            cores=self.cores + other.cores,
            memory=self.memory + other.memory,
            disk=self.disk + other.disk,
            gpus=self.gpus + other.gpus,
        )

    def __sub__(self, other: "Resources") -> "Resources":
        return Resources(
            cores=self.cores - other.cores,
            memory=self.memory - other.memory,
            disk=self.disk - other.disk,
            gpus=self.gpus - other.gpus,
        )

    def fits_within(self, capacity: "Resources") -> bool:
        """True if this request can be satisfied by ``capacity``."""
        return (
            self.cores <= capacity.cores
            and self.memory <= capacity.memory
            and self.disk <= capacity.disk
            and self.gpus <= capacity.gpus
        )

    def scaled(self, factor: float) -> "Resources":
        """Return a copy with every dimension multiplied by ``factor``.

        Used by the manager's retry-with-larger-allocation policy when a
        task exceeds its declared allocation (paper §2.1).
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return Resources(
            cores=self.cores * factor,
            memory=int(self.memory * factor),
            disk=int(self.disk * factor),
            gpus=self.gpus,  # gpu counts do not fractionally scale
        )

    def exceeds(self, limit: "Resources") -> list[str]:
        """Return the names of dimensions in which ``self`` exceeds ``limit``."""
        over = []
        if self.cores > limit.cores:
            over.append("cores")
        if self.memory > limit.memory:
            over.append("memory")
        if self.disk > limit.disk:
            over.append("disk")
        if self.gpus > limit.gpus:
            over.append("gpus")
        return over

    def to_dict(self) -> dict:
        """Plain-dict form for wire messages and traces."""
        return {
            "cores": self.cores,
            "memory": self.memory,
            "disk": self.disk,
            "gpus": self.gpus,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Resources":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        return cls(
            cores=d.get("cores", 1.0),
            memory=d.get("memory", 0),
            disk=d.get("disk", 0),
            gpus=d.get("gpus", 0),
        )


class ResourcePool:
    """Mutable allocation ledger over a fixed :class:`Resources` capacity.

    A worker owns one pool; the manager mirrors one pool per connected
    worker so placement decisions never overcommit.  The invariant
    ``allocated.fits_within(capacity)`` holds after every public call.
    """

    def __init__(self, capacity: Resources) -> None:
        self.capacity = capacity
        self.allocated = Resources(cores=0, memory=0, disk=0, gpus=0)
        self._holders: dict[str, Resources] = {}

    def available(self) -> Resources:
        """Resources not currently allocated."""
        return self.capacity - self.allocated

    def can_fit(self, request: Resources) -> bool:
        """True if ``request`` would fit without overcommit."""
        return (self.allocated + request).fits_within(self.capacity)

    def allocate(self, holder: str, request: Resources) -> None:
        """Reserve ``request`` under key ``holder`` (e.g. a task id).

        Raises :class:`ResourceExhausted` if the request does not fit and
        ``ValueError`` if the holder already holds an allocation.
        """
        if holder in self._holders:
            raise ValueError(f"holder {holder!r} already has an allocation")
        if not self.can_fit(request):
            raise ResourceExhausted(
                f"cannot allocate {request} (available {self.available()})"
            )
        self._holders[holder] = request
        self.allocated = self.allocated + request

    def release(self, holder: str) -> Resources:
        """Release and return the allocation held by ``holder``."""
        request = self._holders.pop(holder)
        self.allocated = self.allocated - request
        return request

    def holders(self) -> dict[str, Resources]:
        """Snapshot of current holders (copy; safe to iterate)."""
        return dict(self._holders)

    def __len__(self) -> int:
        return len(self._holders)
