"""Workflow event log and trace analysis.

Both runtimes emit the same event schema, and the evaluation figures
are derived views over it: the paper's *task view* (Fig. 12 top row —
one execution interval per task, sorted by start time) and *worker
view* (Fig. 9/10/11/12 bottom — per-worker timelines colored running /
transferring / idle).  Benchmarks regenerate figure series purely from
an :class:`EventLog`, so the analysis here is runtime-agnostic.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Event",
    "EventLog",
    "TaskRow",
    "WorkerBusy",
    "task_rows",
    "worker_busy",
    "completion_series",
    "makespan",
    "peak_transfer_concurrency",
]

#: canonical event kinds emitted by the runtimes
KINDS = frozenset(
    {
        "worker_join",
        "worker_leave",
        "transfer_start",
        "transfer_end",
        "stage_start",  # mini-task materialization (unpacking etc.)
        "stage_end",
        "task_start",
        "task_end",
        "file_cached",
        "file_deleted",
        "library_ready",
        "library_failed",
        "workflow_done",
        # fault injection and recovery (chaos runs pair each injected
        # fault with the recovery action the control plane took)
        "fault_injected",
        "transfer_failed",
        "task_requeued",
        "file_regenerated",
        "worker_blocklist",
        # multi-tenant service mode: client sessions attach to a
        # long-lived manager; rejected requests and cross-tenant cache
        # reuse are first-class facts in the txn log
        "client_attach",
        "client_detach",
        "client_rejected",
        "client_expired",
        "cache_shared",
        # persistent memoization: a submitted task's merkle matched a
        # recorded result (hit), didn't (miss), or matched an entry
        # whose replicas/payloads were gone or corrupt (invalidated,
        # then regenerated rather than served)
        "memo_hit",
        "memo_miss",
        "memo_invalidated",
        # crash-safe manager: journal snapshots, restart replay, and the
        # rejoin grace window (workers re-announce caches, sessions
        # reattach by token, unbacked facts become replica loss)
        "journal_snapshot",
        "manager_restart",
        "worker_rejoined",
        "replica_readopted",
        "session_restored",
        "recovery_complete",
        # result fetch plane: the worker asked to serve a fetch died (or
        # denied holding the object) and the fetch moved on to the next
        # holder / memo payload / lineage regeneration
        "fetch_retried",
        # elastic clusters: a worker announces a graceful departure
        # (worker_drain), the manager finishes migrating its sole-holder
        # objects and releases it (worker_drained), and an autoscaler
        # policy decides to grow or shrink the fleet (autoscale, with
        # category "up"/"down")
        "worker_drain",
        "worker_drained",
        "autoscale",
    }
)


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped fact about workflow execution."""

    time: float
    kind: str
    worker: Optional[str] = None
    task: Optional[str] = None
    file: Optional[str] = None
    size: int = 0
    category: Optional[str] = None


class EventLog:
    """Append-only, time-ordered record of workflow events.

    Sinks attached via :meth:`attach` see each event as it is emitted —
    this is how a :class:`~repro.observe.txnlog.TransactionLogWriter`
    streams the log to disk while the run is still in flight.  Sinks
    run inline under the emitter's lock, so they must be cheap and must
    not re-enter the control plane.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._sinks: list = []

    @classmethod
    def from_events(cls, events) -> "EventLog":
        """Rebuild a log from an event iterable (e.g. a parsed file)."""
        log = cls()
        for e in events:
            if e.kind not in KINDS:
                raise ValueError(f"unknown event kind {e.kind!r}")
            log._events.append(e)
        return log

    def attach(self, sink) -> None:
        """Register a callable invoked with each subsequently emitted event."""
        self._sinks.append(sink)

    def emit(self, time: float, kind: str, **fields) -> Event:
        """Append an event; ``kind`` must be one of the canonical kinds."""
        if kind not in KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        e = Event(time=time, kind=kind, **fields)
        self._events.append(e)
        for sink in self._sinks:
            sink(e)
        return e

    def events(self, kind: Optional[str] = None) -> list[Event]:
        """All events, or only those of one kind, in emission order."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)


@dataclass(frozen=True, slots=True)
class TaskRow:
    """One row of the paper's task view: a task's execution interval."""

    task_id: str
    category: str
    worker: str
    start: float
    end: float


@dataclass
class WorkerBusy:
    """Per-worker activity totals over the run (worker-view summary).

    ``executing``/``transferring``/``staging`` are the total seconds in
    which *at least one* task / transfer / stage operation was active at
    the worker; ``idle`` is connected time with none.  Overlapping
    activities are counted once per category, matching how the figures
    color a worker row.
    """

    worker_id: str
    connected: float = 0.0
    executing: float = 0.0
    transferring: float = 0.0
    staging: float = 0.0

    @property
    def idle(self) -> float:
        busy = self._union_busy if self._union_busy is not None else (
            self.executing + self.transferring + self.staging
        )
        return max(0.0, self.connected - busy)

    #: filled in by the analyzer: seconds with *any* activity (union)
    _union_busy: Optional[float] = None


def task_rows(log: EventLog) -> list[TaskRow]:
    """Extract the task view: one (start, end) interval per task.

    Tasks with a start but no end (cancelled mid-run) are dropped, as
    the figures only show completed intervals.
    """
    starts: dict[str, Event] = {}
    rows: list[TaskRow] = []
    for e in log:
        if e.kind == "task_start" and e.task is not None:
            starts[e.task] = e
        elif e.kind == "task_end" and e.task in starts:
            s = starts.pop(e.task)
            rows.append(
                TaskRow(
                    task_id=e.task,
                    category=s.category or "default",
                    worker=s.worker or "?",
                    start=s.time,
                    end=e.time,
                )
            )
    rows.sort(key=lambda r: (r.start, r.task_id))
    return rows


def _merged_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_s, cur_e = intervals[0]
    for s, e in intervals[1:]:
        if s > cur_e:
            total += cur_e - cur_s
            cur_s, cur_e = s, e
        else:
            cur_e = max(cur_e, e)
    total += cur_e - cur_s
    return total


def worker_busy(log: EventLog, horizon: Optional[float] = None) -> dict[str, WorkerBusy]:
    """Summarize per-worker activity (the worker view, Fig. 9/12 bottom).

    ``horizon`` closes still-open intervals (defaults to the last event
    time).  Overlapping same-kind intervals are merged before summing.
    """
    if horizon is None:
        horizon = max((e.time for e in log), default=0.0)
    open_since: dict[tuple[str, str], list[float]] = {}
    spans: dict[str, dict[str, list[tuple[float, float]]]] = {}
    joins: dict[str, float] = {}
    connected: dict[str, float] = {}

    def close(worker: str, kind: str, end: float) -> None:
        stack = open_since.get((worker, kind))
        if stack:
            start = stack.pop()
            spans.setdefault(worker, {}).setdefault(kind, []).append((start, end))

    pairs = {
        "task_start": ("task_end", "executing"),
        "transfer_start": ("transfer_end", "transferring"),
        "stage_start": ("stage_end", "staging"),
    }
    enders = {v[0]: k for k, v in pairs.items()}
    for e in log:
        if e.worker is None:
            continue
        if e.kind == "worker_join":
            joins[e.worker] = e.time
        elif e.kind == "worker_leave":
            connected[e.worker] = connected.get(e.worker, 0.0) + (
                e.time - joins.pop(e.worker, e.time)
            )
        elif e.kind in pairs:
            open_since.setdefault((e.worker, pairs[e.kind][1]), []).append(e.time)
        elif e.kind in enders:
            close(e.worker, pairs[enders[e.kind]][1], e.time)

    # close whatever is still open at the horizon
    for (worker, kind), stack in open_since.items():
        for start in stack:
            spans.setdefault(worker, {}).setdefault(kind, []).append((start, horizon))
    for worker, since in joins.items():
        connected[worker] = connected.get(worker, 0.0) + (horizon - since)

    out: dict[str, WorkerBusy] = {}
    workers = set(connected) | set(spans)
    for w in workers:
        by_kind = spans.get(w, {})
        busy = WorkerBusy(worker_id=w, connected=connected.get(w, horizon))
        busy.executing = _merged_length(list(by_kind.get("executing", [])))
        busy.transferring = _merged_length(list(by_kind.get("transferring", [])))
        busy.staging = _merged_length(list(by_kind.get("staging", [])))
        all_spans = [iv for ivs in by_kind.values() for iv in ivs]
        busy._union_busy = _merged_length(all_spans)
        out[w] = busy
    return out


def completion_series(
    log: EventLog, points: int = 50, category: Optional[str] = None
) -> list[tuple[float, int]]:
    """Cumulative tasks-completed-over-time curve (Fig. 12 task ramps).

    Returns ``points`` evenly spaced (time, completed count) samples
    from 0 to the last completion, optionally restricted to a category.
    """
    end_times = sorted(
        e.time
        for e in log.events("task_end")
        if category is None or e.category == category
    )
    if not end_times:
        return []
    horizon = end_times[-1]
    samples = []
    for i in range(points + 1):
        t = horizon * i / points
        samples.append((t, bisect.bisect_right(end_times, t)))
    return samples


def peak_transfer_concurrency(log: EventLog) -> dict[str, int]:
    """Replay transfer events into per-source peak concurrency.

    ``transfer_start``/``transfer_end`` carry the serving source in
    their ``category`` field (a worker id, ``@manager``, or a URL host
    key).  The peak is the largest number of simultaneously open
    transfers each source ever served — the quantity the Current
    Transfer Table's per-source limits bound (paper Fig. 11).  Events
    are replayed in *emission* order so same-timestamp start/end pairs
    resolve exactly as the control plane saw them; sources such as
    ``@retrieve`` (result bring-back, not limit-governed) appear in the
    result and can be filtered by the caller.
    """
    open_now: dict[str, int] = {}
    peak: dict[str, int] = {}
    for e in log:
        if e.category is None:
            continue
        if e.kind == "transfer_start":
            open_now[e.category] = open_now.get(e.category, 0) + 1
            peak[e.category] = max(peak.get(e.category, 0), open_now[e.category])
        elif e.kind == "transfer_end":
            open_now[e.category] = max(0, open_now.get(e.category, 0) - 1)
    return peak


def makespan(log: EventLog) -> float:
    """Workflow duration: time of the last task completion (or last event)."""
    ends = [e.time for e in log.events("task_end")]
    if ends:
        return max(ends)
    return max((e.time for e in log), default=0.0)
