"""The shared control plane: one policy engine for every runtime.

The paper's manager is a *policy* layer — the File Replica Table,
Current Transfer Table, locality placement, per-source transfer limits,
mini-task staging, library deployment, retry/regeneration, replication
and garbage collection (paper §2.2/§3.3).  Historically this repo had
two copies of that layer: the threaded/socket :class:`~repro.core.manager.Manager`
and the discrete-event :class:`~repro.sim.simmanager.SimManager`.  This
module extracts the policy into a single runtime-agnostic state machine,
:class:`ControlPlane`, expressed against a small :class:`RuntimePort`
protocol that each runtime implements with its own mechanisms (sockets
and sender threads, or simulated networks and virtual clocks).

Rules of the split:

* **Policy changes go here, and only here.**  If a change affects which
  worker runs a task, which source serves a transfer, when a file is
  replicated, regenerated or collected — it belongs in this file, and
  both runtimes pick it up automatically.
* Adapters own *mechanisms only*: wire formats, threads, virtual-time
  scheduling, payload (de)serialization, and result retrieval.
* The control plane never does I/O and never reads a clock directly;
  time comes from :meth:`RuntimePort.now`, effects go out through the
  other port methods.
"""

from __future__ import annotations

import collections
import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol, Sequence

from repro.core.categories import CategoryTracker
from repro.core.events import EventLog
from repro.core.files import CacheLevel, File, FileRegistry, MiniTaskFile, TempFile
from repro.core.journal import build_task, file_spec, restore_file, task_spec
from repro.core.library import FunctionCall
from repro.core.naming import task_merkle
from repro.core.replica_table import ReplicaTable
from repro.core.resources import ResourcePool, Resources
from repro.core.scheduler import (
    GATE_AVOID,
    GATE_BANNED,
    GATE_OK,
    PlacementIndex,
    ReadyQueue,
    Scheduler,
    WorkerView,
)
from repro.core.task import PythonTask, Task, TaskResult, TaskState
from repro.core.transfer_table import MANAGER_SOURCE, Transfer, TransferTable
from repro.observe.metrics import MetricsRegistry

__all__ = [
    "NO_SOURCE",
    "MINITASK_SOURCE",
    "source_kind",
    "RuntimePort",
    "WorkerState",
    "StagingJob",
    "LibraryState",
    "TenantAccount",
    "ControlPlane",
]

#: fixed-source marker for files that only ever exist at workers (temps)
NO_SOURCE = "@none"
#: fixed-source marker for files materialized by a mini task at the worker
MINITASK_SOURCE = "@minitask"


def source_kind(source: str) -> str:
    """Classify a transfer source key for accounting and figures."""
    if source == MANAGER_SOURCE:
        return "manager"
    if source.startswith("url:"):
        return "url"
    if source == MINITASK_SOURCE:
        return "stage"
    return "peer"


class RuntimePort(Protocol):
    """Mechanisms a runtime provides to the control plane.

    Every method is an *effect*: the control plane has already updated
    its tables and emitted events when a port method is called, so
    implementations only move bytes / schedule callbacks and then feed
    outcomes back through the ``ControlPlane.on_*`` entry points.
    """

    def now(self) -> float:
        """Current time on the runtime's clock (wall or virtual)."""
        ...

    def worker_connected(self, worker_id: str) -> bool:
        """True while the worker can receive commands."""
        ...

    def push_object(self, record: Transfer, level: CacheLevel) -> None:
        """Send a manager-held object to ``record.dest_worker``."""
        ...

    def send_fetch(self, record: Transfer, level: CacheLevel) -> None:
        """Tell ``record.dest_worker`` to pull from a URL or peer source."""
        ...

    def run_minitask(self, job: "StagingJob") -> None:
        """Materialize a mini-task product at ``job.worker_id``."""
        ...

    def start_task(self, task: Task) -> None:
        """Begin executing a dispatched task whose inputs are all present."""
        ...

    def cancel_task(self, task: Task) -> None:
        """Abort a running task at its (still live) worker."""
        ...

    def task_preempted(self, task: Task) -> None:
        """The task's worker vanished; discard any pending completion."""
        ...

    def launch_library(self, lib: "LibraryState", worker_id: str) -> None:
        """Start a library instance whose environment is fully staged."""
        ...

    def store_replica(
        self, worker_id: str, cache_name: str, size: int, level: CacheLevel
    ) -> None:
        """Persist a new replica into the worker's cache model (may evict)."""
        ...

    def delete_replica(self, worker_id: str, cache_name: str) -> None:
        """Remove a garbage-collected object from the worker's cache."""
        ...

    def deliver(self, task: Task, regenerated: bool) -> None:
        """Hand a terminal task back to the application layer."""
        ...

    def request_pump(self) -> None:
        """Ask the runtime to (re)run :meth:`ControlPlane.pump` soon."""
        ...

    def schedule_pump(self, delay: float) -> None:
        """Ask the runtime to pump after ``delay`` seconds (backoffs).

        Optional: the control plane falls back to :meth:`request_pump`
        for ports that do not implement it (delays then degrade to
        best-effort immediate pumps gated by the retry-holdoff checks).
        """
        ...


@dataclass
class WorkerState:
    """The control plane's bookkeeping for one connected worker."""

    worker_id: str
    pool: ResourcePool
    #: ids of tasks dispatched to or running at this worker
    running: set = field(default_factory=set)


@dataclass
class TenantAccount:
    """Per-tenant accounting and quota state (service mode).

    Every task carries a ``tenant`` label ("default" when the manager is
    driven single-tenant); the control plane keeps one account per label
    so the fair-share queue, the quota checks, and the ``tenant.*``
    metrics all read from the same ledger.  ``None`` quotas mean
    unlimited (the single-tenant/loopback default).
    """

    name: str
    #: max simultaneously outstanding (non-terminal) tasks; None = no cap
    task_quota: Optional[int] = None
    #: max cumulative declared input bytes; None = no cap
    byte_quota: Optional[int] = None
    submitted: int = 0
    done: int = 0
    failed: int = 0
    outstanding: int = 0
    running: int = 0
    bytes_declared: int = 0
    cache_hits: int = 0
    #: completions un-counted for regeneration (``done`` dipped by one
    #: per entry until the producer re-delivers)
    regens: int = 0
    #: cache names this tenant declared or produced (its namespace)
    names: set = field(default_factory=set)

    def task_headroom(self) -> Optional[int]:
        """Remaining submit slots, or None when unlimited."""
        if self.task_quota is None:
            return None
        return max(0, self.task_quota - self.outstanding)


@dataclass
class StagingJob:
    """A pending mini-task materialization at one worker."""

    file: MiniTaskFile
    worker_id: str
    transfer_id: str
    started: bool = False


class LibraryState:
    """Deployment state of one library across workers.

    Runtimes subclass this to carry their own launch mechanisms (a
    serialized function payload, a simulated startup time).  Phases per
    worker: ``staging`` (environment files in flight) → ``starting``
    (instance launching) → ``ready`` | ``failed``.
    """

    def __init__(
        self,
        name: str,
        env_files: Sequence[File] = (),
        resources: Optional[Resources] = None,
        slots: int = 1,
    ) -> None:
        self.name = name
        self.env_files = list(env_files)
        self.resources = resources if resources is not None else Resources(cores=1)
        self.slots = slots
        self.installed = False
        #: worker_id -> "staging" | "starting" | "ready" | "failed"
        self.state: dict[str, str] = {}
        #: internal pseudo-tasks used for environment staging, by worker
        self.staging_tasks: dict[str, Task] = {}


class ControlPlane:
    """Runtime-agnostic manager state machine (paper Fig. 1 policy box).

    Owns the ready queue, the replica/transfer tables, the placement
    pump, staging and library state machines, retry/regeneration policy
    and garbage collection.  All effects flow through ``port``; all
    outcomes come back through the ``on_*`` methods.  The control plane
    is not thread-safe — the threaded runtime serializes calls under its
    own lock, the simulator is single-threaded by construction.
    """

    def __init__(
        self,
        port: RuntimePort,
        worker_transfer_limit: Optional[int] = 3,
        source_transfer_limit: Optional[int] = 100,
        locality: bool = True,
        transfer_retries: int = 3,
        temp_replica_count: int = 1,
        loss_retries: Optional[int] = None,
        strict_loss: bool = False,
        resource_learning: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        transfer_backoff_base: float = 0.5,
        transfer_backoff_max: float = 30.0,
        requeue_backoff_base: float = 0.0,
        blocklist_threshold: int = 5,
        rng_seed: int = 0,
        fair_share: bool = True,
        default_task_quota: Optional[int] = None,
        default_byte_quota: Optional[int] = None,
        memo=None,
        memo_opt_out: Optional[Iterable[str]] = None,
        journal=None,
    ) -> None:
        self.port = port
        self.registry = FileRegistry()
        self.replicas = ReplicaTable()
        self.transfers = TransferTable(
            worker_limit=worker_transfer_limit, source_limit=source_transfer_limit
        )
        self.scheduler = Scheduler(self.replicas, self.transfers, locality=locality)
        self.log = EventLog()
        self.categories = CategoryTracker()
        self.resource_learning = resource_learning
        self.transfer_retries = transfer_retries
        #: target replica count for task-produced files (paper §2.2:
        #: "duplicating items for reliability"); 1 disables replication
        self.temp_replica_count = max(1, temp_replica_count)
        #: worker-loss retry budget; None uses each task's ``max_retries``
        self.loss_retries = loss_retries
        #: raise instead of failing the task when the loss budget is spent
        self.strict_loss = strict_loss
        #: exponential-backoff parameters for transfer retries (base=0
        #: disables the holdoff and restores instant re-planning)
        self.transfer_backoff_base = transfer_backoff_base
        self.transfer_backoff_max = transfer_backoff_max
        #: backoff base for task requeues (loss/sandbox/resource retries);
        #: 0 keeps the historical requeue-immediately behaviour
        self.requeue_backoff_base = requeue_backoff_base
        #: failure score at which a worker stops receiving new placements
        self.blocklist_threshold = blocklist_threshold
        #: deterministic jitter stream (scoped so chaos runs replay bit-
        #: identically for a given seed)
        self._rng = random.Random(f"{rng_seed}:backoff")

        #: deficit-round-robin across tenants in the ready queue; off
        #: restores strict global (-priority, seq) order (FIFO baseline)
        self.fair_share = fair_share
        #: quotas stamped on tenant accounts as they first appear; the
        #: service layer may override per tenant after creation
        self.default_task_quota = default_task_quota
        self.default_byte_quota = default_byte_quota
        self.tenants: dict[str, TenantAccount] = {}
        self._tenant_gauges: dict[str, dict] = {}

        #: persistent memoization store (``repro.memo.MemoStore``) or
        #: None; policy — consult / serve / invalidate — lives here, the
        #: store is mechanism only
        self.memo = memo
        #: tenants that opted out of memoization (both lookup and record)
        self.memo_opt_out: set[str] = set(memo_opt_out or ())
        #: task_id → merkle for in-flight eligible tasks (recorded on DONE)
        self._memo_pending: dict[str, str] = {}
        #: memo-hit tasks awaiting completion at the next pump — deferred
        #: so ``port.deliver`` never fires inside ``submit`` (the service
        #: layer registers its bookkeeping only after submit returns)
        self._memo_complete: list[Task] = []

        #: durable write-ahead journal (``repro.core.journal
        #: .ControlPlaneJournal``) or None; every state transition that
        #: must survive a manager crash is appended through ``_j()``
        self.journal = journal
        #: True while :meth:`restore_from_journal` replays — replayed
        #: transitions must not be re-appended to the journal
        self._restoring = False
        #: recovery grace window: after a restart the pump holds new
        #: placements until the previously-known workers rejoined (or a
        #: deadline passed), so surviving replicas re-adopt before the
        #: lineage machinery concludes anything was lost
        self._recovering = False
        self._recovery_deadline = 0.0
        self._recovery_expected = 0
        self._recovery_joined = 0
        #: output names recorded DONE before the crash, awaiting a live
        #: backing (re-announced replica / refetchable source) — the
        #: OxyMake soundness rule applied at the end of the grace window
        self._recovery_await: dict[str, int] = {}
        self._recovery_backed: set[str] = set()

        self.tasks: dict[str, Task] = {}
        self._ready = ReadyQueue(fair_share=fair_share)
        #: per-manager task id/sequence counter: two managers in one
        #: process issue identical ``t1, t2, …`` streams (chaos replay)
        self._task_seq = itertools.count(1)
        self._dispatched: dict[str, Task] = {}
        #: incremental staging indexes: which dispatched tasks consume a
        #: cache name, which are dirty (an input-touching replica or
        #: transfer event arrived), and which last planned a deferral
        #: (waiting on source capacity / gate holdoffs, re-planned every
        #: pump since no input event announces a freed slot)
        self._dispatched_by_input: dict[str, set[str]] = {}
        self._stage_dirty: set[str] = set()
        self._deferred_staging: set[str] = set()
        self._running: dict[str, Task] = {}
        #: tasks whose completion awaits runtime-side retrieval
        self._finishing: dict[str, Task] = {}
        self.workers: dict[str, WorkerState] = {}

        self.fixed_sources: dict[str, str] = {}
        self.sizes: dict[str, int] = {}
        self.libraries: dict[str, LibraryState] = {}
        self._lib_load: collections.Counter = collections.Counter()
        self._staging: list[StagingJob] = []
        self._pinned: dict[str, collections.Counter] = collections.defaultdict(
            collections.Counter
        )
        self._input_refs: collections.Counter = collections.Counter()
        #: failed-attempt counts keyed by (cache_name, source) — one
        #: budget *per source*, so a flaky peer cannot starve a healthy
        #: one; reset when a transfer from that source succeeds
        self._transfer_attempts: collections.Counter = collections.Counter()
        #: earliest next-attempt time per (cache_name, source) (backoff)
        self._retry_at: dict[tuple[str, str], float] = {}
        #: per-worker failure score: grows on failures/corruption it
        #: served, shrinks on successes; at blocklist_threshold the
        #: worker stops receiving placements and is avoided as a source
        self.failure_scores: collections.Counter = collections.Counter()
        self.blocklist: set[str] = set()
        #: workers gracefully departing (elastic scale-down): they keep
        #: serving running tasks and peer transfers but receive no new
        #: placements; sole-holder objects migrate to survivors first
        self.draining: set[str] = set()
        #: draining workers whose release was already ordered through
        #: the port's ``finish_drain`` hook (awaiting the actual leave)
        self._drain_released: set[str] = set()
        #: per-draining-worker migration accounting for the
        #: ``worker_drained`` event: objects/bytes re-replicated so far
        self._drain_stats: dict[str, dict] = {}
        #: ids of regenerated producers: redelivery to wait() is suppressed
        self._regenerated: set[str] = set()
        #: earliest already-scheduled delayed pump (coalesces timers)
        self._next_wake: float = 0.0

        self.outstanding = 0
        self.done_count = 0
        self.tasks_requeued = 0
        self.transfer_counts: collections.Counter = collections.Counter()
        self.bytes_by_source: collections.Counter = collections.Counter()
        self.closed = False

        # observability: instrument handles are resolved once here so the
        # hot paths below touch no registry locks, only the instruments'
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_pump = self.metrics.histogram("pump.latency_seconds")
        self._m_ready_depth = self.metrics.gauge("queue.ready_depth")
        self._m_transfers_open = self.metrics.gauge("transfers.in_flight")
        self._m_staging_open = self.metrics.gauge("staging.in_flight")
        self._m_cache_hits = self.metrics.counter("cache.hits")
        self._m_cache_misses = self.metrics.counter("cache.misses")
        self._m_evictions = self.metrics.counter("cache.evictions")
        self._m_eviction_bytes = self.metrics.counter("cache.eviction_bytes")
        self._m_sandbox = self.metrics.histogram("task.sandbox_setup_seconds")
        self._m_exec = self.metrics.histogram("task.execution_seconds")
        self._m_invoke = self.metrics.histogram("library.invoke_seconds")
        self._m_transfers_failed = self.metrics.counter("transfers.failed")
        self._m_transfers_corrupt = self.metrics.counter("transfers.corrupt")
        self._m_requeues = self.metrics.counter("recovery.requeues")
        self._m_regens = self.metrics.counter("recovery.regenerations")
        self._m_blocklisted = self.metrics.counter("workers.blocklisted")
        self._m_faults = self.metrics.counter("faults.injected")
        self._m_memo_hits = self.metrics.counter("memo.hits")
        self._m_memo_misses = self.metrics.counter("memo.misses")
        self._m_memo_invalidated = self.metrics.counter("memo.invalidated")
        self._m_memo_bytes = self.metrics.counter("memo.bytes_saved")
        # result fetch plane (pass-by-reference results, ROADMAP item 3)
        self._m_fetch_serves = self.metrics.counter("fetch.serves")
        self._m_fetch_bytes = self.metrics.counter("fetch.bytes")
        self._m_fetch_retries = self.metrics.counter("fetch.retries")
        self._m_proxies = self.metrics.counter("proxy.published")
        # elastic clusters (ROADMAP item 5a): graceful drains and the
        # autoscaler's fleet decisions
        self._m_drains = self.metrics.counter("elastic.drains_started")
        self._m_drains_done = self.metrics.counter("elastic.drains_completed")
        self._m_drain_objects = self.metrics.counter("elastic.drain_objects_replicated")
        self._m_drain_bytes = self.metrics.counter("elastic.drain_bytes_replicated")
        self._m_drain_stranded = self.metrics.counter("elastic.drain_objects_stranded")
        self._m_scale_up = self.metrics.counter("elastic.scale_up")
        self._m_scale_down = self.metrics.counter("elastic.scale_down")
        self._m_restarts = self.metrics.counter("recovery.manager_restarts")
        self._m_readopted = self.metrics.counter("recovery.replicas_readopted")
        self._m_resumed = self.metrics.counter("recovery.tasks_resumed")
        self._m_restored_done = self.metrics.counter("recovery.tasks_restored_done")
        self._m_replayed = self.metrics.counter("recovery.journal_records_replayed")
        self._m_snapshots = self.metrics.counter("journal.snapshots")
        if journal is not None:
            journal.on_compact = self._on_journal_compact
        #: per-source-kind concurrency gauges, created as kinds appear
        self._kind_gauges: dict[str, "object"] = {}
        self._pump_depth = 0
        #: scheduler hot-path instruments: per-pump policy time in µs
        #: and how many (task, worker) pairs placement actually scored
        self._m_pump_us = self.metrics.histogram("sched.pump_us")
        self._m_candidates = self.metrics.counter("sched.candidates_scored")

        # the scheduler consults the control plane's failure knowledge
        # when ranking placements and picking transfer sources
        self.scheduler.transfer_gate = self._transfer_gate
        self.scheduler.failure_score = lambda wid: self.failure_scores[wid]
        self.scheduler.candidates_counter = self._m_candidates

    def _j(self):
        """The journal to append to, or None (absent / replaying)."""
        if self.journal is None or self._restoring:
            return None
        return self.journal

    def _on_journal_compact(self, lifetime: int) -> None:
        """The journal rolled a compacting snapshot."""
        self._m_snapshots.inc()
        self.log.emit(
            self.port.now(), "journal_snapshot", size=lifetime,
        )

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------

    def declare(self, f: File, source: str, size: Optional[int] = None) -> File:
        """Register a named file with its fixed source and size."""
        canonical = self.registry.register(f)
        self.fixed_sources[f.cache_name] = source
        self.sizes[f.cache_name] = size if size is not None else (f.size or 0)
        j = self._j()
        if j is not None:
            j.record_declare(file_spec(f, source, self.sizes[f.cache_name]))
        return canonical

    def declare_output_file(self, f: File) -> None:
        """Register a task output that exists only once produced."""
        self.registry.register(f)
        self.fixed_sources[f.cache_name] = NO_SOURCE
        self.sizes.setdefault(f.cache_name, f.size or 0)
        j = self._j()
        if j is not None:
            j.record_declare(
                file_spec(f, NO_SOURCE, self.sizes[f.cache_name])
            )

    def adopt_replica(self, worker_id: str, cache_name: str, size: int) -> None:
        """Adopt a pre-existing cache entry announced by a joining worker."""
        self.replicas.add_replica(cache_name, worker_id, size)
        self.sizes.setdefault(cache_name, size)
        self.fixed_sources.setdefault(cache_name, NO_SOURCE)
        j = self._j()
        if j is not None:
            j.record_replica(worker_id, cache_name, size)
        if (
            self._recovering
            and cache_name in self._recovery_await
            and cache_name not in self._recovery_backed
        ):
            self._recovery_backed.add(cache_name)
            self._m_readopted.inc()
            self.log.emit(
                self.port.now(), "replica_readopted",
                worker=worker_id, file=cache_name, size=size,
            )

    # ------------------------------------------------------------------
    # tenants: namespaces, quotas and per-tenant accounting
    # ------------------------------------------------------------------

    def tenant_account(self, name: str) -> TenantAccount:
        """The (lazily created) account for one tenant label."""
        acct = self.tenants.get(name)
        if acct is None:
            acct = self.tenants[name] = TenantAccount(
                name=name,
                task_quota=self.default_task_quota,
                byte_quota=self.default_byte_quota,
            )
            self._tenant_gauges[name] = {
                "queued": self.metrics.gauge(f"tenant.{name}.tasks_queued"),
                "running": self.metrics.gauge(f"tenant.{name}.tasks_running"),
                "done": self.metrics.counter(f"tenant.{name}.tasks_done"),
                "failed": self.metrics.counter(f"tenant.{name}.tasks_failed"),
                "bytes": self.metrics.gauge(f"tenant.{name}.bytes_declared"),
                "headroom": self.metrics.gauge(f"tenant.{name}.quota_headroom"),
                "hits": self.metrics.counter(f"tenant.{name}.cache_hits"),
                "regens": self.metrics.counter(f"tenant.{name}.regenerations"),
            }
            self._sync_tenant(acct)
        return acct

    def _sync_tenant(self, acct: TenantAccount) -> None:
        """Refresh the tenant's gauges from its ledger."""
        g = self._tenant_gauges[acct.name]
        g["queued"].set(max(0, acct.outstanding - acct.running))
        g["running"].set(acct.running)
        g["bytes"].set(acct.bytes_declared)
        headroom = acct.task_headroom()
        g["headroom"].set(-1 if headroom is None else headroom)

    def set_tenant_quota(
        self,
        tenant: str,
        task_quota: Optional[int] = None,
        byte_quota: Optional[int] = None,
    ) -> TenantAccount:
        """Override one tenant's quotas (None = unlimited dimension)."""
        acct = self.tenant_account(tenant)
        acct.task_quota = task_quota
        acct.byte_quota = byte_quota
        self._sync_tenant(acct)
        j = self._j()
        if j is not None:
            j.record_quota(tenant, task_quota, byte_quota)
        return acct

    def tenant_submit_blocked(self, tenant: str) -> Optional[str]:
        """Reason a submit for ``tenant`` must be refused, or None."""
        acct = self.tenant_account(tenant)
        headroom = acct.task_headroom()
        if headroom is not None and headroom <= 0:
            return (
                f"task quota exceeded: {acct.outstanding} outstanding "
                f"of {acct.task_quota} allowed"
            )
        return None

    def tenant_charge_bytes(self, tenant: str, nbytes: int) -> Optional[str]:
        """Charge declared bytes against the tenant's byte quota.

        Returns a refusal reason (and charges nothing) when the quota
        would be exceeded; None on success.
        """
        acct = self.tenant_account(tenant)
        if (
            acct.byte_quota is not None
            and acct.bytes_declared + nbytes > acct.byte_quota
        ):
            return (
                f"byte quota exceeded: {acct.bytes_declared + nbytes} "
                f"declared of {acct.byte_quota} allowed"
            )
        acct.bytes_declared += nbytes
        self._sync_tenant(acct)
        j = self._j()
        if j is not None:
            j.record_tenant_bytes(tenant, nbytes)
        return None

    def tenant_add_name(self, tenant: str, cache_name: str) -> None:
        """Admit a cache name into the tenant's namespace."""
        self.tenant_account(tenant).names.add(cache_name)
        j = self._j()
        if j is not None:
            j.record_tenant_name(tenant, cache_name)

    def tenant_cache_hit(self, tenant: str, cache_name: str, size: int) -> None:
        """A tenant declared content already known to the service."""
        acct = self.tenant_account(tenant)
        acct.cache_hits += 1
        self._tenant_gauges[tenant]["hits"].inc()
        self.log.emit(
            self.port.now(), "cache_shared",
            file=cache_name, size=size, category=tenant,
        )

    # ------------------------------------------------------------------
    # memoization: serve recorded results for deterministic resubmissions
    # ------------------------------------------------------------------

    def memo_renameable(self, f: File) -> bool:
        """True when an output may take a memo-derived cache name.

        Unnamed outputs always may.  A declared ``TempFile`` still
        carrying its placeholder random name may be renamed only while
        nothing references that name — no submitted consumer counted it
        as an input and no replica exists under it — since renaming
        later would strand those references on a name never produced.
        """
        name = f.cache_name
        if name is None:
            return True
        if not isinstance(f, TempFile):
            return False
        parts = name.split("-", 2)
        if len(parts) < 2 or not parts[1].startswith("rnd"):
            return False
        return (
            self.replicas.replica_count(name) == 0
            and self._input_refs.get(name, 0) == 0
        )

    def _memo_try_hit(self, task: Task) -> bool:
        """Serve ``task`` from the memo store if soundly possible.

        Returns True when the task's recorded outputs were adopted and
        the task is queued for immediate completion (it must then *not*
        enter the ready queue).  Eligibility: a store is attached, the
        application asserted determinism, the task produces outputs, and
        its tenant did not opt out.  Soundness (OxyMake's rule): every
        recorded output must be backed by a live replica or a payload
        the adapter md5-verified; otherwise the entry is invalidated and
        the task runs — a corrupt memo entry is never served.
        """
        if self.memo is None or not task.deterministic or not task.outputs:
            return False
        if task.tenant in self.memo_opt_out:
            return False
        try:
            task.merkle = task_merkle(task)
        except RuntimeError:
            return False  # unnamed inputs: not memoizable as submitted
        now = self.port.now()
        entry = self.memo.get(task.merkle)
        if entry is not None:
            # the recorded binding must describe exactly the outputs this
            # submission expects — a rename means a different recipe even
            # if the merkle collided (pre-named outputs are part of it)
            expected = {o.sandbox: o.cache_name for o in entry.outputs}
            current = {rn: f.cache_name for rn, f in task.outputs}
            if expected != current:
                entry = None
        if entry is not None:
            bad = self._memo_validate(entry)
            if bad is not None:
                self.memo.remove(entry.merkle)
                self._m_memo_invalidated.inc()
                self.log.emit(
                    now, "memo_invalidated",
                    task=task.task_id, file=bad, category=task.tenant,
                )
                entry = None
        if entry is not None:
            # adapters that must reconstruct an application-visible value
            # (PythonTask results) can veto the hit when they cannot
            finalize = getattr(self.port, "memo_finalize", None)
            if finalize is not None and not finalize(task, entry):
                entry = None
        if entry is None:
            self._m_memo_misses.inc()
            self.log.emit(
                now, "memo_miss",
                task=task.task_id, file=task.merkle, category=task.tenant,
            )
            self._memo_pending[task.task_id] = task.merkle
            return False
        saved = 0
        for out in entry.outputs:
            name = out.cache_name
            self.sizes[name] = out.size
            if name in self.registry:
                self.registry.by_name(name).size = out.size
            if self.replicas.replica_count(name) == 0:
                # payload-backed: the manager serves the bytes itself
                self.fixed_sources[name] = MANAGER_SOURCE
            saved += out.size
        self.memo.touch(entry.merkle, now)
        self._m_memo_hits.inc()
        self._m_memo_bytes.inc(saved)
        self.log.emit(
            now, "memo_hit",
            task=task.task_id, file=task.merkle, size=saved, category=task.tenant,
        )
        self._memo_complete.append(task)
        return True

    def _memo_validate(self, entry) -> Optional[str]:
        """First unsound output cache name of ``entry``, or None if sound."""
        attach = getattr(self.port, "memo_attach", None)
        for out in entry.outputs:
            if self.replicas.replica_count(out.cache_name) > 0:
                continue
            if attach is not None and attach(out.cache_name, out.size, out.md5):
                continue
            return out.cache_name
        return None

    def _memo_record(self, task: Task, merkle: str) -> None:
        """Bind a finished task's outputs to its merkle in the store."""
        from repro.memo.store import MemoOutput

        outputs = []
        for remote_name, f in task.outputs:
            if f.cache_name is None:
                return  # an unnamed output cannot be recovered later
            outputs.append(
                MemoOutput(
                    sandbox=remote_name,
                    cache_name=f.cache_name,
                    size=self.sizes.get(f.cache_name, f.size or 0),
                )
            )
        if isinstance(task, PythonTask):
            kind, command = "python", "@pytask"
        elif isinstance(task, FunctionCall):
            kind, command = "call", f"{task.library_name}.{task.function_name}"
        else:
            kind, command = "command", task.command
        self.memo.record(
            merkle, kind, command, task.tenant, outputs, now=self.port.now()
        )
        # adapters may retain small payloads so hits survive every
        # worker cache being gone (daemon restarts, new clusters)
        persist = getattr(self.port, "memo_persist", None)
        if persist is not None:
            persist(task, merkle, outputs)

    def _drain_memo_complete(self) -> None:
        """Complete memo-hit tasks parked since the last pump."""
        while self._memo_complete:
            pending, self._memo_complete = self._memo_complete, []
            for task in pending:
                if not task.is_done:
                    self.complete_task(
                        task, TaskResult(exit_code=0, output="memo")
                    )

    # ------------------------------------------------------------------
    # task lifecycle: submission, cancellation, completion
    # ------------------------------------------------------------------

    def submit(self, task: Task) -> str:
        """Accept a validated, fully-named task into the ready queue.

        Submission stamps the task's identity: a monotonic per-manager
        ``seq`` (the FIFO key the scheduler orders by) and, unless the
        application supplied one, the id ``t<seq>``.  A deterministic
        task whose merkle matches a sound memo entry never reaches the
        ready queue: its outputs are adopted and it completes at the
        next pump without dispatching.
        """
        task.seq = next(self._task_seq)
        if task.task_id is None:
            task.task_id = f"t{task.seq}"
        for _, f in task.inputs:
            self._input_refs[f.cache_name] += 1
        for _, f in task.outputs:
            # record lineage for regeneration after replica loss
            setattr(f, "producer_task_id", task.task_id)
        if self.resource_learning and not task.resources_explicit:
            task.resources = self.categories.first_allocation(
                task.category, task.resources
            )
        task.state = TaskState.READY
        task.submitted_at = self.port.now()
        self.tasks[task.task_id] = task
        j = self._j()
        if j is not None:
            j.record_submit(
                task.task_id,
                task.seq,
                task.tenant,
                task_spec(task),
                getattr(task, "session_token", None),
            )
        if not self._memo_try_hit(task):
            self._ready.push(task)
        self.outstanding += 1
        acct = self.tenant_account(task.tenant)
        acct.submitted += 1
        acct.outstanding += 1
        self._sync_tenant(acct)
        self.port.request_pump()
        return task.task_id

    def cancel(self, task: Task) -> bool:
        """Withdraw a submitted task; False if already terminal."""
        if task.is_done or task.task_id not in self.tasks:
            return False
        if task.state == TaskState.READY:
            self._ready.discard(task)
            self._gc_task_inputs(task)
        elif task.state in (TaskState.DISPATCHED, TaskState.RUNNING):
            if task.state == TaskState.RUNNING and self.port.worker_connected(
                task.worker_id or ""
            ):
                self.port.cancel_task(task)
            self._abort_placement(task)
            self._dispatched.pop(task.task_id, None)
            self._drop_stage_index(task)
            self._pop_running(task.task_id)
            self._gc_task_inputs(task)
        task.state = TaskState.CANCELLED
        task.result = TaskResult(exit_code=-1, failure="cancelled")
        self.outstanding -= 1
        acct = self.tenant_account(task.tenant)
        acct.outstanding -= 1
        self._sync_tenant(acct)
        self.port.deliver(task, regenerated=False)
        self.port.request_pump()
        return True

    def idle(self) -> bool:
        """True when no submitted task remains in any non-terminal stage."""
        return not (
            self._ready or self._dispatched or self._running or self._finishing
        )

    @property
    def ready_depth(self) -> int:
        """Tasks queued for placement — the autoscaler's load signal."""
        return len(self._ready)

    def on_task_result(
        self, worker_id: str, task_id: str, result: TaskResult
    ) -> Optional[Task]:
        """A worker reported a task attempt's outcome.

        Releases the placement, applies the sandbox/resource retry
        policies, and returns the task if it is ready to complete (the
        adapter then decodes payloads / registers outputs and calls
        :meth:`complete_task`).  Returns None for stale reports and for
        attempts that were requeued by a retry policy.
        """
        task = self._pop_running(task_id)
        if task is None:
            return None
        state = self.workers.get(worker_id)
        if state is not None:
            state.running.discard(task_id)
            try:
                state.pool.release(task_id)
            except KeyError:
                pass
        if isinstance(task, FunctionCall):
            self._lib_load[(worker_id, task.library_name)] -= 1
        # inputs stay pinned until complete_task/_requeue so that output
        # registration cannot evict the inputs the task just consumed
        task.finished_at = self.port.now()
        self.log.emit(
            self.port.now(), "task_end",
            worker=worker_id, task=task_id, category=task.category,
        )
        self.categories.record(
            task.category,
            result.measured or task.resources,
            exceeded=bool(result.exceeded),
        )
        if result.staging_time is not None:
            self._m_sandbox.observe(result.staging_time)
        if result.execution_time is not None:
            self._m_exec.observe(result.execution_time)
            if isinstance(task, FunctionCall):
                self._m_invoke.observe(result.execution_time)
        # sandbox failures mean an input vanished between dispatch and
        # execution (e.g. autonomous cache eviction won a race): replan
        # the transfers and retry rather than failing the task
        if result.failure == "sandbox" and task.retries_used < task.max_retries:
            self._requeue(task, reason="sandbox")
            return None
        # resource-exceeded retry policy (paper §2.1): grow to the
        # category's observed peak when learning, else scale the request
        if (
            result.exceeded
            and result.exit_code != 0
            and task.retries_used < task.max_retries
        ):
            if self.resource_learning:
                task.resources = self.categories.retry_allocation(
                    task.category, task.resources
                )
            else:
                task.resources = task.resources.scaled(task.retry_resource_growth)
            self._requeue(task, reason="resources")
            return None
        return task

    def _requeue(self, task: Task, reason: str = "retry") -> None:
        self._unpin(task)
        self._drop_stage_index(task)
        task.retries_used += 1
        task.state = TaskState.READY
        task.worker_id = None
        task.not_before = self._requeue_holdoff(task)
        self._ready.push(task)
        self._m_requeues.inc()
        self.log.emit(
            self.port.now(), "task_requeued",
            task=task.task_id, category=reason, size=task.retries_used,
        )
        self.port.request_pump()

    def _requeue_holdoff(self, task: Task) -> float:
        """Earliest re-placement time for a requeued task (0 = now)."""
        if self.requeue_backoff_base <= 0:
            return 0.0
        delay = self._backoff_delay(self.requeue_backoff_base, task.retries_used)
        self._schedule_pump(delay)
        return self.port.now() + delay

    def _unpin(self, task: Task) -> None:
        wid = task.worker_id
        if wid is None:
            return
        pinned = self._pinned[wid]
        for name in task.input_cache_names():
            pinned[name] -= 1

    def complete_task(self, task: Task, result: TaskResult, defer: bool = False) -> None:
        """Finish a task whose outputs are registered (or being retrieved).

        With ``defer`` the task parks in ``WAITING_RETRIEVAL`` until the
        adapter calls :meth:`finish_deferred` (result value coming back
        over the wire, bring-back transfers still in flight).
        """
        self._unpin(task)
        self._gc_task_inputs(task)
        for _, f in task.outputs:
            if f.cache_name and self.replicas.replica_count(f.cache_name) > 0:
                self._ensure_replication(f.cache_name)
        if defer:
            task.state = TaskState.WAITING_RETRIEVAL
            task.result = result
            self._finishing[task.task_id] = task
        else:
            self._finish_task(task, result)
        self.port.request_pump()

    def finish_deferred(self, task: Task, result: TaskResult) -> None:
        """Complete a task that was parked pending retrieval."""
        self._finishing.pop(task.task_id, None)
        self._finish_task(task, result)
        self.port.request_pump()

    def _pop_running(self, task_id: str) -> Optional[Task]:
        """Remove a task from the running set, keeping tenant gauges true."""
        task = self._running.pop(task_id, None)
        if task is not None:
            acct = self.tenant_account(task.tenant)
            acct.running -= 1
            self._sync_tenant(acct)
        return task

    def _finish_task(self, task: Task, result: TaskResult) -> None:
        if task.is_done:
            return
        task.result = result
        ok = result.ok
        if (
            isinstance(task, PythonTask)
            and result.exit_code == 1
            and task._output_set
        ):
            ok = True  # the function's exception is delivered through output()
        task.state = TaskState.DONE if ok else TaskState.FAILED
        self._ready.discard(task)
        self._dispatched.pop(task.task_id, None)
        self._drop_stage_index(task)
        self._pop_running(task.task_id)
        self._finishing.pop(task.task_id, None)
        self.outstanding -= 1
        if task.state == TaskState.DONE:
            self.done_count += 1
        merkle = self._memo_pending.pop(task.task_id, None)
        if task.state == TaskState.DONE and merkle is not None and self.memo is not None:
            self._memo_record(task, merkle)
        regenerated = task.task_id in self._regenerated
        self._regenerated.discard(task.task_id)
        acct = self.tenant_account(task.tenant)
        acct.outstanding -= 1
        if task.state == TaskState.DONE:
            acct.done += 1
            if not regenerated:
                # a regenerated completion was already counted once and
                # un-counted by the requeue; only the ledger field is
                # restored — the monotonic counter must not double-count
                self._tenant_gauges[task.tenant]["done"].inc()
        else:
            acct.failed += 1
            self._tenant_gauges[task.tenant]["failed"].inc()
        # produced outputs join the owning tenant's namespace so a
        # follow-up workflow may reference them without re-declaring
        for _, f in task.outputs:
            if f.cache_name:
                acct.names.add(f.cache_name)
        self._sync_tenant(acct)
        j = self._j()
        if j is not None:
            if task.state == TaskState.DONE:
                j.record_done(
                    task.task_id,
                    [
                        [f.cache_name, self.sizes.get(f.cache_name, f.size or 0)]
                        for _, f in task.outputs
                        if f.cache_name
                    ],
                )
            else:
                j.record_failed(
                    task.task_id,
                    result.failure or f"exit {result.exit_code}",
                )
        self.port.deliver(task, regenerated=regenerated)

    def _abort_placement(self, task: Task) -> None:
        """Undo a dispatch: release pool, slots and pins at the worker."""
        wid = task.worker_id
        state = self.workers.get(wid or "")
        if state is None:
            return
        try:
            state.pool.release(task.task_id)
        except KeyError:
            pass
        state.running.discard(task.task_id)
        if isinstance(task, FunctionCall):
            self._lib_load[(wid, task.library_name)] -= 1
        self._unpin(task)

    def _gc_task_inputs(self, task: Task) -> None:
        """Drop input references; collect task-lifetime files at zero."""
        for name in task.input_cache_names():
            self._input_refs[name] -= 1
            if (
                self._input_refs[name] <= 0
                and name in self.registry
                and self.registry.by_name(name).cache_level == CacheLevel.TASK
            ):
                for holder in self.replicas.forget_name(name):
                    self.port.delete_replica(holder, name)
                    self.log.emit(
                        self.port.now(), "file_deleted", worker=holder, file=name
                    )
                self._mark_stage_dirty(name)

    # -- staging dirty-set maintenance ---------------------------------

    def _mark_stage_dirty(self, cache_name: str) -> None:
        """A replica/transfer event touched ``cache_name``: re-plan the
        dispatched tasks that consume it on the next pump."""
        tids = self._dispatched_by_input.get(cache_name)
        if tids is None:
            return
        tids &= self._dispatched.keys()  # prune tasks that moved on
        if tids:
            self._stage_dirty |= tids
        else:
            del self._dispatched_by_input[cache_name]

    def _mark_all_stage_dirty(self) -> None:
        """Cluster-membership change: re-plan every dispatched task."""
        self._stage_dirty |= self._dispatched.keys()

    def _drop_stage_index(self, task: Task) -> None:
        """Remove a task leaving DISPATCHED from the staging indexes."""
        tid = task.task_id
        self._stage_dirty.discard(tid)
        self._deferred_staging.discard(tid)
        for name in task.input_cache_names():
            tids = self._dispatched_by_input.get(name)
            if tids is not None:
                tids.discard(tid)
                if not tids:
                    del self._dispatched_by_input[name]

    def fail_tasks_needing(self, cache_name: str, reason: str) -> None:
        """Terminally fail every queued/staged task that needs a dead input."""
        doomed = [
            t
            for t in self._ready.tasks() + list(self._dispatched.values())
            if cache_name in t.input_cache_names()
        ]
        for t in doomed:
            if t.state == TaskState.DISPATCHED:
                self._abort_placement(t)
            self._gc_task_inputs(t)
            self._finish_task(
                t,
                TaskResult(
                    exit_code=-1, failure=f"input {cache_name} unavailable: {reason}"
                ),
            )

    # ------------------------------------------------------------------
    # replica and transfer bookkeeping
    # ------------------------------------------------------------------

    def register_replica(
        self, worker_id: str, cache_name: str, size: int, store: bool = False
    ) -> None:
        """Record that a worker now holds an object; wake waiting stages.

        ``store`` asks the runtime to persist the replica into its cache
        model first (the simulator inserts and may evict; the real
        worker already wrote it to disk before reporting).
        """
        level = (
            self.registry.by_name(cache_name).cache_level
            if cache_name in self.registry
            else CacheLevel.WORKFLOW
        )
        if store:
            self.port.store_replica(worker_id, cache_name, size, level)
        try:
            self.replicas.add_replica(cache_name, worker_id, size)
        except ValueError:
            # a regenerated producer may emit a slightly different size;
            # keep the first-learned one rather than killing the runtime
            self.replicas.add_replica(cache_name, worker_id)
        self.log.emit(
            self.port.now(), "file_cached",
            worker=worker_id, file=cache_name, size=size,
        )
        j = self._j()
        if j is not None:
            j.record_replica(worker_id, cache_name, size)
        self._mark_stage_dirty(cache_name)
        for job in self._staging:
            if job.worker_id == worker_id and not job.started:
                self._advance_staging(job)

    def replica_evicted(self, worker_id: str, cache_name: str) -> None:
        """A worker dropped a replica on its own (cache pressure)."""
        size = self.replicas.size_of(cache_name)
        self.replicas.remove_replica(cache_name, worker_id)
        self._mark_stage_dirty(cache_name)
        j = self._j()
        if j is not None:
            j.record_replica_gone(worker_id, cache_name)
        self._m_evictions.inc()
        self._m_eviction_bytes.inc(size)
        self.log.emit(
            self.port.now(), "file_deleted",
            worker=worker_id, file=cache_name, size=size, category="evicted",
        )

    def on_cache_update(
        self,
        worker_id: str,
        cache_name: str,
        size: int,
        transfer_id: Optional[str] = None,
    ) -> None:
        """A worker reported a newly cached object (possibly a transfer)."""
        self.sizes[cache_name] = size
        if cache_name in self.registry:
            self.registry.by_name(cache_name).size = size
        if transfer_id is not None:
            self._finish_transfer(transfer_id, size=size)
        self.register_replica(worker_id, cache_name, size, store=False)
        self.port.request_pump()

    def on_cache_invalid(
        self,
        worker_id: str,
        cache_name: str,
        transfer_id: Optional[str] = None,
        reason: str = "transfer failed",
        corrupt: bool = False,
    ) -> None:
        """A worker lost or failed to obtain an object.

        ``corrupt`` marks checksum-verification failures: the *source's*
        copy is suspect, so it is treated as replica loss at the source
        (feeding lineage regeneration when it was the last copy) rather
        than as a defect of the destination or of the task.
        """
        self.replicas.remove_replica(cache_name, worker_id)
        self._mark_stage_dirty(cache_name)
        j = self._j()
        if j is not None:
            j.record_replica_gone(worker_id, cache_name)
        if transfer_id is None:
            self.port.request_pump()
            return  # autonomous eviction, not a failed command
        try:
            record = self.transfers.complete(transfer_id)
        except KeyError:
            record = None  # stale report (worker departed mid-flight)
        self._sync_transfer_gauges()
        self._staging = [j for j in self._staging if j.transfer_id != transfer_id]
        if record is None:
            self.port.request_pump()
            return
        source = record.source
        key = (cache_name, source)
        self._transfer_attempts[key] += 1
        attempts = self._transfer_attempts[key]
        self._m_transfers_failed.inc()
        self.log.emit(
            self.port.now(), "transfer_failed",
            worker=worker_id, file=cache_name, size=attempts, category=source,
        )
        if source_kind(source) == "peer":
            self._note_worker_failure(source, weight=2 if corrupt else 1)
        if corrupt:
            self._m_transfers_corrupt.inc()
            if source_kind(source) == "peer" and self.replicas.has_replica(
                cache_name, source
            ):
                self.replicas.remove_replica(cache_name, source)
                self.port.delete_replica(source, cache_name)
                self.log.emit(
                    self.port.now(), "file_deleted",
                    worker=source, file=cache_name, category="corrupt",
                )
        if attempts <= self.transfer_retries and self.transfer_backoff_base > 0:
            delay = self._backoff_delay(self.transfer_backoff_base, attempts)
            self._retry_at[key] = self.port.now() + delay
            self._schedule_pump(delay)
        if not self._source_remains(cache_name):
            if self.fixed_sources.get(cache_name) == NO_SOURCE:
                # every holder burned its budget: those replicas are
                # effectively lost — fall back to lineage regeneration
                for holder in self.replicas.forget_name(cache_name):
                    self.port.delete_replica(holder, cache_name)
                    self.log.emit(
                        self.port.now(), "file_deleted",
                        worker=holder, file=cache_name, category="exhausted",
                    )
                if not self._regenerate(cache_name):
                    self.fail_tasks_needing(cache_name, reason)
            else:
                self.fail_tasks_needing(cache_name, reason)
        self.port.request_pump()

    def _source_remains(self, cache_name: str) -> bool:
        """True while some source still has retry budget for the object."""
        for holder in self.replicas.locate(cache_name):
            if self._transfer_attempts[(cache_name, holder)] <= self.transfer_retries:
                return True
        fixed = self.fixed_sources.get(cache_name, MANAGER_SOURCE)
        if fixed != NO_SOURCE:
            return self._transfer_attempts[(cache_name, fixed)] <= self.transfer_retries
        return False

    def on_transfer_complete(self, transfer_id: str) -> None:
        """A runtime-tracked transfer delivered its bytes (simulator path)."""
        record = self._finish_transfer(transfer_id)
        if record is None:
            return  # cancelled (e.g. destination worker departed mid-flight)
        if self.port.worker_connected(record.dest_worker):
            size = self.sizes.get(record.cache_name, record.size)
            self.register_replica(
                record.dest_worker, record.cache_name, size, store=True
            )
        self.port.request_pump()

    def _finish_transfer(
        self, transfer_id: str, size: Optional[int] = None
    ) -> Optional[Transfer]:
        """Close out a transfer record: accounting plus end events."""
        try:
            record = self.transfers.complete(transfer_id)
        except KeyError:
            return None
        self._sync_transfer_gauges()
        # a delivered transfer clears the (object, source) failure budget
        # and redeems part of the serving worker's failure score
        key = (record.cache_name, record.source)
        self._transfer_attempts.pop(key, None)
        self._retry_at.pop(key, None)
        if source_kind(record.source) == "peer":
            self._note_worker_success(record.source)
        if record.source in self.draining:
            # migration off a draining worker landed: drain accounting
            stats = self._drain_stats.get(record.source)
            if stats is not None:
                stats["objects"] += 1
                stats["bytes"] += record.size
            self._m_drain_objects.inc()
            self._m_drain_bytes.inc(record.size)
        reported = size if size is not None else record.size
        if record.source == MINITASK_SOURCE:
            self._staging = [
                j for j in self._staging if j.transfer_id != transfer_id
            ]
            self.transfer_counts["stage"] += 1
            self.log.emit(
                self.port.now(), "stage_end",
                worker=record.dest_worker, file=record.cache_name, size=reported,
            )
        else:
            kind = source_kind(record.source)
            self.transfer_counts[kind] += 1
            self.bytes_by_source[kind] += record.size
            self.log.emit(
                self.port.now(), "transfer_end",
                worker=record.dest_worker, file=record.cache_name,
                size=reported, category=record.source,
            )
        return record

    def _sync_transfer_gauges(self) -> None:
        """Refresh queue-depth gauges from the authoritative table.

        Derived (not incremented) so cancellation paths — a departed
        worker dropping its in-flight transfers — can never leak a
        phantom open transfer into the metrics.  Per-source gauges are
        keyed by source *kind* to keep cardinality bounded; peaks land
        in each gauge's ``max``.
        """
        by_kind: collections.Counter = collections.Counter()
        staging = 0
        for t in self.transfers.active():
            if t.source == MINITASK_SOURCE:
                staging += 1
            else:
                by_kind[source_kind(t.source)] += 1
        self._m_transfers_open.set(len(self.transfers) - staging)
        self._m_staging_open.set(staging)
        for kind in set(self._kind_gauges) | set(by_kind):
            gauge = self._kind_gauges.get(kind)
            if gauge is None:
                gauge = self.metrics.gauge(f"transfers.per_source.{kind}")
                self._kind_gauges[kind] = gauge
            gauge.set(by_kind.get(kind, 0))

    def count_retrieval(self, worker_id: str, cache_name: str, size: int) -> None:
        """Account a completed output retrieval to the manager."""
        self.transfer_counts["retrieve"] += 1
        self.bytes_by_source["retrieve"] += size
        self.log.emit(
            self.port.now(), "transfer_end",
            worker=worker_id, file=cache_name, size=size, category="@retrieve",
        )

    def count_fetch(self, worker_id: str, cache_name: str, size: int) -> None:
        """Account an on-demand result fetch served through the manager.

        Distinct from ``@retrieve`` (eager output bring-back): a fetch
        moves bytes only when a client or the memo store *dereferences*
        a result — the by-reference plane's whole point is that this is
        rare, so it gets its own category for the transaction log.
        """
        self.transfer_counts["fetch"] += 1
        self.bytes_by_source["fetch"] += size
        self._m_fetch_serves.inc()
        self._m_fetch_bytes.inc(size)
        self.log.emit(
            self.port.now(), "transfer_end",
            worker=worker_id, file=cache_name, size=size, category="@fetch",
        )

    def count_fetch_retry(self, cache_name: str, worker_id: str, reason: str) -> None:
        """Record a fetch moving on from a holder that could not serve."""
        self._m_fetch_retries.inc()
        self.log.emit(
            self.port.now(), "fetch_retried",
            worker=worker_id, file=cache_name, category=reason,
        )

    # ------------------------------------------------------------------
    # failure scoring, backoff and blocklisting (robustness hardening)
    # ------------------------------------------------------------------

    def _backoff_delay(self, base: float, attempt: int) -> float:
        """Exponential backoff with deterministic jitter (50–150%)."""
        raw = min(self.transfer_backoff_max, base * (2 ** (attempt - 1)))
        return raw * (0.5 + self._rng.random())

    def _schedule_pump(self, delay: float) -> None:
        """Arrange a pump after ``delay``, coalescing pending wakeups."""
        if delay <= 0:
            self.port.request_pump()
            return
        wake = self.port.now() + delay
        if self._next_wake > self.port.now() and self._next_wake <= wake:
            return  # an earlier wakeup is already scheduled
        self._next_wake = wake
        scheduler = getattr(self.port, "schedule_pump", None)
        if scheduler is not None:
            scheduler(delay)
        else:
            self.port.request_pump()

    def _transfer_gate(self, cache_name: str, source: str) -> int:
        """Scheduler hook: veto sources that are banned or backing off."""
        if self._transfer_attempts[(cache_name, source)] > self.transfer_retries:
            return GATE_BANNED
        if source in self.blocklist:
            return GATE_AVOID
        if self._retry_at.get((cache_name, source), 0.0) > self.port.now():
            return GATE_AVOID
        return GATE_OK

    def _note_worker_failure(self, worker_id: str, weight: int = 1) -> None:
        """Record a failure attributed to a worker; blocklist repeaters.

        A worker is never blocklisted when it is the last non-blocked
        connected worker — a degraded cluster beats an empty one.
        """
        if worker_id not in self.workers:
            return  # departed, or not actually a worker (url/manager)
        self.failure_scores[worker_id] += weight
        score = self.failure_scores[worker_id]
        if (
            worker_id not in self.blocklist
            and score >= self.blocklist_threshold
            and any(
                wid != worker_id
                and wid not in self.blocklist
                and self.port.worker_connected(wid)
                for wid in self.workers
            )
        ):
            self.blocklist.add(worker_id)
            self._m_blocklisted.inc()
            self.log.emit(
                self.port.now(), "worker_blocklist",
                worker=worker_id, size=score,
            )

    def _note_worker_success(self, worker_id: str) -> None:
        if self.failure_scores[worker_id] > 0:
            self.failure_scores[worker_id] -= 1

    def note_fault(
        self,
        worker_id: Optional[str],
        category: str,
        cache_name: Optional[str] = None,
    ) -> None:
        """Record an *injected* fault (chaos runs) in the log and metrics.

        Called by the fault adapters (and the real manager's ``fault``
        message handler) so every injection is visible in the txn log
        next to the recovery actions it provoked.
        """
        self._m_faults.inc()
        self.log.emit(
            self.port.now(), "fault_injected",
            worker=worker_id, file=cache_name, category=category,
        )

    # ------------------------------------------------------------------
    # worker membership
    # ------------------------------------------------------------------

    def worker_joined(
        self,
        worker_id: str,
        pool: ResourcePool,
        cached: Iterable[tuple[str, int]] = (),
        rejoin: bool = False,
    ) -> WorkerState:
        """Register a new worker and adopt its pre-existing cache.

        ``rejoin`` marks a worker whose reconnect loop survived a
        manager restart; one arriving inside the recovery grace window
        counts toward the rejoin expectation that ends it early.
        """
        cached = list(cached)
        state = WorkerState(worker_id=worker_id, pool=pool)
        self.workers[worker_id] = state
        # a fresh registration under a reused id is a fresh worker: any
        # drain state belonging to the previous owner must not gate it
        self.draining.discard(worker_id)
        self._drain_released.discard(worker_id)
        self._drain_stats.pop(worker_id, None)
        self.log.emit(self.port.now(), "worker_join", worker=worker_id)
        for cache_name, size in cached:
            self.adopt_replica(worker_id, cache_name, int(size))
        if self._recovering or rejoin:
            if self._recovering:
                self._recovery_joined += 1
            self.log.emit(
                self.port.now(), "worker_rejoined",
                worker=worker_id, size=len(cached),
            )
        for lib in self.libraries.values():
            if lib.installed:
                self._deploy_library(lib, worker_id)
        self._mark_all_stage_dirty()
        self.port.request_pump()
        return state

    def worker_left(self, worker_id: str) -> None:
        """Recover from a departing worker: requeue its tasks, drop its
        replicas, and restore replication targets for surviving temps."""
        state = self.workers.pop(worker_id, None)
        if state is None:
            return
        self.log.emit(self.port.now(), "worker_leave", worker=worker_id)
        lost_names = self.replicas.remove_worker(worker_id)
        j = self._j()
        if j is not None:
            for name in lost_names:
                j.record_replica_gone(worker_id, name)
        cancelled = self.transfers.cancel_for_worker(worker_id)
        self._sync_transfer_gauges()
        # tasks consuming a lost replica or a cancelled in-flight
        # transfer must re-plan their staging on the next pump
        for name in lost_names:
            self._mark_stage_dirty(name)
        for record in cancelled:
            self._mark_stage_dirty(record.cache_name)
        self._staging = [j for j in self._staging if j.worker_id != worker_id]
        self._pinned.pop(worker_id, None)
        for lib in self.libraries.values():
            if lib.state.pop(worker_id, None) == "ready":
                self.log.emit(
                    self.port.now(), "task_end",
                    worker=worker_id, task=f"{lib.name}@{worker_id}",
                    category="library",
                )
            lib.staging_tasks.pop(worker_id, None)
        lost_tasks = [
            t
            for t in list(self._dispatched.values()) + list(self._running.values())
            if t.worker_id == worker_id
        ]
        for task in lost_tasks:
            self._dispatched.pop(task.task_id, None)
            self._drop_stage_index(task)
            self._pop_running(task.task_id)
            self.port.task_preempted(task)
            if isinstance(task, FunctionCall):
                self._lib_load[(worker_id, task.library_name)] -= 1
            budget = (
                task.max_retries if self.loss_retries is None else self.loss_retries
            )
            if task.retries_used >= budget:
                if self.strict_loss:
                    raise RuntimeError(
                        f"task {task.task_id} lost {task.retries_used + 1} workers; "
                        "giving up"
                    )
                self._gc_task_inputs(task)
                self._finish_task(
                    task, TaskResult(exit_code=-1, failure="worker lost")
                )
                continue
            task.retries_used += 1
            task.worker_id = None
            task.state = TaskState.READY
            task.not_before = self._requeue_holdoff(task)
            self._ready.push(task)
            self.tasks_requeued += 1
            self._m_requeues.inc()
            self.log.emit(
                self.port.now(), "task_requeued",
                task=task.task_id, category="worker_lost", size=task.retries_used,
            )
        # a departed worker's failure history must not poison a future
        # worker that happens to reuse the id
        self.blocklist.discard(worker_id)
        self.failure_scores.pop(worker_id, None)
        # a crash mid-drain ends the drain the hard way; a clean release
        # just retires its bookkeeping (worker_drained already emitted)
        self.draining.discard(worker_id)
        self._drain_released.discard(worker_id)
        self._drain_stats.pop(worker_id, None)
        # restore the replication target of still-needed produced files,
        # and regenerate any that lost their final replica (lineage);
        # declaration order keeps recovery deterministic for a seed
        for name in self.registry.in_declaration_order(lost_names):
            if self._input_refs.get(name, 0) > 0:
                if self.replicas.replica_count(name) > 0:
                    self._ensure_replication(name)
                elif not self._regenerate(name):
                    self.fail_tasks_needing(
                        name, "lost with no recoverable lineage"
                    )
        self.port.request_pump()

    # ------------------------------------------------------------------
    # graceful drain (elastic scale-down)
    # ------------------------------------------------------------------

    def drain_worker(self, worker_id: str) -> bool:
        """Begin a graceful departure for one worker.

        The worker keeps serving its running tasks and any peer
        transfers, but receives no new placements; objects it alone
        holds are re-replicated to survivors through the normal
        transfer machinery.  Once nothing references the worker any
        more, the port's optional ``finish_drain`` hook releases it
        (the sim removes it from the cluster, the real manager sends
        SHUTDOWN) and the eventual ``worker_left`` finds every needed
        replica already backed elsewhere — the opposite of a crash,
        which loses the cache and forces lineage regeneration.
        """
        state = self.workers.get(worker_id)
        if state is None or worker_id in self.draining:
            return False
        self.draining.add(worker_id)
        self._drain_stats[worker_id] = {"objects": 0, "bytes": 0}
        self._m_drains.inc()
        self.log.emit(self.port.now(), "worker_drain", worker=worker_id)
        self._replicate_for_drain(worker_id)
        self.port.request_pump()
        return True

    def _drain_sole_names(self, worker_id: str) -> list[str]:
        """Objects this worker alone holds that no fixed source backs,
        in declaration order (the deterministic migration order)."""
        sole = [
            name
            for name in self.replicas.holdings(worker_id)
            if self.replicas.replica_count(name) == 1
            and self.fixed_sources.get(name) == NO_SOURCE
        ]
        return self.registry.in_declaration_order(sole)

    def _replicate_for_drain(self, worker_id: str) -> int:
        """Migrate sole-holder objects off a draining worker.

        Starts one transfer per object (capacity permitting) with the
        draining worker as the source; returns how many objects still
        lack a safe copy — in-flight migrations count, objects no
        survivor can take do not (they are stranded, surfaced at
        release time instead of wedging the drain forever).
        """
        pending = 0
        incoming = {
            t.cache_name
            for t in self.transfers.active()
            if t.dest_worker not in self.draining
        }
        for name in self._drain_sole_names(worker_id):
            if name in incoming:
                pending += 1
                continue
            candidates = sorted(
                (
                    wid
                    for wid in self.workers
                    if wid != worker_id
                    and self.port.worker_connected(wid)
                    and wid not in self.draining
                    and wid not in self.blocklist
                ),
                key=lambda wid: (self._cached_bytes(wid), wid),
            )
            if not candidates:
                continue  # stranded: no survivor exists to take it
            if not self.transfers.source_available(worker_id):
                pending += 1
                continue  # source slots busy; retried next pump
            self._start_transfer(name, worker_id, candidates[0])
            pending += 1
        return pending

    def _advance_drains(self) -> None:
        """Per-pump drain progress: re-kick migrations (new outputs may
        have landed, capacity may have freed) and release workers with
        nothing left to give."""
        for worker_id in sorted(self.draining - self._drain_released):
            state = self.workers.get(worker_id)
            if state is None:
                continue  # leave already processed
            pending = self._replicate_for_drain(worker_id)
            if state.running or pending:
                continue
            if any(t.worker_id == worker_id for t in self._finishing.values()):
                continue  # output retrieval still in flight
            if any(
                t.source == worker_id or t.dest_worker == worker_id
                for t in self.transfers.active()
            ):
                continue  # still serving (or receiving) a transfer
            self._finish_drain(worker_id)

    def _finish_drain(self, worker_id: str) -> None:
        stats = self._drain_stats.get(worker_id, {})
        stranded = self._drain_sole_names(worker_id)
        if stranded:
            # nothing could take these (no survivors): they die with the
            # worker and lineage regeneration covers any future readers
            self._m_drain_stranded.inc(len(stranded))
        self._drain_released.add(worker_id)
        self._m_drains_done.inc()
        self.log.emit(
            self.port.now(), "worker_drained",
            worker=worker_id,
            size=int(stats.get("bytes", 0)),
            category="stranded" if stranded else None,
        )
        finish = getattr(self.port, "finish_drain", None)
        if finish is not None:
            finish(worker_id)

    def record_autoscale(self, direction: str, amount: int = 1) -> None:
        """Log one autoscaler fleet decision (``direction`` up/down)."""
        if direction == "up":
            self._m_scale_up.inc(amount)
        else:
            self._m_scale_down.inc(amount)
        self.log.emit(
            self.port.now(), "autoscale", size=amount, category=direction
        )

    # ------------------------------------------------------------------
    # crash recovery: journal restore + rejoin grace window
    # ------------------------------------------------------------------

    def restore_from_journal(self) -> bool:
        """Rebuild durable state from the journal of a prior manager life.

        Replays declares, tenant ledgers and task records into the live
        tables without re-journaling them.  Completed tasks come back
        ``DONE`` with their recorded outputs parked in the recovery
        await-set; the soundness rule is applied when the grace window
        closes (:meth:`_finish_recovery`): outputs a rejoining worker
        re-announced resume as-is, anything unbacked is replica loss and
        flows into lineage regeneration.  Returns True when a prior life
        left state behind.
        """
        j = self.journal
        if j is None or not j.recovered:
            return False
        stats = j.last_replay_stats
        now = self.port.now()
        self._restoring = True
        try:
            for spec in j.declares.values():
                name = spec["name"]
                if name in self.registry:
                    continue
                f, source, size = restore_file(spec)
                self.registry.register(f)
                self.fixed_sources[name] = source
                self.sizes[name] = size
            for tenant, rec in j.quotas.items():
                self.set_tenant_quota(tenant, rec.get("tasks"), rec.get("bytes"))
            for tenant, total in j.tenant_bytes.items():
                acct = self.tenant_account(tenant)
                acct.bytes_declared = total
                self._sync_tenant(acct)
            for tenant, names in j.tenant_names.items():
                self.tenant_account(tenant).names.update(names)
            for rec in sorted(j.submits.values(), key=lambda r: r["seq"]):
                self._restore_task(rec, now)
            self._task_seq = itertools.count(j.max_seq + 1)
        finally:
            self._restoring = False
        self._m_restarts.inc()
        self._m_replayed.inc(stats.replayed_records)
        self.log.emit(
            now, "manager_restart",
            size=stats.replayed_records,
            category=f"lifetime={stats.lifetime_records}",
        )
        return True

    def _restore_task(self, rec: dict, now: float) -> None:
        """Replay one journaled submit into the task tables."""
        j = self.journal
        tid = rec["id"]
        tenant = rec.get("tenant") or "default"
        done_rec = j.done.get(tid)
        failed_rec = j.failed.get(tid)
        acct = self.tenant_account(tenant)
        acct.submitted += 1
        task = build_task(rec["spec"], self.registry)
        if task is not None:
            task.task_id = tid
            task.seq = int(rec["seq"])
            task.set_tenant(tenant)
        if task is None:
            # not re-executable (serverless call, or inputs the registry
            # no longer knows).  A completed one still leaves recorded
            # outputs to await re-adoption; a pending one is lost work.
            if done_rec is not None:
                acct.done += 1
                self.done_count += 1
                for name, size in done_rec.get("outputs", ()):
                    self.sizes.setdefault(name, size)
                    self._recovery_await[name] = size
                    acct.names.add(name)
            elif failed_rec is None:
                stub = Task("@lost")
                stub.task_id = tid
                stub.seq = int(rec["seq"])
                stub.set_tenant(tenant)
                stub.state = TaskState.FAILED
                stub.result = TaskResult(
                    exit_code=-1,
                    failure="not restorable across manager restart",
                )
                if rec.get("session"):
                    stub.session_token = rec["session"]
                self.tasks[tid] = stub
                acct.failed += 1
            else:
                acct.failed += 1
            self._sync_tenant(acct)
            return
        if rec.get("session"):
            task.session_token = rec["session"]
        for _, f in task.outputs:
            setattr(f, "producer_task_id", tid)
        self.tasks[tid] = task
        if failed_rec is not None:
            task.state = TaskState.FAILED
            task.result = TaskResult(
                exit_code=-1, failure=failed_rec.get("reason", "failed")
            )
            acct.failed += 1
        elif done_rec is not None:
            task.state = TaskState.DONE
            task.result = TaskResult(exit_code=0, output="restored")
            task.finished_at = now
            self.done_count += 1
            acct.done += 1
            self._m_restored_done.inc()
            for name, size in done_rec.get("outputs", ()):
                self.sizes[name] = size
                if name in self.registry:
                    self.registry.by_name(name).size = size
                self._recovery_await[name] = size
                acct.names.add(name)
        else:
            task.state = TaskState.READY
            task.submitted_at = now
            for _, f in task.inputs:
                self._input_refs[f.cache_name] += 1
            self._ready.push(task)
            self.outstanding += 1
            acct.outstanding += 1
            self._m_resumed.inc()
        self._sync_tenant(acct)

    def begin_recovery(
        self, grace: float = 10.0, expected_workers: Optional[int] = None
    ) -> None:
        """Open the rejoin grace window after a journal restore.

        The pump holds all placements until every worker the journal
        knew about rejoined (re-announcing its cache inventory) or
        ``grace`` elapsed, whichever is first; then
        :meth:`_finish_recovery` settles what survived.
        """
        if expected_workers is None:
            expected_workers = (
                len(self.journal.known_workers()) if self.journal else 0
            )
        self._recovering = True
        self._recovery_expected = expected_workers
        self._recovery_joined = 0
        self._recovery_deadline = self.port.now() + max(0.0, grace)
        self.port.request_pump()

    def _recovery_ready(self) -> bool:
        """True once the grace window may close."""
        if self.port.now() >= self._recovery_deadline:
            return True
        if self._recovery_joined < self._recovery_expected:
            return False
        # worker ids are minted per manager life, so the join count
        # alone cannot prove the *holders* are back — a bystander
        # registering first must not trigger regeneration of outputs
        # whose holder is still reconnecting.  Close early only when
        # every awaited output is backed (or refetchable).
        return all(
            self.replicas.replica_count(name) > 0
            or self.fixed_sources.get(name, NO_SOURCE) != NO_SOURCE
            for name in self._recovery_await
        )

    def _finish_recovery(self) -> None:
        """Close the grace window: settle every awaited output.

        Outputs backed by a re-adopted replica (or a refetchable fixed
        source) resume without re-execution; the rest are replica loss
        and take the lineage path — regenerate while lineage and retry
        budgets allow, else fail the tasks that needed them.
        """
        self._recovering = False
        awaited = self._recovery_await
        self._recovery_await = {}
        self._recovery_backed = set()
        resumed = 0
        regenerated = 0
        lost = 0
        for name in self.registry.in_declaration_order(list(awaited)):
            if self.replicas.replica_count(name) > 0:
                resumed += 1
                continue
            if self.fixed_sources.get(name, NO_SOURCE) != NO_SOURCE:
                resumed += 1  # refetchable: transfer planning recovers it
                continue
            if self._regenerate(name):
                regenerated += 1
            else:
                lost += 1
                self.fail_tasks_needing(name, "lost across manager restart")
        self.log.emit(
            self.port.now(), "recovery_complete",
            size=resumed,
            category=f"regenerated={regenerated} lost={lost} "
            f"workers={self._recovery_joined}/{self._recovery_expected}",
        )

    # ------------------------------------------------------------------
    # fault recovery: regeneration and replication (paper §2.2/§3.2)
    # ------------------------------------------------------------------

    def _regenerate(self, cache_name: str) -> bool:
        """Re-execute the producer of a lost, still-needed temp file.

        Temp files record their producing task (paper §3.2 names them by
        the producer's spec); when every replica of one is lost and
        downstream tasks still reference it, the manager resubmits the
        producer.  Recursion through deeper lost lineage happens
        naturally: the resubmitted producer's own missing inputs are
        regenerated when it fails to find them.

        Returns True while recovery is possible or already in motion;
        False means the object is unrecoverable (no lineage, or the
        producer's retry budget is spent) and consumers should fail.
        """
        if self.fixed_sources.get(cache_name) != NO_SOURCE:
            return True  # refetchable: normal transfer planning recovers it
        f = self.registry.by_name(cache_name) if cache_name in self.registry else None
        producer_id = getattr(f, "producer_task_id", None)
        producer = self.tasks.get(producer_id) if producer_id else None
        if producer is None:
            return False  # no lineage known: nothing can rebuild this
        if not producer.is_done:
            return True  # still running/queued: its outputs will (re)appear
        if producer.state != TaskState.DONE:
            return False  # failed/cancelled producer cannot be rerun
        budget = (
            producer.max_retries if self.loss_retries is None else self.loss_retries
        )
        if producer.retries_used >= budget:
            if self.strict_loss:
                raise RuntimeError(
                    f"cannot regenerate {cache_name}: producer {producer_id} "
                    "exhausted its retries"
                )
            return False  # budget spent: consumers must fail, not loop
        producer.retries_used += 1
        producer.state = TaskState.READY
        producer.worker_id = None
        producer.not_before = self._requeue_holdoff(producer)
        self.done_count -= 1
        self.outstanding += 1
        acct = self.tenant_account(producer.tenant)
        acct.outstanding += 1
        acct.done -= 1  # mirrors done_count: the completion is rescinded
        acct.regens += 1
        self._tenant_gauges[producer.tenant]["regens"].inc()
        self._sync_tenant(acct)
        self.tasks_requeued += 1
        self._m_regens.inc()
        self._regenerated.add(producer.task_id)
        self.log.emit(
            self.port.now(), "file_regenerated",
            task=producer.task_id, file=cache_name, size=producer.retries_used,
        )
        ok = True
        for name in producer.input_cache_names():
            self._input_refs[name] += 1
            if (
                self.replicas.replica_count(name) == 0
                and self.fixed_sources.get(name) == NO_SOURCE
            ):
                ok &= self._regenerate(name)
        self._ready.push(producer)
        return ok

    def _ensure_replication(self, cache_name: str) -> None:
        """Start transfers until ``cache_name`` meets its replica target.

        Applies only to task-produced files (temps/outputs): inputs with
        an external source can always be refetched, produced data cannot.
        """
        if self.temp_replica_count <= 1:
            return
        if self.fixed_sources.get(cache_name) != NO_SOURCE:
            return  # refetchable from its source, or already at the manager
        have = self.replicas.locate(cache_name)
        needed = self.temp_replica_count - len(have)
        if needed <= 0 or not have:
            return
        candidates = sorted(
            (
                wid
                for wid in self.workers
                if self.port.worker_connected(wid)
                and wid not in have
                and wid not in self.blocklist
                and wid not in self.draining
                and not self.transfers.in_flight(cache_name, wid)
            ),
            key=lambda wid: (self._cached_bytes(wid), wid),
        )
        # serve from a holder that is not under suspicion — nor on its
        # way out of the cluster — when possible
        trusted = [
            w for w in have if w not in self.blocklist and w not in self.draining
        ]
        if not trusted:
            trusted = [w for w in have if w not in self.blocklist]
        source = min(trusted) if trusted else min(have)
        for wid in candidates[:needed]:
            if not self.transfers.source_available(source):
                break
            self._start_transfer(cache_name, source, wid)

    def _cached_bytes(self, worker_id: str) -> int:
        return self.replicas.bytes_at(worker_id)  # O(1) incremental index

    # ------------------------------------------------------------------
    # the scheduling pump
    # ------------------------------------------------------------------

    def _view_of(self, worker_id: str, library: Optional[str]) -> Optional[WorkerView]:
        """Current scheduler view of one worker, or None if ineligible."""
        state = self.workers.get(worker_id)
        if state is None or not self.port.worker_connected(worker_id):
            return None
        if worker_id in self.blocklist:
            return None  # repeat offender: no new placements
        if worker_id in self.draining:
            return None  # on its way out: finish what it has, take no more
        if library is not None:
            lib = self.libraries[library]
            if lib.state.get(worker_id) != "ready":
                return None
            if self._lib_load[(worker_id, library)] >= lib.slots:
                return None
        return WorkerView(
            worker_id=worker_id,
            capacity=state.pool.capacity,
            allocated=state.pool.allocated,
            running_tasks=len(state.running),
        )

    def pump(self) -> None:
        """Advance scheduling: place ready tasks, plan missing transfers.

        Each outermost call's latency lands in ``pump.latency_seconds``
        (wall clock by design: it measures the policy code itself, not
        workflow time, so it is meaningful under both runtimes).
        Recursive pumps — lineage recovery — count inside their parent.
        """
        if self.closed:
            return
        if self._recovering:
            # recovery grace window: no placements until the previously
            # known workers re-announced their caches (or the deadline
            # passed) — dispatching earlier would re-run tasks whose
            # outputs are about to be re-adopted
            if self._recovery_ready():
                self._finish_recovery()
            else:
                self._schedule_pump(0.05)
                return
        if self._pump_depth:
            self._pump_body()
            return
        self._pump_depth = 1
        started = time.perf_counter()
        try:
            self._pump_body()
        finally:
            self._pump_depth = 0
            elapsed = time.perf_counter() - started
            self._m_pump.observe(elapsed)
            self._m_pump_us.observe(elapsed * 1e6)
            self._m_ready_depth.set(len(self._ready))

    def _pump_body(self) -> None:
        # 0. memo hits parked at submit complete now, after the submit
        # path (and the service layer's bookkeeping around it) unwound
        self._drain_memo_complete()

        # 1. placement — ready tasks are popped from the priority heap
        # in (-priority, seq) order instead of re-sorting the whole
        # queue; placement indexes are built lazily per library key and
        # updated in place after each dispatch, so a pump touches each
        # worker once, not once per task
        index_cache: dict[Optional[str], PlacementIndex] = {}

        def get_index(key: Optional[str]) -> PlacementIndex:
            if key not in index_cache:
                views = {}
                for wid in self.workers:
                    v = self._view_of(wid, key)
                    if v is not None:
                        views[wid] = v
                index_cache[key] = PlacementIndex(
                    views, self.scheduler.failure_score
                )
            return index_cache[key]

        failures = 0
        recovered = False
        now = self.port.now()
        next_retry: Optional[float] = None
        # entries pushed from this token onward (lineage producers
        # resurrected mid-loop) wait for the recursive re-pump — the
        # same snapshot semantics the sorted-list pump had
        snapshot = self._ready.snapshot_token
        stash: list = []
        entries = self._ready.pop_entries(snapshot)
        try:
            for entry in entries:
                task = entry[3]
                if task.state != TaskState.READY:
                    # failed terminally earlier in this very loop
                    self._ready.discard(task)
                    continue
                if task.not_before > now:
                    # requeue backoff: not eligible yet, wake when it is
                    next_retry = (
                        task.not_before
                        if next_retry is None
                        else min(next_retry, task.not_before)
                    )
                    stash.append(entry)
                    continue
                if not self._inputs_obtainable(task):
                    before = len(self._ready)
                    self._recover_lost_inputs(task)
                    recovered |= len(self._ready) > before
                    stash.append(entry)
                    continue
                key = task.library_name if isinstance(task, FunctionCall) else None
                wid = self.scheduler.choose_worker_indexed(task, get_index(key))
                if wid is None:
                    failures += 1
                    stash.append(entry)
                    if failures >= 64:
                        break
                    continue
                self._ready.discard(task)
                self._dispatch(task, wid)
                for k, idx in index_cache.items():
                    idx.update(wid, self._view_of(wid, k))
        finally:
            entries.close()  # returns mid-loop pushes to the heap
            for entry in stash:
                self._ready.restore(entry)

        # 2. input staging for dispatched tasks — only those whose
        # inputs saw a replica/transfer event since the last pump, plus
        # those waiting on source capacity or a gate holdoff (no event
        # announces a freed slot or an expired backoff)
        recheck = self._stage_dirty
        self._stage_dirty = set()
        recheck |= self._deferred_staging
        if recheck:
            for tid in list(self._dispatched):
                if tid in recheck:
                    task = self._dispatched.get(tid)
                    if task is not None:
                        self._stage_inputs(task)

        # 3. library deployments: start ones that could not fit earlier
        # (e.g. plain tasks held every core at install time) and advance
        # ones still waiting on environment files
        for lib in self.libraries.values():
            if lib.installed:
                for wid in list(self.workers):
                    if wid not in lib.state:
                        self._deploy_library(lib, wid)
            for wid, phase in list(lib.state.items()):
                if phase == "staging":
                    self._advance_library(lib, wid)

        # 4. mini-task staging jobs waiting on their own inputs
        for job in list(self._staging):
            if not job.started:
                self._advance_staging(job)

        # 5. graceful drains: re-kick migrations, release finished ones
        if self.draining:
            self._advance_drains()

        if next_retry is not None:
            self._schedule_pump(next_retry - now)

        # lineage producers resurrected mid-pump joined _ready after the
        # placement loop snapshot; place them now rather than waiting on
        # the next external event (recursion is bounded by lineage depth)
        if recovered:
            self.pump()

    def _inputs_obtainable(self, task: Task) -> bool:
        """True when every input exists somewhere or can be produced."""
        for name in task.input_cache_names():
            if self.replicas.replica_count(name) > 0:
                continue
            if self.fixed_sources.get(name, MANAGER_SOURCE) == NO_SOURCE:
                return False
        return True

    def _recover_lost_inputs(self, task: Task) -> None:
        """Resurrect producers of temp inputs with no surviving replica.

        ``worker_left`` regenerates temps that were referenced at loss
        time, but a task submitted (or made ready) afterwards can still
        name a temp whose replicas are all gone — the pump re-triggers
        lineage for those here.  ``_regenerate`` is a no-op while the
        producer is already queued or running, so repeated pumps don't
        compound retries.  When lineage is exhausted (producer's retry
        budget spent, or no producer known) the consumers are failed
        terminally instead of looping forever.
        """
        for name in task.input_cache_names():
            if (
                self.replicas.replica_count(name) == 0
                and self.fixed_sources.get(name, MANAGER_SOURCE) == NO_SOURCE
            ):
                if not self._regenerate(name):
                    self.fail_tasks_needing(
                        name, "lineage exhausted: cannot regenerate"
                    )

    def _dispatch(self, task: Task, worker_id: str) -> None:
        state = self.workers[worker_id]
        state.pool.allocate(task.task_id, task.resources)
        state.running.add(task.task_id)
        task.worker_id = worker_id
        task.state = TaskState.DISPATCHED
        self._dispatched[task.task_id] = task
        # hit/miss is judged once, at placement: did locality put the
        # task where its inputs already live, or must bytes move?
        for name in task.input_cache_names():
            if self.replicas.has_replica(name, worker_id):
                self._m_cache_hits.inc()
            else:
                self._m_cache_misses.inc()
        if isinstance(task, FunctionCall):
            self._lib_load[(worker_id, task.library_name)] += 1
        for name in task.input_cache_names():
            self._pinned[worker_id][name] += 1
            # reverse index: replica/transfer events touching this name
            # mark the task for a staging re-plan on the next pump
            self._dispatched_by_input.setdefault(name, set()).add(task.task_id)
        self._stage_inputs(task)

    def pinned_at(self, worker_id: str) -> set[str]:
        """Cache names pinned by dispatched/running tasks at a worker."""
        return {n for n, c in self._pinned[worker_id].items() if c > 0}

    def _stage_inputs(self, task: Task) -> None:
        wid = task.worker_id
        assert wid is not None
        if isinstance(task, FunctionCall) and not task.inputs:
            self._deferred_staging.discard(task.task_id)
            self._start_execution(task)
            return
        plan = self.scheduler.plan_transfers(task, wid, self.fixed_sources)
        for cache_name, source in plan.transfers:
            self._start_transfer(cache_name, source, wid)
        # a deferred input has no event that announces its unblocking
        # (a freed source slot / an expired peer-gate holdoff), so the
        # task stays on the every-pump recheck list until the plan is
        # deferral-free
        if plan.deferred:
            self._deferred_staging.add(task.task_id)
        else:
            self._deferred_staging.discard(task.task_id)
        if all(self.replicas.has_replica(n, wid) for n in task.input_cache_names()):
            self._start_execution(task)

    def _start_transfer(self, cache_name: str, source: str, dst_wid: str) -> None:
        size = self.sizes.get(cache_name, 0)
        record = self.transfers.begin(cache_name, source, dst_wid, size, self.port.now())
        self._sync_transfer_gauges()
        if source == MINITASK_SOURCE:
            f = self.registry.by_name(cache_name)
            assert isinstance(f, MiniTaskFile)
            job = StagingJob(
                file=f, worker_id=dst_wid, transfer_id=record.transfer_id
            )
            self._staging.append(job)
            self._advance_staging(job)
            return
        self.log.emit(
            self.port.now(), "transfer_start",
            worker=dst_wid, file=cache_name, size=size, category=source,
        )
        level = (
            self.registry.by_name(cache_name).cache_level
            if cache_name in self.registry
            else CacheLevel.WORKFLOW
        )
        if source == MANAGER_SOURCE:
            self.port.push_object(record, level)
        else:
            self.port.send_fetch(record, level)

    def _advance_staging(self, job: StagingJob) -> None:
        wid = job.worker_id
        mini = job.file.mini_task
        missing = [
            n for n in mini.input_cache_names() if not self.replicas.has_replica(n, wid)
        ]
        if missing:
            plan = self.scheduler.plan_transfers(mini, wid, self.fixed_sources)
            for cache_name, source in plan.transfers:
                self._start_transfer(cache_name, source, wid)
            return
        job.started = True
        self.log.emit(
            self.port.now(), "stage_start", worker=wid, file=job.file.cache_name
        )
        self.port.run_minitask(job)

    def on_stage_done(self, job: StagingJob) -> None:
        """A runtime-timed mini-task materialization finished (simulator)."""
        if job not in self._staging:
            return  # the worker departed; the job was already dropped
        record = self._finish_transfer(job.transfer_id)
        if record is None:
            return
        if self.port.worker_connected(job.worker_id):
            size = self.sizes.get(record.cache_name, record.size)
            self.register_replica(job.worker_id, job.file.cache_name, size, store=True)
        self.port.request_pump()

    def _start_execution(self, task: Task) -> None:
        if task.state != TaskState.DISPATCHED:
            return
        self._dispatched.pop(task.task_id, None)
        self._drop_stage_index(task)
        self._running[task.task_id] = task
        acct = self.tenant_account(task.tenant)
        acct.running += 1
        self._sync_tenant(acct)
        task.state = TaskState.RUNNING
        task.started_at = self.port.now()
        self.log.emit(
            self.port.now(), "task_start",
            worker=task.worker_id, task=task.task_id, category=task.category,
        )
        self.port.start_task(task)

    # ------------------------------------------------------------------
    # libraries (serverless hosts)
    # ------------------------------------------------------------------

    def install_library(self, name: str) -> None:
        """Deploy a created library to every current and future worker."""
        lib = self.libraries[name]
        lib.installed = True
        for wid in list(self.workers):
            self._deploy_library(lib, wid)
        self.port.request_pump()

    def _deploy_library(self, lib: LibraryState, worker_id: str) -> None:
        if worker_id in lib.state:
            return
        state = self.workers[worker_id]
        if not state.pool.can_fit(lib.resources):
            return  # retried if the worker rejoins with room / never, by design
        state.pool.allocate(f"lib:{lib.name}", lib.resources)
        lib.state[worker_id] = "staging"
        pseudo = Task(f"deploy:{lib.name}")
        for i, f in enumerate(lib.env_files):
            pseudo.inputs.append((f"env{i}", f))
        pseudo.worker_id = worker_id
        lib.staging_tasks[worker_id] = pseudo
        self._advance_library(lib, worker_id)

    def _advance_library(self, lib: LibraryState, worker_id: str) -> None:
        pseudo = lib.staging_tasks.get(worker_id)
        if pseudo is None:
            return
        missing = [
            n
            for n in pseudo.input_cache_names()
            if not self.replicas.has_replica(n, worker_id)
        ]
        if missing:
            plan = self.scheduler.plan_transfers(pseudo, worker_id, self.fixed_sources)
            for cache_name, source in plan.transfers:
                self._start_transfer(cache_name, source, worker_id)
            return
        lib.state[worker_id] = "starting"
        self.log.emit(
            self.port.now(), "task_start",
            worker=worker_id, task=f"{lib.name}@{worker_id}", category="library",
        )
        self.port.launch_library(lib, worker_id)

    def on_library_ready(self, worker_id: str, name: str) -> None:
        """A library instance came up at a worker."""
        lib = self.libraries.get(name)
        if lib is None or lib.state.get(worker_id) != "starting":
            return
        lib.state[worker_id] = "ready"
        self.log.emit(
            self.port.now(), "library_ready", worker=worker_id, category=name
        )
        self.port.request_pump()

    def on_library_failed(self, worker_id: str, name: str) -> None:
        """A library failed to start at a worker."""
        lib = self.libraries.get(name)
        if lib is None:
            return
        lib.state[worker_id] = "failed"
        self.log.emit(
            self.port.now(), "library_failed", worker=worker_id, category=name
        )
        state = self.workers.get(worker_id)
        if state is not None:
            try:
                state.pool.release(f"lib:{name}")
            except KeyError:
                pass
        self.port.request_pump()
