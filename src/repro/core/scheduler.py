"""Scheduling policy: task placement and transfer-source selection.

This module is *pure policy* — no I/O, no clocks — so the real runtime
(:mod:`repro.core.manager`) and the discrete-event simulator
(:mod:`repro.sim`) drive the exact same decision code (paper §3.3):

* **Placement** — tasks are scheduled primarily to match the cached
  files present at each worker: among workers with free capacity, the
  one possessing the most input bytes wins.  When no worker holds
  anything, an arbitrary (least-loaded) worker is chosen and file
  transfers are scheduled.
* **Transfer sources** — for each missing input the scheduler first
  tries a peer worker that holds a replica and is under the configured
  concurrent-transfer limit (worker transfers are always preferred over
  the original source); failing that, the file's *fixed* source
  (manager or remote URL) if under its own limit; failing that the
  transfer is deferred, which is what prevents hotspots.

Two implementations of placement coexist, by design:

* :meth:`Scheduler.choose_worker` — the *reference scan*: rank every
  eligible worker by ``(-cached_bytes, failure, running, id)``.  O(W·I)
  per task; kept as the decision oracle for the equivalence suite and
  the benchmark baseline.
* :meth:`Scheduler.choose_worker_indexed` — the *hot path*: score only
  workers holding ≥1 input replica (from :class:`ReplicaTable`'s
  holder index) and compare the best against a least-loaded fallback
  popped from a :class:`PlacementIndex` heap.  Produces byte-identical
  decisions (the zero-score fallback is provably equivalent to ranking
  every non-holder) at O(replicas-of-inputs + log W) per task.

:class:`ReadyQueue` replaces the per-pump full sort of the ready list
with a lazy-deletion priority heap keyed on ``(-priority, seq)`` —
``seq`` being the monotonic submission sequence a manager stamps on
each task (the old ``int(task_id.lstrip("t"))`` key crashed on any
foreign id and mis-parsed repeated leading ``t``\\ s).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional, Sequence

from repro.core.replica_table import ReplicaTable
from repro.core.resources import Resources
from repro.core.task import Task
from repro.core.transfer_table import MANAGER_SOURCE, TransferTable

__all__ = [
    "WorkerView",
    "TransferPlan",
    "Scheduler",
    "ReadyQueue",
    "PlacementIndex",
    "GATE_OK",
    "GATE_AVOID",
    "GATE_BANNED",
]

#: transfer-gate verdicts (see :attr:`Scheduler.transfer_gate`)
GATE_OK = 0        # source is clear to serve this object now
GATE_AVOID = 1     # temporarily avoid (retry backoff, blocklisted worker)
GATE_BANNED = 2    # permanently out of budget for this object


@dataclass
class WorkerView:
    """The scheduler's summary of one connected worker."""

    worker_id: str
    capacity: Resources
    allocated: Resources = field(default_factory=lambda: Resources(cores=0))
    running_tasks: int = 0
    #: set when the worker is draining and must not receive new work
    draining: bool = False

    def can_fit(self, request: Resources) -> bool:
        """True if ``request`` fits in the unallocated remainder.

        Hot path: called once per (ready task, worker) pair per pump,
        so it compares componentwise instead of allocating a summed
        :class:`Resources`.
        """
        a, c = self.allocated, self.capacity
        return (
            a.cores + request.cores <= c.cores
            and a.memory + request.memory <= c.memory
            and a.disk + request.disk <= c.disk
            and a.gpus + request.gpus <= c.gpus
        )


@dataclass
class TransferPlan:
    """Outcome of planning one task's missing-input transfers.

    ``transfers`` lists (cache_name, source) pairs to start now;
    ``pending`` lists inputs already in flight to the worker; and
    ``deferred`` lists inputs for which every source is currently at its
    concurrency limit — the task stays dispatched and the manager
    retries planning as transfers drain.
    """

    worker_id: str
    transfers: list[tuple[str, str]] = field(default_factory=list)
    pending: list[str] = field(default_factory=list)
    deferred: list[str] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        """True when nothing was deferred (all inputs present/in motion)."""
        return not self.deferred


class ReadyQueue:
    """Per-tenant priority heaps ordered by ``(-priority, seq)`` with
    deficit-round-robin dispatch across tenants.

    Entries are invalidated lazily: :meth:`discard` drops the task's
    *token* and the stale heap entry is skipped when it surfaces, so
    removal (task finished, cancelled, failed) is O(1) instead of the
    old O(n) list rebuild.  Pushing an already-queued task supersedes
    its previous entry (latest token wins).

    The token counter is also the pump's snapshot clock: entries pushed
    *during* a pump (lineage producers resurrected mid-loop) carry a
    token greater than the loop's snapshot and are deferred to the
    recursive re-pump, preserving the pre-heap "iterate over a sorted
    snapshot" semantics decision-for-decision.

    **Fair share.**  Tasks are bucketed by ``task.tenant`` into one heap
    per tenant, and :meth:`pop_entries` deals one entry per tenant per
    round (deficit round robin with a quantum of one task), resuming
    each pump where the previous one left off, so a tenant flooding the
    queue cannot starve a small workflow behind it.  Inside a tenant the
    order is exactly ``(-priority, seq)``.  With a single tenant — or
    with ``fair_share=False``, which collapses every task into one
    bucket — the round-robin ring has one member and the pop order is
    *identical* to the historical global heap (the single-tenant
    equivalence test pins this).
    """

    def __init__(self, fair_share: bool = True) -> None:
        self.fair_share = fair_share
        #: tenant -> heap of (-priority, seq, token, task)
        self._heaps: dict[str, list[tuple[float, int, int, Task]]] = {}
        #: round-robin ring of tenants in first-appearance order
        self._ring: list[str] = []
        self._ring_pos = 0
        #: task_id -> (live token, task); absent = not queued.  Owning
        #: the task reference here keeps :meth:`tasks` complete even
        #: while a pump holds popped entries in its local stash.
        self._live: dict[str, tuple[int, Task]] = {}
        self._next_token = 1

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._live

    @property
    def snapshot_token(self) -> int:
        """Entries with a token at or beyond this were pushed after now."""
        return self._next_token

    def _tenant_of(self, task: Task) -> str:
        if not self.fair_share:
            return ""
        return getattr(task, "tenant", "default") or "default"

    def push(self, task: Task) -> None:
        """Queue (or re-queue) a ready task."""
        token = self._next_token
        self._next_token += 1
        self._live[task.task_id] = (token, task)
        tenant = self._tenant_of(task)
        heap = self._heaps.get(tenant)
        if heap is None:
            heap = self._heaps[tenant] = []
            self._ring.append(tenant)
        heapq.heappush(heap, (-task.priority, task.seq, token, task))

    def discard(self, task: Task) -> None:
        """Drop a task if queued; its heap entry dies lazily."""
        self._live.pop(task.task_id, None)

    def tasks(self) -> list[Task]:
        """Every live queued task (order unspecified)."""
        return [task for _, task in self._live.values()]

    def queued_by_tenant(self) -> dict[str, int]:
        """Live queued-task counts per tenant (status/metrics view)."""
        counts: dict[str, int] = {}
        for _, task in self._live.values():
            tenant = self._tenant_of(task)
            counts[tenant] = counts.get(tenant, 0) + 1
        return counts

    def _pop_valid(
        self,
        tenant: str,
        upto_token: int,
        deferred: list[tuple[float, int, int, Task]],
    ) -> Optional[tuple[float, int, int, Task]]:
        """Best eligible entry of one tenant's heap (stale ones dropped)."""
        heap = self._heaps.get(tenant)
        while heap:
            entry = heap[0]
            _, _, token, task = entry
            live = self._live.get(task.task_id)
            if live is None or live[0] != token:
                heapq.heappop(heap)  # discarded or superseded
                continue
            if token >= upto_token:
                deferred.append(heapq.heappop(heap))
                continue
            return heapq.heappop(heap)
        return None

    def pop_entries(self, upto_token: int) -> Iterator[tuple[float, int, int, Task]]:
        """Yield valid entries in fair-share order, skipping stale ones.

        Only entries with ``token < upto_token`` are yielded; newer ones
        (pushed mid-iteration) are returned to the heap when iteration
        ends.  The caller must either :meth:`discard` the yielded task
        (placed/failed) or hand the entry back through :meth:`restore`.
        Each yield advances the tenant ring by one position regardless
        of what the caller does with the entry, so one capacity-starved
        tenant cannot monopolize the placement loop.
        """
        deferred: list[tuple[float, int, int, Task]] = []
        try:
            while self._ring:
                entry = None
                for _ in range(len(self._ring)):
                    tenant = self._ring[self._ring_pos % len(self._ring)]
                    self._ring_pos = (self._ring_pos + 1) % len(self._ring)
                    entry = self._pop_valid(tenant, upto_token, deferred)
                    if entry is not None:
                        break
                if entry is None:
                    return  # a full silent round: nothing eligible remains
                yield entry
        finally:
            for entry in deferred:
                heapq.heappush(self._heaps[self._tenant_of(entry[3])], entry)

    def restore(self, entry: tuple[float, int, int, Task]) -> None:
        """Return an unplaced entry to the heap (unless discarded since)."""
        _, _, token, task = entry
        live = self._live.get(task.task_id)
        if live is not None and live[0] == token:
            heapq.heappush(self._heaps[self._tenant_of(task)], entry)


class PlacementIndex:
    """Per-pump worker views plus a load heap for fallback placement.

    Wraps the pump's per-library-key view dict with a min-heap keyed by
    ``(failure_score, running_tasks, worker_id)`` — the exact rank of a
    worker holding none of a task's inputs.  Entries go stale when a
    dispatch changes a worker's load; staleness is detected lazily on
    pop by comparing against the live view, so updates are O(log W)
    pushes and queries are amortized O(log W).
    """

    def __init__(
        self,
        views: dict[str, WorkerView],
        failure_score: Optional[Callable[[str], int]] = None,
    ) -> None:
        self.views = views
        self._fs = failure_score or (lambda _w: 0)
        self._heap = [
            (self._fs(wid), v.running_tasks, wid) for wid, v in views.items()
        ]
        heapq.heapify(self._heap)

    def update(self, worker_id: str, view: Optional[WorkerView]) -> None:
        """Refresh one worker after a dispatch (None = now ineligible)."""
        if view is None:
            self.views.pop(worker_id, None)
            return
        self.views[worker_id] = view
        heapq.heappush(
            self._heap, (self._fs(worker_id), view.running_tasks, worker_id)
        )

    def best_fallback(self, request: Resources) -> Optional[str]:
        """Least-loaded live worker that fits ``request``, or None.

        Pops stale entries permanently; valid entries that merely fail
        the fit check are restored, so a string of same-shaped tasks
        pays the scan once.
        """
        stash: list[tuple[int, int, str]] = []
        found: Optional[str] = None
        heap = self._heap
        while heap:
            f, r, wid = heap[0]
            view = self.views.get(wid)
            if view is None or (self._fs(wid), view.running_tasks) != (f, r):
                heapq.heappop(heap)  # stale: superseded or removed
                continue
            if not view.draining and view.can_fit(request):
                found = wid
                break
            stash.append(heapq.heappop(heap))
        for entry in stash:
            heapq.heappush(heap, entry)
        return found


class Scheduler:
    """Stateless decision procedures over the manager's state tables."""

    def __init__(
        self,
        replicas: ReplicaTable,
        transfers: TransferTable,
        locality: bool = True,
    ) -> None:
        self.replicas = replicas
        self.transfers = transfers
        #: disable to get the random-placement baseline used in ablations
        self.locality = locality
        #: optional hook (cache_name, source) -> GATE_* letting the
        #: control plane veto sources (retry backoff, failure blocklist,
        #: exhausted per-source budgets); None gates nothing
        self.transfer_gate: Optional[Callable[[str, str], int]] = None
        #: optional hook worker_id -> failure score; workers with higher
        #: scores are deprioritized in placement (after locality)
        self.failure_score: Optional[Callable[[str], int]] = None
        #: optional counter instrument fed the number of (task, worker)
        #: pairs actually scored by the indexed hot path
        self.candidates_counter: Optional[object] = None

    # -- placement -------------------------------------------------------

    def choose_worker(
        self,
        task: Task,
        workers: Mapping[str, WorkerView],
    ) -> Optional[str]:
        """Pick the worker to run ``task`` on, or None if none fits.

        Ranking: most cached input bytes, then lowest failure score
        (repeat offenders are deprioritized, paper §2.2 reliability),
        then fewest running tasks (to spread load), then worker id (for
        determinism).  With locality disabled, the locality key is 0.

        This is the *reference scan* — O(workers × inputs) per call.
        The pump uses :meth:`choose_worker_indexed`, which returns the
        same decision from the replica-holder index; this path is kept
        as the oracle for the equivalence suite and benchmarks.
        """
        eligible = [
            w
            for w in workers.values()
            if not w.draining and w.can_fit(task.resources)
        ]
        if not eligible:
            return None
        input_names = task.input_cache_names()
        failure_score = self.failure_score or (lambda _w: 0)

        def rank(w: WorkerView) -> tuple:
            score = (
                self.replicas.cached_bytes_at(w.worker_id, input_names)
                if self.locality
                else 0
            )
            return (-score, failure_score(w.worker_id), w.running_tasks, w.worker_id)

        return min(eligible, key=rank).worker_id

    def choose_worker_indexed(
        self, task: Task, index: PlacementIndex
    ) -> Optional[str]:
        """Index-backed placement: identical decisions to
        :meth:`choose_worker`, without scanning every worker.

        Scores only the workers holding ≥1 of the task's input bytes
        (candidates from :meth:`ReplicaTable.locality_scores`) and
        compares the best against the least-loaded eligible worker from
        the index's load heap.  Equivalence argument: every worker
        outside the candidate set has locality score exactly 0, and for
        score-0 workers the full rank ``(0, failure, running, id)`` *is*
        the heap key — the heap minimum therefore ranks at or below
        every other non-candidate, and comparing it against the best
        candidate yields the same minimum as the full scan.  (If the
        heap minimum happens to also be a candidate, its candidate key
        is ≤ its zero-score key, so the comparison is still exact.)
        """
        failure_score = self.failure_score or (lambda _w: 0)
        best_key: Optional[tuple] = None
        best: Optional[str] = None
        scored = 0
        if self.locality:
            scores = self.replicas.locality_scores(task.input_cache_names())
            for wid, score in scores.items():
                view = index.views.get(wid)
                if view is None or view.draining or not view.can_fit(task.resources):
                    continue
                scored += 1
                key = (-score, failure_score(wid), view.running_tasks, wid)
                if best_key is None or key < best_key:
                    best_key, best = key, wid
        fallback = index.best_fallback(task.resources)
        if fallback is not None:
            scored += 1
            view = index.views[fallback]
            key = (0, failure_score(fallback), view.running_tasks, fallback)
            if best_key is None or key < best_key:
                best_key, best = key, fallback
        counter = self.candidates_counter
        if counter is not None and scored:
            counter.inc(scored)
        return best

    # -- transfer planning --------------------------------------------------

    def plan_transfers(
        self,
        task: Task,
        worker_id: str,
        fixed_sources: Mapping[str, str],
    ) -> TransferPlan:
        """Plan how the chosen worker obtains each missing input.

        ``fixed_sources`` maps cache names to their original source key
        (``MANAGER_SOURCE`` or ``url:<host>``); files producible locally
        by a mini task map to the pseudo-source ``@minitask``.  The
        returned plan never exceeds any source's concurrency limit and
        never duplicates a transfer already in flight.

        The plan reserves source slots *as it assigns them* so that one
        planning round for a many-input task cannot overload a source.
        """
        plan = TransferPlan(worker_id=worker_id)
        reserved: dict[str, int] = {}

        def load(source: str) -> int:
            return self.transfers.source_load(source) + reserved.get(source, 0)

        def available(source: str) -> bool:
            r = reserved.get(source)
            if not r:
                # fast path: the table's incremental saturation view
                return self.transfers.source_available(source)
            limit = self.transfers.limit_for(source)
            return limit is None or self.transfers.source_load(source) + r < limit

        for cache_name in task.input_cache_names():
            if self.replicas.has_replica(cache_name, worker_id):
                continue  # already present
            if self.transfers.in_flight(cache_name, worker_id):
                plan.pending.append(cache_name)
                continue
            source = self._pick_source(cache_name, worker_id, fixed_sources, load, available)
            if source is None:
                plan.deferred.append(cache_name)
            else:
                plan.transfers.append((cache_name, source))
                reserved[source] = reserved.get(source, 0) + 1
        return plan

    def _pick_source(
        self,
        cache_name: str,
        dest_worker: str,
        fixed_sources: Mapping[str, str],
        load,
        available,
    ) -> Optional[str]:
        """Best source for one object, or None if all are saturated.

        Peer replicas are preferred over the fixed source (paper §3.3:
        "this conservative approach always prioritizes worker transfers
        over the original task description"); among peers the
        least-loaded one wins to equalize fan-out.  The transfer gate
        can veto sources: gated-AVOID sources (backoff, blocklist) are
        used only as a last resort when nothing else can ever serve the
        object; gated-BANNED sources are never used.
        """
        gate = self.transfer_gate or (lambda _n, _s: GATE_OK)
        peers = [
            w
            for w in self.replicas.locate(cache_name)
            if w != dest_worker and gate(cache_name, w) < GATE_BANNED
        ]
        usable = [
            w for w in peers if available(w) and gate(cache_name, w) == GATE_OK
        ]
        if usable:
            return min(usable, key=lambda w: (load(w), w))
        peers_possible = (
            self.transfers.worker_limit is None or self.transfers.worker_limit > 0
        )
        if peers_possible and any(gate(cache_name, w) == GATE_OK for w in peers):
            # replicas exist in-cluster but every clear holder is at its
            # limit: wait for a peer slot instead of re-reading the
            # original source — this is what cuts shared-FS loads from
            # one-per-worker down to the initial handful (paper §4.2,
            # Colmena).  (With peer transfers disabled, fall through.)
            return None
        fixed = fixed_sources.get(cache_name, MANAGER_SOURCE)
        if fixed == "@minitask":
            # materialized locally at the worker; no network source needed
            return fixed if gate(cache_name, fixed) == GATE_OK else None
        fixed_gate = (
            gate(cache_name, fixed) if fixed != "@none" else GATE_BANNED
        )
        if fixed != "@none" and fixed_gate == GATE_OK and available(fixed):
            return fixed
        if fixed_gate >= GATE_BANNED and peers_possible:
            # nothing unimpeded can ever serve this object again; an
            # avoided peer (blocklisted / backing off) beats starvation
            fallback = [w for w in peers if available(w)]
            if fallback:
                return min(fallback, key=lambda w: (load(w), w))
        return None

    # -- dispatch ordering ---------------------------------------------

    @staticmethod
    def order_ready(tasks: Sequence[Task]) -> list[Task]:
        """Dispatch consideration order: priority desc, then FIFO.

        FIFO position is the submit-time ``seq`` — robust to arbitrary
        task ids (the old ``int(task_id.lstrip("t"))`` key raised ValueError
        on any id not of the form ``t<N>`` and mis-parsed ids with
        repeated leading ``t``\\ s, e.g. ``tt12``).  Unsubmitted tasks
        all carry seq 0 and keep their input order (stable sort).
        """
        return sorted(tasks, key=lambda t: (-t.priority, t.seq))
