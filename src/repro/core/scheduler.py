"""Scheduling policy: task placement and transfer-source selection.

This module is *pure policy* — no I/O, no clocks — so the real runtime
(:mod:`repro.core.manager`) and the discrete-event simulator
(:mod:`repro.sim`) drive the exact same decision code (paper §3.3):

* **Placement** — tasks are scheduled primarily to match the cached
  files present at each worker: among workers with free capacity, the
  one possessing the most input bytes wins.  When no worker holds
  anything, an arbitrary (least-loaded) worker is chosen and file
  transfers are scheduled.
* **Transfer sources** — for each missing input the scheduler first
  tries a peer worker that holds a replica and is under the configured
  concurrent-transfer limit (worker transfers are always preferred over
  the original source); failing that, the file's *fixed* source
  (manager or remote URL) if under its own limit; failing that the
  transfer is deferred, which is what prevents hotspots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.core.replica_table import ReplicaTable
from repro.core.resources import Resources
from repro.core.task import Task
from repro.core.transfer_table import MANAGER_SOURCE, TransferTable

__all__ = ["WorkerView", "TransferPlan", "Scheduler", "GATE_OK", "GATE_AVOID", "GATE_BANNED"]

#: transfer-gate verdicts (see :attr:`Scheduler.transfer_gate`)
GATE_OK = 0        # source is clear to serve this object now
GATE_AVOID = 1     # temporarily avoid (retry backoff, blocklisted worker)
GATE_BANNED = 2    # permanently out of budget for this object


@dataclass
class WorkerView:
    """The scheduler's summary of one connected worker."""

    worker_id: str
    capacity: Resources
    allocated: Resources = field(default_factory=lambda: Resources(cores=0))
    running_tasks: int = 0
    #: set when the worker is draining and must not receive new work
    draining: bool = False

    def can_fit(self, request: Resources) -> bool:
        """True if ``request`` fits in the unallocated remainder.

        Hot path: called once per (ready task, worker) pair per pump,
        so it compares componentwise instead of allocating a summed
        :class:`Resources`.
        """
        a, c = self.allocated, self.capacity
        return (
            a.cores + request.cores <= c.cores
            and a.memory + request.memory <= c.memory
            and a.disk + request.disk <= c.disk
            and a.gpus + request.gpus <= c.gpus
        )


@dataclass
class TransferPlan:
    """Outcome of planning one task's missing-input transfers.

    ``transfers`` lists (cache_name, source) pairs to start now;
    ``pending`` lists inputs already in flight to the worker; and
    ``deferred`` lists inputs for which every source is currently at its
    concurrency limit — the task stays dispatched and the manager
    retries planning as transfers drain.
    """

    worker_id: str
    transfers: list[tuple[str, str]] = field(default_factory=list)
    pending: list[str] = field(default_factory=list)
    deferred: list[str] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        """True when nothing was deferred (all inputs present/in motion)."""
        return not self.deferred


class Scheduler:
    """Stateless decision procedures over the manager's state tables."""

    def __init__(
        self,
        replicas: ReplicaTable,
        transfers: TransferTable,
        locality: bool = True,
    ) -> None:
        self.replicas = replicas
        self.transfers = transfers
        #: disable to get the random-placement baseline used in ablations
        self.locality = locality
        #: optional hook (cache_name, source) -> GATE_* letting the
        #: control plane veto sources (retry backoff, failure blocklist,
        #: exhausted per-source budgets); None gates nothing
        self.transfer_gate: Optional[Callable[[str, str], int]] = None
        #: optional hook worker_id -> failure score; workers with higher
        #: scores are deprioritized in placement (after locality)
        self.failure_score: Optional[Callable[[str], int]] = None

    # -- placement -------------------------------------------------------

    def choose_worker(
        self,
        task: Task,
        workers: Mapping[str, WorkerView],
    ) -> Optional[str]:
        """Pick the worker to run ``task`` on, or None if none fits.

        Ranking: most cached input bytes, then lowest failure score
        (repeat offenders are deprioritized, paper §2.2 reliability),
        then fewest running tasks (to spread load), then worker id (for
        determinism).  With locality disabled, the locality key is 0.
        """
        eligible = [
            w
            for w in workers.values()
            if not w.draining and w.can_fit(task.resources)
        ]
        if not eligible:
            return None
        input_names = task.input_cache_names()
        failure_score = self.failure_score or (lambda _w: 0)

        def rank(w: WorkerView) -> tuple:
            score = (
                self.replicas.cached_bytes_at(w.worker_id, input_names)
                if self.locality
                else 0
            )
            return (-score, failure_score(w.worker_id), w.running_tasks, w.worker_id)

        return min(eligible, key=rank).worker_id

    # -- transfer planning --------------------------------------------------

    def plan_transfers(
        self,
        task: Task,
        worker_id: str,
        fixed_sources: Mapping[str, str],
    ) -> TransferPlan:
        """Plan how the chosen worker obtains each missing input.

        ``fixed_sources`` maps cache names to their original source key
        (``MANAGER_SOURCE`` or ``url:<host>``); files producible locally
        by a mini task map to the pseudo-source ``@minitask``.  The
        returned plan never exceeds any source's concurrency limit and
        never duplicates a transfer already in flight.

        The plan reserves source slots *as it assigns them* so that one
        planning round for a many-input task cannot overload a source.
        """
        plan = TransferPlan(worker_id=worker_id)
        reserved: dict[str, int] = {}

        def load(source: str) -> int:
            return self.transfers.source_load(source) + reserved.get(source, 0)

        def available(source: str) -> bool:
            limit = self.transfers.limit_for(source)
            return limit is None or load(source) < limit

        for cache_name in task.input_cache_names():
            if self.replicas.has_replica(cache_name, worker_id):
                continue  # already present
            if self.transfers.in_flight(cache_name, worker_id):
                plan.pending.append(cache_name)
                continue
            source = self._pick_source(cache_name, worker_id, fixed_sources, load, available)
            if source is None:
                plan.deferred.append(cache_name)
            else:
                plan.transfers.append((cache_name, source))
                reserved[source] = reserved.get(source, 0) + 1
        return plan

    def _pick_source(
        self,
        cache_name: str,
        dest_worker: str,
        fixed_sources: Mapping[str, str],
        load,
        available,
    ) -> Optional[str]:
        """Best source for one object, or None if all are saturated.

        Peer replicas are preferred over the fixed source (paper §3.3:
        "this conservative approach always prioritizes worker transfers
        over the original task description"); among peers the
        least-loaded one wins to equalize fan-out.  The transfer gate
        can veto sources: gated-AVOID sources (backoff, blocklist) are
        used only as a last resort when nothing else can ever serve the
        object; gated-BANNED sources are never used.
        """
        gate = self.transfer_gate or (lambda _n, _s: GATE_OK)
        peers = [
            w
            for w in self.replicas.locate(cache_name)
            if w != dest_worker and gate(cache_name, w) < GATE_BANNED
        ]
        usable = [
            w for w in peers if available(w) and gate(cache_name, w) == GATE_OK
        ]
        if usable:
            return min(usable, key=lambda w: (load(w), w))
        peers_possible = (
            self.transfers.worker_limit is None or self.transfers.worker_limit > 0
        )
        if peers_possible and any(gate(cache_name, w) == GATE_OK for w in peers):
            # replicas exist in-cluster but every clear holder is at its
            # limit: wait for a peer slot instead of re-reading the
            # original source — this is what cuts shared-FS loads from
            # one-per-worker down to the initial handful (paper §4.2,
            # Colmena).  (With peer transfers disabled, fall through.)
            return None
        fixed = fixed_sources.get(cache_name, MANAGER_SOURCE)
        if fixed == "@minitask":
            # materialized locally at the worker; no network source needed
            return fixed if gate(cache_name, fixed) == GATE_OK else None
        fixed_gate = (
            gate(cache_name, fixed) if fixed != "@none" else GATE_BANNED
        )
        if fixed != "@none" and fixed_gate == GATE_OK and available(fixed):
            return fixed
        if fixed_gate >= GATE_BANNED and peers_possible:
            # nothing unimpeded can ever serve this object again; an
            # avoided peer (blocklisted / backing off) beats starvation
            fallback = [w for w in peers if available(w)]
            if fallback:
                return min(fallback, key=lambda w: (load(w), w))
        return None

    # -- dispatch ordering ---------------------------------------------

    @staticmethod
    def order_ready(tasks: Sequence[Task]) -> list[Task]:
        """Dispatch consideration order: priority desc, then FIFO by id."""
        return sorted(
            tasks, key=lambda t: (-t.priority, int(t.task_id.lstrip("t")))
        )
