"""Manager status reporting (the ``vine_status`` view).

A read-only snapshot of a running manager — tasks by state, connected
workers with their allocation and cache footprint, in-flight transfers,
and library deployments — suitable for printing, logging, or driving a
dashboard.  Works against both the real :class:`~repro.core.manager.Manager`
and the simulator's :class:`~repro.sim.simmanager.SimManager` since it
only touches the shared policy-state objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.task import TaskState

__all__ = ["WorkerStatus", "ManagerStatus", "manager_status", "format_status"]


@dataclass
class WorkerStatus:
    """One connected worker's load summary."""

    worker_id: str
    cores_total: float
    cores_allocated: float
    running_tasks: int
    cached_objects: int
    cached_bytes: int


@dataclass
class ManagerStatus:
    """A point-in-time snapshot of a manager's world view."""

    tasks_by_state: dict[str, int] = field(default_factory=dict)
    workers: list[WorkerStatus] = field(default_factory=list)
    files_tracked: int = 0
    replicas_total: int = 0
    transfers_in_flight: int = 0
    libraries: dict[str, int] = field(default_factory=dict)

    @property
    def workers_connected(self) -> int:
        return len(self.workers)

    @property
    def tasks_total(self) -> int:
        return sum(self.tasks_by_state.values())


def _worker_rows(manager) -> list[WorkerStatus]:
    # one code path for both runtimes: everything needed lives in the
    # shared ControlPlane (WorkerState pools, the replica table) and its
    # RuntimePort (liveness) — no duck-typing on runtime internals
    control = manager.control
    rows = []
    for worker_id, state in sorted(control.workers.items()):
        if not control.port.worker_connected(worker_id):
            continue
        rows.append(
            WorkerStatus(
                worker_id=worker_id,
                cores_total=state.pool.capacity.cores,
                cores_allocated=state.pool.allocated.cores,
                running_tasks=len(state.running),
                cached_objects=len(control.replicas.holdings(worker_id)),
                cached_bytes=control.replicas.bytes_at(worker_id),
            )
        )
    return rows


def manager_status(manager) -> ManagerStatus:
    """Build a snapshot from a real or simulated manager."""
    by_state: dict[str, int] = {}
    for task in manager.tasks.values():
        by_state[task.state.value] = by_state.get(task.state.value, 0) + 1
    libraries = {}
    for name, lib in getattr(manager, "libraries", {}).items():
        states = getattr(lib, "state", None) or getattr(lib, "deployments", {})
        libraries[name] = sum(1 for s in states.values() if s == "ready")
    return ManagerStatus(
        tasks_by_state=by_state,
        workers=_worker_rows(manager),
        files_tracked=len(manager.registry),
        replicas_total=manager.replicas.total_replicas(),
        transfers_in_flight=len(manager.transfers),
        libraries=libraries,
    )


def format_status(status: ManagerStatus) -> str:
    """Render a snapshot as an aligned text report."""
    lines = []
    counts = " ".join(
        f"{state}={n}" for state, n in sorted(status.tasks_by_state.items())
    ) or "none"
    lines.append(
        f"tasks: {status.tasks_total} ({counts})"
    )
    lines.append(
        f"files: {status.files_tracked} tracked, "
        f"{status.replicas_total} replicas, "
        f"{status.transfers_in_flight} transfers in flight"
    )
    if status.libraries:
        deployed = " ".join(f"{k}:{v}" for k, v in sorted(status.libraries.items()))
        lines.append(f"libraries ready: {deployed}")
    lines.append(f"workers: {status.workers_connected}")
    for w in status.workers:
        lines.append(
            f"  {w.worker_id:>8s} cores {w.cores_allocated:g}/{w.cores_total:g} "
            f"tasks {w.running_tasks} cache {w.cached_objects} objs "
            f"{w.cached_bytes / 1e6:.1f} MB"
        )
    return "\n".join(lines)


# Convenience: completed-state names used by callers filtering snapshots.
TERMINAL_STATE_NAMES = frozenset(
    s.value for s in (TaskState.DONE, TaskState.FAILED, TaskState.CANCELLED)
)
