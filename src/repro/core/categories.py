"""Per-category resource learning and allocation suggestion.

The paper's resource model (§2.1) declares a fixed allocation per task
and retries with a larger one on overflow.  Production TaskVine goes
further: tasks are grouped into *categories* and the manager learns
each category's real usage to pick first allocations automatically —
small enough to pack densely, large enough that retries are rare.

:class:`CategoryTracker` implements that loop: record the measured
usage of completed tasks, then suggest an allocation at a configurable
percentile with headroom.  The expected cost model follows the
"allocate at percentile p, retry at maximum" strategy: a task is first
run at the p-th percentile of observed usage and, if it overflows,
retried at the observed maximum times the growth factor.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Optional

from repro.core.resources import Resources

__all__ = ["CategoryStats", "CategoryTracker"]


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (empty → 0)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


@dataclass
class CategoryStats:
    """Usage history of one task category (bounded window)."""

    window: int = 1000
    cores: collections.deque = field(default_factory=lambda: collections.deque(maxlen=1000))
    memory: collections.deque = field(default_factory=lambda: collections.deque(maxlen=1000))
    disk: collections.deque = field(default_factory=lambda: collections.deque(maxlen=1000))
    completions: int = 0
    overflows: int = 0

    def record(self, measured: Resources, exceeded: bool = False) -> None:
        """Add one completed task's observed usage."""
        self.cores.append(measured.cores)
        self.memory.append(measured.memory)
        self.disk.append(measured.disk)
        self.completions += 1
        if exceeded:
            self.overflows += 1

    def suggest(
        self,
        fraction: float = 0.95,
        headroom: float = 1.1,
        floor: Optional[Resources] = None,
    ) -> Resources:
        """Allocation covering ``fraction`` of observed usage plus headroom.

        ``floor`` provides minimums (defaults to one core); gpu demand
        is never learned (it is a binary placement constraint).
        """
        floor = floor or Resources(cores=1)
        suggestion = Resources(
            cores=max(
                floor.cores, _percentile(sorted(self.cores), fraction)
            ),
            memory=int(
                max(floor.memory, _percentile(sorted(self.memory), fraction) * headroom)
            ),
            disk=int(
                max(floor.disk, _percentile(sorted(self.disk), fraction) * headroom)
            ),
            gpus=floor.gpus,
        )
        return suggestion

    def maximum(self) -> Resources:
        """The largest usage ever observed (the safe retry allocation)."""
        return Resources(
            cores=max(self.cores, default=1),
            memory=int(max(self.memory, default=0)),
            disk=int(max(self.disk, default=0)),
            gpus=0,
        )

    @property
    def overflow_rate(self) -> float:
        """Fraction of completions that exceeded their allocation."""
        if self.completions == 0:
            return 0.0
        return self.overflows / self.completions


class CategoryTracker:
    """Learns allocations for every category seen in a workflow.

    ``min_samples`` completions are required before suggestions replace
    the declared default — before that, tasks run with whatever the
    user (or the manager default) specified.
    """

    def __init__(
        self,
        fraction: float = 0.95,
        headroom: float = 1.1,
        min_samples: int = 5,
        window: int = 1000,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction
        self.headroom = headroom
        self.min_samples = min_samples
        self.window = window
        self._stats: dict[str, CategoryStats] = {}

    def stats(self, category: str) -> CategoryStats:
        """The (created-on-demand) stats record for one category."""
        if category not in self._stats:
            s = CategoryStats(window=self.window)
            s.cores = collections.deque(maxlen=self.window)
            s.memory = collections.deque(maxlen=self.window)
            s.disk = collections.deque(maxlen=self.window)
            self._stats[category] = s
        return self._stats[category]

    def record(self, category: str, measured: Resources, exceeded: bool = False) -> None:
        """Record one completed task's usage under its category."""
        self.stats(category).record(measured, exceeded)

    def first_allocation(self, category: str, declared: Resources) -> Resources:
        """The allocation a new task of ``category`` should start with.

        Returns ``declared`` until enough samples exist, then the
        learned percentile suggestion (never below the declared cores
        floor, so explicit user sizing is respected as a minimum shape).
        """
        s = self._stats.get(category)
        if s is None or s.completions < self.min_samples:
            return declared
        return s.suggest(self.fraction, self.headroom, floor=declared)

    def retry_allocation(self, category: str, declared: Resources) -> Resources:
        """The allocation after an overflow: observed maximum with headroom."""
        s = self._stats.get(category)
        if s is None or s.completions == 0:
            return declared.scaled(2.0)
        peak = s.maximum()
        return Resources(
            cores=max(declared.cores, peak.cores),
            memory=int(max(declared.memory, peak.memory * self.headroom)),
            disk=int(max(declared.disk, peak.disk * self.headroom)),
            gpus=declared.gpus,
        )

    def categories(self) -> list[str]:
        """Categories with at least one recorded completion."""
        return sorted(c for c, s in self._stats.items() if s.completions)

    def summary(self) -> dict[str, dict]:
        """Per-category report (counts, overflow rate, suggestion)."""
        return {
            c: {
                "completions": s.completions,
                "overflow_rate": s.overflow_rate,
                "suggestion": s.suggest(self.fraction, self.headroom).to_dict(),
                "maximum": s.maximum().to_dict(),
            }
            for c, s in self._stats.items()
        }
