"""Logging setup for the runtimes.

Both the manager and workers log through standard :mod:`logging` under
the ``repro.*`` hierarchy.  Verbosity comes from the ``REPRO_LOG``
environment variable (``debug``, ``info``, ``warning`` — default
``warning`` so library users see nothing unless they ask), matching how
the paper's system exposes its debug stream.

Usage::

    from repro.util.logging import get_logger
    log = get_logger(__name__)
    log.debug("dispatched %s to %s", task_id, worker_id)
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["get_logger", "configure"]

_configured = False


def configure(level: str | int | None = None, stream=None) -> None:
    """Install the handler/format for the ``repro`` logger hierarchy.

    Idempotent; called automatically by :func:`get_logger`.  An explicit
    ``level`` overrides ``REPRO_LOG``.
    """
    global _configured
    root = logging.getLogger("repro")
    if level is None:
        level = os.environ.get("REPRO_LOG", "warning")
    if isinstance(level, str):
        level = getattr(logging, level.upper(), logging.WARNING)
    root.setLevel(level)
    if not _configured:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s.%(msecs)03d %(levelname).1s %(name)s: %(message)s",
                datefmt="%H:%M:%S",
            )
        )
        root.addHandler(handler)
        root.propagate = False
        _configured = True


def get_logger(name: str) -> logging.Logger:
    """A logger under the configured ``repro`` hierarchy."""
    configure()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
