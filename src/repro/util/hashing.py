"""Low-level content hashing helpers.

TaskVine names cached objects by content (paper §3.2).  The paper uses
MD5 for file content; we follow it for fidelity.  These helpers are the
single place the digest algorithm is chosen so the naming layer
(:mod:`repro.core.naming`) stays policy-only.
"""

from __future__ import annotations

import hashlib
import os
from typing import BinaryIO

#: Digest algorithm used for content-addressable names (paper uses MD5).
DIGEST = "md5"

#: Read size for streaming file hashes.  1 MiB balances syscall overhead
#: against peak memory for multi-GB inputs.
CHUNK_SIZE = 1 << 20


def new_digest() -> "hashlib._Hash":
    """Return a fresh digest object of the configured algorithm."""
    return hashlib.new(DIGEST)


def hash_bytes(data: bytes) -> str:
    """Hash an in-memory byte string and return the hex digest."""
    h = new_digest()
    h.update(data)
    return h.hexdigest()


def hash_stream(stream: BinaryIO) -> str:
    """Hash a readable binary stream in chunks and return the hex digest."""
    h = new_digest()
    while True:
        chunk = stream.read(CHUNK_SIZE)
        if not chunk:
            break
        h.update(chunk)
    return h.hexdigest()


def hash_file(path: str | os.PathLike) -> str:
    """Hash the contents of a regular file and return the hex digest.

    Raises ``OSError`` if the path cannot be opened; symbolic links are
    followed (their target content is what tasks will consume).
    """
    with open(path, "rb") as f:
        return hash_stream(f)
