"""Structural observables of simulated clusters.

The analysis half of a molecular-search campaign: given relaxed
configurations from :mod:`repro.apps.minimd.md`, compute the structural
quantities a steering loop ranks candidates by — radial distribution,
coordination numbers, and a simple cluster-shape (gyration) measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["rdf", "coordination_numbers", "radius_of_gyration", "StructureReport", "analyze"]


def _pair_distances(positions: np.ndarray) -> np.ndarray:
    delta = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((delta**2).sum(-1))
    return dist[np.triu_indices_from(dist, k=1)]


def rdf(
    positions: np.ndarray, nbins: int = 50, r_max: float = 5.0
) -> tuple[np.ndarray, np.ndarray]:
    """Radial distribution function g(r) of a finite cluster.

    Normalized against the ideal-gas shell count for the same pair
    density, so an uncorrelated cloud gives g(r) ≈ 1 at mid-range.
    Returns (bin centers, g values).
    """
    pairs = _pair_distances(positions)
    edges = np.linspace(0.0, r_max, nbins + 1)
    counts, _ = np.histogram(pairs, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    volume = 4.0 / 3.0 * np.pi * r_max**3
    pair_density = len(pairs) / volume
    expected = pair_density * shell_volumes
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(expected > 0, counts / expected, 0.0)
    return centers, g


def coordination_numbers(positions: np.ndarray, cutoff: float = 1.5) -> np.ndarray:
    """Neighbours within ``cutoff`` of each atom (shape: n_atoms)."""
    delta = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((delta**2).sum(-1))
    np.fill_diagonal(dist, np.inf)
    return (dist < cutoff).sum(axis=1)


def radius_of_gyration(positions: np.ndarray) -> float:
    """RMS distance of atoms from the cluster's center of mass."""
    center = positions.mean(axis=0)
    return float(np.sqrt(((positions - center) ** 2).sum(axis=1).mean()))


@dataclass
class StructureReport:
    """Summary observables of one configuration."""

    n_atoms: int
    mean_coordination: float
    max_coordination: int
    radius_of_gyration: float
    first_shell_peak: float

    def is_compact(self, threshold: float = 4.0) -> bool:
        """Heuristic: clusters with high mean coordination are compact."""
        return self.mean_coordination >= threshold


def analyze(positions: np.ndarray, cutoff: float = 1.5) -> StructureReport:
    """Compute the full observable summary for one configuration."""
    coord = coordination_numbers(positions, cutoff)
    centers, g = rdf(positions)
    peak = float(centers[np.argmax(g)]) if g.any() else 0.0
    return StructureReport(
        n_atoms=len(positions),
        mean_coordination=float(coord.mean()),
        max_coordination=int(coord.max()),
        radius_of_gyration=radius_of_gyration(positions),
        first_shell_peak=peak,
    )
