from repro.apps.minimd.md import MDResult, fingerprint, lj_energy, random_cluster, simulate
from repro.apps.minimd.surrogate import MLP, TrainReport, train

__all__ = [
    "MDResult", "fingerprint", "lj_energy", "random_cluster", "simulate",
    "MLP", "TrainReport", "train",
]

from repro.apps.minimd.observables import (  # noqa: E402
    StructureReport,
    analyze,
    coordination_numbers,
    radius_of_gyration,
    rdf,
)

__all__ += [
    "StructureReport", "analyze", "coordination_numbers",
    "radius_of_gyration", "rdf",
]
