"""Toy molecular dynamics: Lennard-Jones clusters with velocity Verlet.

The Colmena-XTB workflow runs semi-empirical quantum simulations of
candidate molecules; the TaskVine-relevant shape is "many independent
simulation tasks of moderate duration".  This substrate provides real
numerical work with the same shape: energy minimization / dynamics of
small Lennard-Jones particle clusters (vectorized numpy), returning a
structure fingerprint and final energy usable by the surrogate model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MDResult", "random_cluster", "lj_energy", "simulate", "fingerprint"]


@dataclass
class MDResult:
    """Outcome of one simulation."""

    positions: np.ndarray
    potential_energy: float
    kinetic_energy: float
    steps: int

    @property
    def total_energy(self) -> float:
        """Conserved total energy (potential + kinetic)."""
        return self.potential_energy + self.kinetic_energy


def random_cluster(n_atoms: int, seed: int = 0, spread: float = 1.5) -> np.ndarray:
    """Random initial positions for a cluster, shape (n_atoms, 3).

    Atoms are spread widely enough that no pair starts deep inside the
    repulsive core (which would blow up the integrator).
    """
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-spread, spread, size=(n_atoms, 3))
    # push apart any catastrophically close pair
    for _ in range(100):
        delta = pos[:, None, :] - pos[None, :, :]
        dist = np.sqrt((delta**2).sum(-1)) + np.eye(n_atoms) * 10
        if dist.min() > 0.8:
            break
        i, j = np.unravel_index(np.argmin(dist), dist.shape)
        pos[i] += rng.normal(0, 0.5, size=3)
    return pos


def _pairwise(positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pair displacement vectors and distances (with self-pairs masked)."""
    delta = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((delta**2).sum(-1))
    np.fill_diagonal(dist, np.inf)
    return delta, dist


def lj_energy(positions: np.ndarray, epsilon: float = 1.0, sigma: float = 1.0) -> float:
    """Total Lennard-Jones potential energy of a configuration."""
    _, dist = _pairwise(positions)
    sr6 = (sigma / dist) ** 6
    pair = 4.0 * epsilon * (sr6**2 - sr6)
    return float(pair.sum() / 2.0)


def _lj_forces(positions: np.ndarray, epsilon: float = 1.0, sigma: float = 1.0) -> np.ndarray:
    """Forces on each atom, shape (n_atoms, 3)."""
    delta, dist = _pairwise(positions)
    sr6 = (sigma / dist) ** 6
    # dV/dr = 4ε(−12 σ¹²/r¹³ + 6 σ⁶/r⁷); force = −dV/dr · r̂
    magnitude = 24.0 * epsilon * (2.0 * sr6**2 - sr6) / dist**2
    return (magnitude[..., None] * delta).sum(axis=1)


def simulate(
    positions: np.ndarray,
    steps: int = 200,
    dt: float = 0.002,
    damping: float = 0.995,
    seed: int = 0,
) -> MDResult:
    """Velocity-Verlet dynamics with mild damping (quenched relaxation).

    Damping < 1 bleeds kinetic energy so the cluster settles toward a
    local minimum, which is the "optimize this candidate molecule" step
    of the Colmena loop.
    """
    rng = np.random.default_rng(seed)
    pos = positions.astype(float).copy()
    vel = rng.normal(0.0, 0.05, size=pos.shape)
    forces = _lj_forces(pos)
    for _ in range(steps):
        vel += 0.5 * dt * forces
        pos += dt * vel
        forces = _lj_forces(pos)
        vel += 0.5 * dt * forces
        vel *= damping
    return MDResult(
        positions=pos,
        potential_energy=lj_energy(pos),
        kinetic_energy=float(0.5 * (vel**2).sum()),
        steps=steps,
    )


def fingerprint(positions: np.ndarray, n_features: int = 16) -> np.ndarray:
    """A fixed-length rotational/translational-invariant descriptor.

    A histogram of pair distances — the kind of cheap structure
    fingerprint surrogate models consume.
    """
    _, dist = _pairwise(positions)
    pairs = dist[np.triu_indices_from(dist, k=1)]
    pairs = pairs[np.isfinite(pairs)]
    hist, _ = np.histogram(pairs, bins=n_features, range=(0.5, 4.5))
    total = hist.sum()
    return hist / total if total else hist.astype(float)
