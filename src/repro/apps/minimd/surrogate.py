"""Neural-network surrogate for simulation energies (numpy MLP).

The Colmena loop interleaves expensive simulations with cheap neural
inference that ranks candidates.  This is that surrogate: a small
fully-connected network (from scratch on numpy — forward, backprop,
SGD) mapping structure fingerprints to predicted energies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MLP", "train", "TrainReport"]


@dataclass
class TrainReport:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Mean squared error after the last epoch."""
        return self.losses[-1] if self.losses else float("nan")


class MLP:
    """A two-hidden-layer tanh MLP for scalar regression."""

    def __init__(self, n_inputs: int, hidden: int = 32, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        scale1 = 1.0 / np.sqrt(n_inputs)
        scale2 = 1.0 / np.sqrt(hidden)
        self.w1 = rng.normal(0, scale1, size=(n_inputs, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0, scale2, size=(hidden, hidden))
        self.b2 = np.zeros(hidden)
        self.w3 = rng.normal(0, scale2, size=(hidden, 1))
        self.b3 = np.zeros(1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Predict energies for a batch of fingerprints, shape (n,)."""
        h1 = np.tanh(x @ self.w1 + self.b1)
        h2 = np.tanh(h1 @ self.w2 + self.b2)
        return (h2 @ self.w3 + self.b3).ravel()

    # alias matching common model APIs
    predict = forward

    def gradients(self, x: np.ndarray, y: np.ndarray) -> tuple[dict, float]:
        """Backprop MSE gradients; returns (grads, loss)."""
        n = len(x)
        a1 = x @ self.w1 + self.b1
        h1 = np.tanh(a1)
        a2 = h1 @ self.w2 + self.b2
        h2 = np.tanh(a2)
        pred = (h2 @ self.w3 + self.b3).ravel()
        err = pred - y
        loss = float((err**2).mean())
        d_out = (2.0 * err / n)[:, None]
        grads = {
            "w3": h2.T @ d_out,
            "b3": d_out.sum(0),
        }
        d_h2 = (d_out @ self.w3.T) * (1 - h2**2)
        grads["w2"] = h1.T @ d_h2
        grads["b2"] = d_h2.sum(0)
        d_h1 = (d_h2 @ self.w2.T) * (1 - h1**2)
        grads["w1"] = x.T @ d_h1
        grads["b1"] = d_h1.sum(0)
        return grads, loss

    def apply_gradients(self, grads: dict, lr: float) -> None:
        """One SGD step."""
        for name, grad in grads.items():
            param = getattr(self, name)
            setattr(self, name, param - lr * grad)


def train(
    model: MLP,
    x: np.ndarray,
    y: np.ndarray,
    epochs: int = 100,
    lr: float = 0.05,
) -> TrainReport:
    """Full-batch gradient descent on MSE; returns the loss trajectory."""
    report = TrainReport()
    for _ in range(epochs):
        grads, loss = model.gradients(x, y)
        model.apply_gradients(grads, lr)
        report.losses.append(loss)
    return report
