"""Synthetic collision-event data for the HEP analysis substrate.

TopEFT processes billions of LHC collision events in columnar form
(via Coffea).  We generate physically-flavoured synthetic events —
per-event particle transverse momenta, pseudorapidities, azimuths, and
charges — as numpy column arrays, with *real data* and *Monte Carlo*
variants (MC events carry generator weights and are costlier to
process, matching the paper's observation that simulated collisions
"generally require more resources per subset").
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

__all__ = ["EventBatch", "generate_batch", "to_bytes", "from_bytes"]


@dataclass
class EventBatch:
    """A columnar batch of collision events."""

    #: dataset this batch belongs to ("data" or an MC process name)
    dataset: str
    #: per-event leading-lepton transverse momentum (GeV)
    pt: np.ndarray
    #: per-event pseudorapidity
    eta: np.ndarray
    #: per-event azimuthal angle
    phi: np.ndarray
    #: per-event jet multiplicity
    njets: np.ndarray
    #: per-event generator weight (1.0 for real data)
    weight: np.ndarray

    def __len__(self) -> int:
        return len(self.pt)

    @property
    def is_mc(self) -> bool:
        """True for Monte Carlo (weighted) events."""
        return self.dataset != "data"


def generate_batch(
    dataset: str, n_events: int, seed: int = 0
) -> EventBatch:
    """Generate one batch of synthetic events (deterministic per seed).

    pT follows a falling exponential (like QCD spectra), eta is
    Gaussian within detector acceptance, jets are Poisson, and MC
    events get log-normal generator weights.
    """
    rng = np.random.default_rng(seed)
    pt = rng.exponential(scale=45.0, size=n_events) + 15.0
    eta = np.clip(rng.normal(0.0, 1.2, size=n_events), -2.5, 2.5)
    phi = rng.uniform(-np.pi, np.pi, size=n_events)
    njets = rng.poisson(2.3, size=n_events)
    if dataset == "data":
        weight = np.ones(n_events)
    else:
        weight = rng.lognormal(mean=0.0, sigma=0.3, size=n_events)
    return EventBatch(
        dataset=dataset, pt=pt, eta=eta, phi=phi, njets=njets, weight=weight
    )


def to_bytes(batch: EventBatch) -> bytes:
    """Serialize a batch to compressed columnar bytes (npz)."""
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        dataset=np.array(batch.dataset),
        pt=batch.pt,
        eta=batch.eta,
        phi=batch.phi,
        njets=batch.njets,
        weight=batch.weight,
    )
    return buf.getvalue()


def from_bytes(data: bytes) -> EventBatch:
    """Inverse of :func:`to_bytes`."""
    with np.load(io.BytesIO(data)) as npz:
        return EventBatch(
            dataset=str(npz["dataset"]),
            pt=npz["pt"],
            eta=npz["eta"],
            phi=npz["phi"],
            njets=npz["njets"],
            weight=npz["weight"],
        )
