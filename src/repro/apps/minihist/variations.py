"""Systematic weight variations: why TopEFT accumulations grow.

TopEFT measures effective-field-theory couplings: every Monte-Carlo
event carries a *set* of weights, one per point in EFT coupling space,
and each analysis histogram is filled once per variation.  That
multiplicity — histograms × datasets × variations — is what makes the
partial-result files grow into the gigabytes the paper's Fig. 13
worries about.

This module models that structure: a quadratic parametrization of the
event weight in a set of Wilson-like coefficients, evaluation of the
weight at arbitrary coupling points, and a processor wrapper that fills
per-variation histograms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.minihist.events import EventBatch
from repro.apps.minihist.processor import Histogram, HistogramSet, _VARIABLES

__all__ = ["WeightSurface", "coupling_scan", "process_with_variations"]


@dataclass
class WeightSurface:
    """Per-event quadratic weight dependence on coupling coefficients.

    For coefficients c, the event weight is
    ``w(c) = w0 * (1 + lin·c + (quad·c)·c)`` — the standard quadratic
    EFT parametrization, with per-event linear and quadratic structure
    constants drawn once per batch.
    """

    base_weight: np.ndarray          # (n_events,)
    linear: np.ndarray               # (n_events, n_couplings)
    quadratic: np.ndarray            # (n_events, n_couplings)

    @classmethod
    def for_batch(cls, batch: EventBatch, n_couplings: int = 4, seed: int = 0) -> "WeightSurface":
        """Attach a synthetic EFT weight surface to one event batch."""
        rng = np.random.default_rng(seed)
        n = len(batch)
        return cls(
            base_weight=batch.weight,
            linear=rng.normal(0.0, 0.1, size=(n, n_couplings)),
            quadratic=np.abs(rng.normal(0.0, 0.02, size=(n, n_couplings))),
        )

    @property
    def n_couplings(self) -> int:
        return self.linear.shape[1]

    def weights_at(self, couplings: np.ndarray) -> np.ndarray:
        """Per-event weights at one point in coupling space.

        Clipped below at zero: a physical weight cannot be negative in
        this simplified model.
        """
        c = np.asarray(couplings, dtype=float)
        if c.shape != (self.n_couplings,):
            raise ValueError(
                f"expected {self.n_couplings} couplings, got shape {c.shape}"
            )
        factor = 1.0 + self.linear @ c + self.quadratic @ (c**2)
        return self.base_weight * np.clip(factor, 0.0, None)


def coupling_scan(n_couplings: int = 4, points_per_axis: int = 3) -> list[np.ndarray]:
    """A standard scan: the SM point plus ± excursions along each axis."""
    points = [np.zeros(n_couplings)]
    magnitudes = np.linspace(1.0, 2.0, max(1, points_per_axis - 1))
    for axis in range(n_couplings):
        for magnitude in magnitudes:
            for sign in (+1.0, -1.0):
                p = np.zeros(n_couplings)
                p[axis] = sign * magnitude
                points.append(p)
    return points


def process_with_variations(
    batch: EventBatch,
    surface: WeightSurface,
    scan: list[np.ndarray],
    selection_pt: float = 25.0,
) -> HistogramSet:
    """Fill every analysis histogram once per coupling-scan point.

    Output keys are ``(dataset/variation-i, variable)``; the result's
    serialized size grows linearly with the scan length, modelling the
    accumulation growth of the paper's Fig. 13.
    """
    mask = batch.pt >= selection_pt
    columns = {
        "pt": batch.pt[mask],
        "eta": batch.eta[mask],
        "phi": batch.phi[mask],
        "njets": batch.njets.astype(float)[mask],
    }
    out = HistogramSet(n_events=int(mask.sum()))
    for v_index, couplings in enumerate(scan):
        weights = surface.weights_at(couplings)[mask]
        key_prefix = f"{batch.dataset}/v{v_index}"
        for variable, (lo, hi, nbins) in _VARIABLES.items():
            h = Histogram.new(lo, hi, nbins)
            h.fill(columns[variable], weights)
            out.hists[(key_prefix, variable)] = h
    return out
