"""Histogramming pipeline: preprocess → process → accumulate.

The TopEFT workflow shape (paper §4.2): *preprocessor* functions
collect metadata from datasets, *processor* functions turn event
subsets into partial histograms, and *accumulator* functions merge
partial histograms pairwise up a reduction tree.  Accumulated results
carry the union of all (dataset, variable) histograms seen so far,
which is why accumulation outputs grow as the tree narrows — the
behaviour that makes in-cluster temp files win in Fig. 13.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass, field

import numpy as np

from repro.apps.minihist.events import EventBatch

__all__ = [
    "Histogram",
    "HistogramSet",
    "preprocess",
    "process",
    "accumulate",
]


@dataclass
class Histogram:
    """A fixed-binning 1-D weighted histogram."""

    edges: np.ndarray
    counts: np.ndarray

    @classmethod
    def new(cls, lo: float, hi: float, nbins: int) -> "Histogram":
        """An empty histogram over [lo, hi) with ``nbins`` uniform bins."""
        return cls(edges=np.linspace(lo, hi, nbins + 1), counts=np.zeros(nbins))

    def fill(self, values: np.ndarray, weights: np.ndarray) -> None:
        """Add weighted entries (out-of-range values fall off the ends)."""
        add, _ = np.histogram(values, bins=self.edges, weights=weights)
        self.counts += add

    def __add__(self, other: "Histogram") -> "Histogram":
        if not np.array_equal(self.edges, other.edges):
            raise ValueError("cannot merge histograms with different binnings")
        return Histogram(edges=self.edges, counts=self.counts + other.counts)

    @property
    def total(self) -> float:
        """Sum of weights in range."""
        return float(self.counts.sum())


#: variables histogrammed per dataset, with their binnings
_VARIABLES = {
    "pt": (0.0, 300.0, 60),
    "eta": (-2.5, 2.5, 50),
    "phi": (-np.pi, np.pi, 64),
    "njets": (-0.5, 11.5, 12),
}


@dataclass
class HistogramSet:
    """A keyed collection of histograms: (dataset, variable) → histogram.

    This is the unit that flows through the reduction tree; its
    serialized size grows with the number of distinct keys, modelling
    TopEFT's growing accumulation outputs.
    """

    hists: dict[tuple[str, str], Histogram] = field(default_factory=dict)
    #: events represented (sum over all merged partials)
    n_events: int = 0

    def __add__(self, other: "HistogramSet") -> "HistogramSet":
        merged = dict(self.hists)
        for key, h in other.hists.items():
            merged[key] = merged[key] + h if key in merged else h
        return HistogramSet(hists=merged, n_events=self.n_events + other.n_events)

    def to_bytes(self) -> bytes:
        """Serialize for transport between tasks."""
        buf = io.BytesIO()
        pickle.dump(self, buf, protocol=pickle.HIGHEST_PROTOCOL)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "HistogramSet":
        """Inverse of :meth:`to_bytes`."""
        obj = pickle.loads(data)
        if not isinstance(obj, cls):
            raise TypeError("payload is not a HistogramSet")
        return obj


def preprocess(batch: EventBatch) -> dict:
    """Collect dataset metadata (the TopEFT preprocessor stage)."""
    return {
        "dataset": batch.dataset,
        "n_events": len(batch),
        "is_mc": batch.is_mc,
        "sum_weights": float(batch.weight.sum()),
    }


def process(batch: EventBatch, selection_pt: float = 25.0) -> HistogramSet:
    """Turn one event batch into partial histograms (processor stage).

    Applies a leading-lepton pT selection, then fills one histogram per
    configured variable under the batch's dataset key.
    """
    mask = batch.pt >= selection_pt
    weights = batch.weight[mask]
    out = HistogramSet(n_events=int(mask.sum()))
    columns = {
        "pt": batch.pt,
        "eta": batch.eta,
        "phi": batch.phi,
        "njets": batch.njets.astype(float),
    }
    for variable, (lo, hi, nbins) in _VARIABLES.items():
        h = Histogram.new(lo, hi, nbins)
        h.fill(columns[variable][mask], weights)
        out.hists[(batch.dataset, variable)] = h
    return out


def accumulate(partials: list[HistogramSet]) -> HistogramSet:
    """Merge partial histogram sets (accumulator stage)."""
    if not partials:
        return HistogramSet()
    merged = partials[0]
    for p in partials[1:]:
        merged = merged + p
    return merged
