from repro.apps.minihist.events import EventBatch, from_bytes, generate_batch, to_bytes
from repro.apps.minihist.processor import (
    Histogram,
    HistogramSet,
    accumulate,
    preprocess,
    process,
)

__all__ = [
    "EventBatch", "from_bytes", "generate_batch", "to_bytes",
    "Histogram", "HistogramSet", "accumulate", "preprocess", "process",
]

from repro.apps.minihist.variations import (  # noqa: E402
    WeightSurface,
    coupling_scan,
    process_with_variations,
)

__all__ += ["WeightSurface", "coupling_scan", "process_with_variations"]
