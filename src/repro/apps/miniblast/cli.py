"""Command-line BLAST-like search, runnable inside a task sandbox.

This is the "executable software package" of the BLAST workflow: tasks
invoke it against an unpacked database directory, mirroring
``blast/bin/blast -db landmark -q query`` from paper Fig. 3::

    python -m repro.apps.miniblast.cli --db landmark --query query.txt
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.miniblast.db import load_db
from repro.apps.miniblast.search import format_hits, search
from repro.apps.miniblast.stats import evaluate_hits

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Search queries against a database directory; prints hits."""
    parser = argparse.ArgumentParser(description="mini BLAST search")
    parser.add_argument("--db", required=True, help="database directory")
    parser.add_argument(
        "--query", required=True, help="query file: one 'name sequence' per line"
    )
    parser.add_argument("--max-hits", type=int, default=10)
    parser.add_argument("--min-score", type=int, default=0)
    parser.add_argument(
        "--evalues", action="store_true",
        help="append bit scores and E-values to each hit line",
    )
    args = parser.parse_args(argv)

    db = load_db(args.db)
    with open(args.query) as f:
        for line in f:
            parts = line.split()
            if not parts:
                continue
            name, sequence = (parts[0], parts[1]) if len(parts) > 1 else ("query", parts[0])
            hits = search(db, sequence, max_hits=args.max_hits, min_score=args.min_score)
            if args.evalues:
                for s_hit in evaluate_hits(hits, len(sequence), db):
                    h = s_hit.hit
                    sys.stdout.write(
                        f"{name}\t{h.subject}\t{h.score}\t"
                        f"{s_hit.bit_score:.1f}\t{s_hit.e_value:.2e}\n"
                    )
            else:
                sys.stdout.write(format_hits(name, hits))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
