"""Synthetic genome databases for the BLAST-like search substrate.

The paper's BLAST workflow searches query sequences against a reference
database distributed to every worker.  We reproduce the data shape: a
database is a *directory* containing the concatenated reference
sequences plus a k-mer index — exactly the kind of multi-file software
/dataset asset whose distribution TaskVine optimizes (unpack once per
worker, shared by all tasks).
"""

from __future__ import annotations

import json
import os
import pickle
import random
from dataclasses import dataclass

__all__ = [
    "GenomeDB",
    "generate_sequences",
    "build_db",
    "save_db",
    "load_db",
    "mutate",
]

_ALPHABET = "ACGT"

#: encoding used to pack nucleotides for k-mer hashing
_BASE_CODE = {base: i for i, base in enumerate(_ALPHABET)}


def generate_sequences(
    n_sequences: int, length: int, seed: int = 0
) -> dict[str, str]:
    """Generate named random DNA sequences (deterministic per seed)."""
    rng = random.Random(seed)
    return {
        f"seq{i:05d}": "".join(rng.choice(_ALPHABET) for _ in range(length))
        for i in range(n_sequences)
    }


def mutate(sequence: str, rate: float, seed: int = 0) -> str:
    """Point-mutate a sequence at the given per-base rate (for queries)."""
    rng = random.Random(seed)
    out = []
    for base in sequence:
        if rng.random() < rate:
            out.append(rng.choice(_ALPHABET.replace(base, "")))
        else:
            out.append(base)
    return "".join(out)


def _kmer_code(kmer: str) -> int:
    """Pack a k-mer into an integer (4 bases → 2 bits each)."""
    code = 0
    for base in kmer:
        code = (code << 2) | _BASE_CODE[base]
    return code


@dataclass
class GenomeDB:
    """An in-memory reference database with a k-mer seed index."""

    k: int
    #: sequence name -> nucleotide string
    sequences: dict[str, str]
    #: k-mer code -> list of (sequence name, offset)
    index: dict[int, list[tuple[str, int]]]

    def seed_hits(self, kmer: str) -> list[tuple[str, int]]:
        """Locations of one exact k-mer in the reference."""
        return self.index.get(_kmer_code(kmer), [])

    def total_bases(self) -> int:
        """Reference size in bases."""
        return sum(len(s) for s in self.sequences.values())


def build_db(sequences: dict[str, str], k: int = 11) -> GenomeDB:
    """Index reference sequences by every overlapping k-mer."""
    if k < 4 or k > 15:
        raise ValueError("k must be between 4 and 15")
    index: dict[int, list[tuple[str, int]]] = {}
    for name, seq in sequences.items():
        for off in range(len(seq) - k + 1):
            code = _kmer_code(seq[off : off + k])
            index.setdefault(code, []).append((name, off))
    return GenomeDB(k=k, sequences=sequences, index=index)


def save_db(db: GenomeDB, directory: str) -> None:
    """Persist a database as a directory (metadata + sequences + index)."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "meta.json"), "w") as f:
        json.dump({"k": db.k, "n_sequences": len(db.sequences)}, f)
    with open(os.path.join(directory, "sequences.fa"), "w") as f:
        for name, seq in db.sequences.items():
            f.write(f">{name}\n{seq}\n")
    with open(os.path.join(directory, "index.pkl"), "wb") as f:
        pickle.dump(db.index, f, protocol=pickle.HIGHEST_PROTOCOL)


def load_db(directory: str) -> GenomeDB:
    """Load a database directory written by :func:`save_db`."""
    with open(os.path.join(directory, "meta.json")) as f:
        meta = json.load(f)
    sequences: dict[str, str] = {}
    name = None
    with open(os.path.join(directory, "sequences.fa")) as f:
        for line in f:
            line = line.strip()
            if line.startswith(">"):
                name = line[1:]
                sequences[name] = ""
            elif name is not None:
                sequences[name] += line
    with open(os.path.join(directory, "index.pkl"), "rb") as f:
        index = pickle.load(f)
    return GenomeDB(k=int(meta["k"]), sequences=sequences, index=index)
