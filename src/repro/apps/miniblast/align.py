"""Gapped local alignment (Smith-Waterman) for final hit refinement.

The seed-and-extend phase (:mod:`repro.apps.miniblast.search`) finds
ungapped high-scoring pairs quickly; real BLAST then refines the best
candidates with a gapped dynamic-programming alignment.  This module
provides that second stage: Smith-Waterman with linear gap costs
(diagonal/up moves vectorized per row, the left-dependency resolved by
a scan), plus traceback to produce the aligned strings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Alignment", "smith_waterman", "refine_hit"]

MATCH = 2
MISMATCH = -3
GAP = -4


@dataclass(frozen=True)
class Alignment:
    """A scored local alignment with its aligned strings."""

    score: int
    query_aligned: str
    subject_aligned: str
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int

    @property
    def identity(self) -> float:
        """Fraction of aligned columns that match exactly."""
        if not self.query_aligned:
            return 0.0
        matches = sum(
            1
            for a, b in zip(self.query_aligned, self.subject_aligned)
            if a == b and a != "-"
        )
        return matches / len(self.query_aligned)

    @property
    def gaps(self) -> int:
        """Number of gap columns in the alignment."""
        return self.query_aligned.count("-") + self.subject_aligned.count("-")


def _encode(seq: str) -> np.ndarray:
    table = np.full(256, -1, dtype=np.int8)
    for i, base in enumerate("ACGT"):
        table[ord(base)] = i
    return table[np.frombuffer(seq.encode(), dtype=np.uint8)]


def smith_waterman(query: str, subject: str) -> Alignment:
    """Optimal local alignment of two sequences with linear gaps.

    Dynamic programming is vectorized across each matrix row; traceback
    is recomputed from score relations, so memory is O(n·m) int32 —
    fine for the refinement-sized sequences this stage sees.
    """
    q = _encode(query.upper())
    s = _encode(subject.upper())
    n, m = len(q), len(s)
    if n == 0 or m == 0:
        return Alignment(0, "", "", 0, 0, 0, 0)
    H = np.zeros((n + 1, m + 1), dtype=np.int32)
    for i in range(1, n + 1):
        match_row = np.where(
            (q[i - 1] == s) & (q[i - 1] >= 0), MATCH, MISMATCH
        ).astype(np.int32)
        diag = H[i - 1, :-1] + match_row
        up = H[i - 1, 1:] + GAP
        best = np.maximum(np.maximum(diag, up), 0)
        # left-dependency is sequential: resolve with a scan
        row = H[i]
        prev = 0
        for j in range(1, m + 1):
            val = best[j - 1]
            left = prev + GAP
            if left > val:
                val = left
            row[j] = val
            prev = val
    end = np.unravel_index(np.argmax(H), H.shape)
    score = int(H[end])
    # traceback
    i, j = int(end[0]), int(end[1])
    q_parts: list[str] = []
    s_parts: list[str] = []
    while i > 0 and j > 0 and H[i, j] > 0:
        here = H[i, j]
        match_score = MATCH if query[i - 1].upper() == subject[j - 1].upper() else MISMATCH
        if here == H[i - 1, j - 1] + match_score:
            q_parts.append(query[i - 1])
            s_parts.append(subject[j - 1])
            i -= 1
            j -= 1
        elif here == H[i - 1, j] + GAP:
            q_parts.append(query[i - 1])
            s_parts.append("-")
            i -= 1
        else:
            q_parts.append("-")
            s_parts.append(subject[j - 1])
            j -= 1
    return Alignment(
        score=score,
        query_aligned="".join(reversed(q_parts)),
        subject_aligned="".join(reversed(s_parts)),
        query_start=i,
        query_end=int(end[0]),
        subject_start=j,
        subject_end=int(end[1]),
    )


def refine_hit(query: str, subject: str, hit, margin: int = 20) -> Alignment:
    """Gapped refinement of one ungapped hit (the BLAST second stage).

    Realigns a window around the ungapped hit's subject span with
    Smith-Waterman, allowing indels the seed-extension cannot express.
    Coordinates in the result are subject-absolute.
    """
    lo = max(0, hit.subject_start - margin)
    hi = min(len(subject), hit.subject_end + margin)
    window = subject[lo:hi]
    aligned = smith_waterman(query, window)
    return Alignment(
        score=aligned.score,
        query_aligned=aligned.query_aligned,
        subject_aligned=aligned.subject_aligned,
        query_start=aligned.query_start,
        query_end=aligned.query_end,
        subject_start=lo + aligned.subject_start,
        subject_end=lo + aligned.subject_end,
    )
