"""Karlin–Altschul statistics: bit scores and E-values for hits.

Raw alignment scores are incomparable across databases; BLAST reports
*bit scores* (scale-free) and *E-values* (expected chance hits at this
score given query and database sizes), derived from Karlin–Altschul
theory: for an ungapped local alignment with score S,

    E = K · m · n · exp(−λ·S)

where m, n are the effective query/database lengths and λ, K are
parameters of the scoring system and background letter frequencies.
λ solves  Σᵢⱼ pᵢ pⱼ exp(λ·sᵢⱼ) = 1; we compute it numerically for the
uniform-ACGT background and the match/mismatch scores the search uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.apps.miniblast.db import GenomeDB
from repro.apps.miniblast.search import MATCH_SCORE, MISMATCH_SCORE, Hit

__all__ = ["KarlinAltschul", "compute_lambda", "ScoredHit", "evaluate_hits"]

#: uniform nucleotide background
_P_MATCH = 0.25
_P_MISMATCH = 0.75


def compute_lambda(
    match: int = MATCH_SCORE,
    mismatch: int = MISMATCH_SCORE,
    tolerance: float = 1e-12,
) -> float:
    """Solve Σ pᵢpⱼ e^{λs} = 1 for λ > 0 by bisection.

    For a two-outcome nucleotide system this is
    0.25·e^{λ·match} + 0.75·e^{λ·mismatch} = 1.  A positive solution
    exists iff the expected score 0.25·match + 0.75·mismatch < 0
    (otherwise local alignment statistics are undefined).
    """
    expected = _P_MATCH * match + _P_MISMATCH * mismatch
    if expected >= 0:
        raise ValueError(
            f"expected score must be negative (got {expected}); "
            "local alignment statistics are undefined"
        )

    def f(lam: float) -> float:
        return (
            _P_MATCH * math.exp(lam * match)
            + _P_MISMATCH * math.exp(lam * mismatch)
            - 1.0
        )

    lo, hi = 1e-9, 1.0
    while f(hi) < 0:
        hi *= 2.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if f(mid) < 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class KarlinAltschul:
    """The (λ, K) parameter pair for one scoring system."""

    lam: float
    k: float = 0.35  # standard nucleotide-search approximation

    @classmethod
    @lru_cache(maxsize=8)
    def for_scores(cls, match: int = MATCH_SCORE, mismatch: int = MISMATCH_SCORE) -> "KarlinAltschul":
        """Parameters for a match/mismatch scoring system (cached)."""
        return cls(lam=compute_lambda(match, mismatch))

    def bit_score(self, raw_score: int) -> float:
        """Scale-free score: S' = (λS − ln K) / ln 2."""
        return (self.lam * raw_score - math.log(self.k)) / math.log(2.0)

    def e_value(self, raw_score: int, query_len: int, db_len: int) -> float:
        """Expected chance alignments with ≥ this score: E = m·n·2^{−S'}."""
        return query_len * db_len * 2.0 ** (-self.bit_score(raw_score))


@dataclass(frozen=True)
class ScoredHit:
    """A search hit annotated with its statistical significance."""

    hit: Hit
    bit_score: float
    e_value: float

    @property
    def significant(self) -> bool:
        """Conventional E < 1e-3 significance threshold."""
        return self.e_value < 1e-3


def evaluate_hits(
    hits: list[Hit],
    query_len: int,
    db: GenomeDB,
    max_e: float = 10.0,
) -> list[ScoredHit]:
    """Annotate hits with bit scores and E-values; filter at ``max_e``.

    Output is sorted by ascending E-value (most significant first),
    matching BLAST report ordering.
    """
    params = KarlinAltschul.for_scores()
    db_len = db.total_bases()
    scored = [
        ScoredHit(
            hit=h,
            bit_score=params.bit_score(h.score),
            e_value=params.e_value(h.score, query_len, db_len),
        )
        for h in hits
    ]
    scored = [s for s in scored if s.e_value <= max_e]
    scored.sort(key=lambda s: (s.e_value, s.hit.subject))
    return scored
