from repro.apps.miniblast.align import Alignment, refine_hit, smith_waterman
from repro.apps.miniblast.db import (
    GenomeDB,
    build_db,
    generate_sequences,
    load_db,
    mutate,
    save_db,
)
from repro.apps.miniblast.search import Hit, format_hits, search

__all__ = [
    "Alignment", "refine_hit", "smith_waterman",
    "GenomeDB", "build_db", "generate_sequences", "load_db", "mutate", "save_db",
    "Hit", "format_hits", "search",
]

from repro.apps.miniblast.stats import (  # noqa: E402
    KarlinAltschul,
    ScoredHit,
    compute_lambda,
    evaluate_hits,
)

__all__ += ["KarlinAltschul", "ScoredHit", "compute_lambda", "evaluate_hits"]
