"""Seed-and-extend sequence search (the BLAST heuristic, from scratch).

The classic two-phase heuristic: exact k-mer *seeds* are located via
the database index, then each seed is *extended* in both directions
with match/mismatch scoring until the running score drops more than a
drop-off threshold below its maximum (X-drop termination).  Overlapping
extensions of the same (query, subject) diagonal are deduplicated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.miniblast.db import GenomeDB

__all__ = ["Hit", "search", "format_hits"]

#: standard BLAST-ish nucleotide scoring
MATCH_SCORE = 2
MISMATCH_SCORE = -3
X_DROP = 20


@dataclass(frozen=True, slots=True)
class Hit:
    """One scored local alignment between the query and a subject."""

    subject: str
    score: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int

    @property
    def length(self) -> int:
        """Aligned span length in bases."""
        return self.query_end - self.query_start


def _extend(
    query: str, subject: str, q_off: int, s_off: int, k: int
) -> tuple[int, int, int]:
    """X-drop extension around one seed.

    Returns (score, left_extension, right_extension) where extensions
    count bases beyond the seed boundaries.
    """
    score = k * MATCH_SCORE
    best = score
    # extend right
    right = 0
    best_right = 0
    qi, si = q_off + k, s_off + k
    while qi < len(query) and si < len(subject):
        score += MATCH_SCORE if query[qi] == subject[si] else MISMATCH_SCORE
        right += 1
        if score > best:
            best, best_right = score, right
        elif best - score > X_DROP:
            break
        qi += 1
        si += 1
    score = best
    # extend left
    left = 0
    best_left = 0
    qi, si = q_off - 1, s_off - 1
    while qi >= 0 and si >= 0:
        score += MATCH_SCORE if query[qi] == subject[si] else MISMATCH_SCORE
        left += 1
        if score > best:
            best, best_left = score, left
        elif best - score > X_DROP:
            break
        qi -= 1
        si -= 1
    return best, best_left, best_right


def search(db: GenomeDB, query: str, max_hits: int = 10, min_score: int = 0) -> list[Hit]:
    """Find the best local alignments of ``query`` in the database.

    Seeds every query k-mer through the index, extends each, keeps the
    best alignment per (subject, diagonal), and returns hits sorted by
    descending score (ties broken by subject then position, so output
    is deterministic).
    """
    k = db.k
    query = query.strip().upper()
    if len(query) < k:
        return []
    best_by_diag: dict[tuple[str, int], Hit] = {}
    for q_off in range(len(query) - k + 1):
        kmer = query[q_off : q_off + k]
        if any(base not in "ACGT" for base in kmer):
            continue
        for subject_name, s_off in db.seed_hits(kmer):
            diag = (subject_name, s_off - q_off)
            existing = best_by_diag.get(diag)
            if existing is not None and existing.query_start <= q_off < existing.query_end:
                continue  # seed already covered by an accepted extension
            subject = db.sequences[subject_name]
            score, left, right = _extend(query, subject, q_off, s_off, k)
            hit = Hit(
                subject=subject_name,
                score=score,
                query_start=q_off - left,
                query_end=q_off + k + right,
                subject_start=s_off - left,
                subject_end=s_off + k + right,
            )
            if existing is None or hit.score > existing.score:
                best_by_diag[diag] = hit
    hits = [h for h in best_by_diag.values() if h.score >= min_score]
    hits.sort(key=lambda h: (-h.score, h.subject, h.subject_start))
    return hits[:max_hits]


def format_hits(query_name: str, hits: list[Hit]) -> str:
    """Tabular report, one line per hit (BLAST outfmt-6 flavoured)."""
    lines = []
    for h in hits:
        lines.append(
            f"{query_name}\t{h.subject}\t{h.score}\t"
            f"{h.query_start}\t{h.query_end}\t{h.subject_start}\t{h.subject_end}"
        )
    return "\n".join(lines) + ("\n" if lines else "")
