from repro.apps.bgd.bgd import (
    BGDResult,
    best_of_restarts,
    make_classification,
    make_regression,
    run_bgd_linear,
    run_bgd_logistic,
)

__all__ = [
    "BGDResult", "best_of_restarts", "make_classification",
    "make_regression", "run_bgd_linear", "run_bgd_logistic",
]

from repro.apps.bgd.variants import (  # noqa: E402
    compare_optimizers,
    run_momentum,
    run_nesterov,
    run_sgd,
)

__all__ += ["compare_optimizers", "run_momentum", "run_nesterov", "run_sgd"]
