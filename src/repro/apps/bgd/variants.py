"""Gradient-descent variants for the BGD workflow's ablation studies.

The paper's workflow runs plain batch gradient descent; serverless
restarts make it cheap to compare optimizer variants per restart.  This
module adds the standard alternatives — minibatch SGD, momentum, and
Nesterov — all on the same linear-regression objective so results are
directly comparable with :func:`repro.apps.bgd.run_bgd_linear`.
"""

from __future__ import annotations

import numpy as np

from repro.apps.bgd.bgd import BGDResult

__all__ = ["run_sgd", "run_momentum", "run_nesterov", "compare_optimizers"]


def _mse(x: np.ndarray, y: np.ndarray, w: np.ndarray, b: float) -> float:
    return float((((x @ w + b) - y) ** 2).mean())


def run_sgd(
    x: np.ndarray,
    y: np.ndarray,
    iterations: int = 200,
    lr: float = 0.05,
    batch_size: int = 32,
    seed: int = 0,
) -> BGDResult:
    """Minibatch stochastic gradient descent on mean squared error."""
    rng = np.random.default_rng(seed)
    n, d = x.shape
    w = rng.normal(scale=1.0, size=d)
    b = 0.0
    losses = []
    for _ in range(iterations):
        idx = rng.choice(n, size=min(batch_size, n), replace=False)
        xb, yb = x[idx], y[idx]
        err = xb @ w + b - yb
        losses.append(_mse(x, y, w, b))
        w -= lr * 2.0 * xb.T @ err / len(idx)
        b -= lr * 2.0 * err.mean()
    return BGDResult(weights=w, bias=b, final_loss=_mse(x, y, w, b), losses=losses, seed=seed)


def run_momentum(
    x: np.ndarray,
    y: np.ndarray,
    iterations: int = 200,
    lr: float = 0.05,
    beta: float = 0.9,
    seed: int = 0,
) -> BGDResult:
    """Full-batch gradient descent with classical momentum."""
    rng = np.random.default_rng(seed)
    n, d = x.shape
    w = rng.normal(scale=1.0, size=d)
    b = 0.0
    vw = np.zeros(d)
    vb = 0.0
    losses = []
    for _ in range(iterations):
        err = x @ w + b - y
        losses.append(float((err**2).mean()))
        gw = 2.0 * x.T @ err / n
        gb = 2.0 * err.mean()
        vw = beta * vw + gw
        vb = beta * vb + gb
        w -= lr * vw
        b -= lr * vb
    return BGDResult(weights=w, bias=b, final_loss=_mse(x, y, w, b), losses=losses, seed=seed)


def run_nesterov(
    x: np.ndarray,
    y: np.ndarray,
    iterations: int = 200,
    lr: float = 0.05,
    beta: float = 0.9,
    seed: int = 0,
) -> BGDResult:
    """Nesterov accelerated gradient on the same objective."""
    rng = np.random.default_rng(seed)
    n, d = x.shape
    w = rng.normal(scale=1.0, size=d)
    b = 0.0
    vw = np.zeros(d)
    vb = 0.0
    losses = []
    for _ in range(iterations):
        look_w = w - lr * beta * vw
        look_b = b - lr * beta * vb
        err = x @ look_w + look_b - y
        losses.append(_mse(x, y, w, b))
        gw = 2.0 * x.T @ err / n
        gb = 2.0 * err.mean()
        vw = beta * vw + gw
        vb = beta * vb + gb
        w -= lr * vw
        b -= lr * vb
    return BGDResult(weights=w, bias=b, final_loss=_mse(x, y, w, b), losses=losses, seed=seed)


def compare_optimizers(
    x: np.ndarray, y: np.ndarray, iterations: int = 150, seed: int = 0
) -> dict[str, BGDResult]:
    """Run every variant from the same initialization seed."""
    from repro.apps.bgd.bgd import run_bgd_linear

    return {
        "bgd": run_bgd_linear(x, y, iterations=iterations, seed=seed),
        "sgd": run_sgd(x, y, iterations=iterations, seed=seed),
        "momentum": run_momentum(x, y, iterations=iterations, lr=0.01, seed=seed),
        "nesterov": run_nesterov(x, y, iterations=iterations, lr=0.01, seed=seed),
    }
