"""Batch gradient descent (the paper's BGD workflow payload).

"The algorithm consists of computing the error of a model on the
entire input and adjusting the weights of the model accordingly for a
number of iterations.  Running many different instances of BGD with
different initial models can improve the final error" (paper §4.2).

This module is exactly that payload: full-batch gradient descent for
linear and logistic models on numpy, plus the randomized-restart
driver that the serverless FunctionCalls invoke.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BGDResult",
    "make_regression",
    "make_classification",
    "run_bgd_linear",
    "run_bgd_logistic",
    "best_of_restarts",
]


@dataclass
class BGDResult:
    """Outcome of one gradient-descent run."""

    weights: np.ndarray
    bias: float
    final_loss: float
    losses: list[float]
    seed: int


def make_regression(
    n_samples: int = 500, n_features: int = 10, noise: float = 0.1, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """A synthetic linear-regression dataset (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n_samples, n_features))
    true_w = rng.normal(size=n_features)
    y = x @ true_w + rng.normal(scale=noise, size=n_samples)
    return x, y


def make_classification(
    n_samples: int = 500, n_features: int = 10, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """A synthetic binary-classification dataset with a linear boundary."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n_samples, n_features))
    true_w = rng.normal(size=n_features)
    logits = x @ true_w
    y = (logits + rng.logistic(scale=0.5, size=n_samples) > 0).astype(float)
    return x, y


def run_bgd_linear(
    x: np.ndarray,
    y: np.ndarray,
    iterations: int = 200,
    lr: float = 0.05,
    seed: int = 0,
) -> BGDResult:
    """Full-batch gradient descent on mean squared error."""
    rng = np.random.default_rng(seed)
    n, d = x.shape
    w = rng.normal(scale=1.0, size=d)
    b = 0.0
    losses = []
    for _ in range(iterations):
        pred = x @ w + b
        err = pred - y
        losses.append(float((err**2).mean()))
        grad_w = 2.0 * x.T @ err / n
        grad_b = 2.0 * err.mean()
        w -= lr * grad_w
        b -= lr * grad_b
    final = float((((x @ w + b) - y) ** 2).mean())
    return BGDResult(weights=w, bias=b, final_loss=final, losses=losses, seed=seed)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


def run_bgd_logistic(
    x: np.ndarray,
    y: np.ndarray,
    iterations: int = 200,
    lr: float = 0.5,
    seed: int = 0,
) -> BGDResult:
    """Full-batch gradient descent on logistic (cross-entropy) loss."""
    rng = np.random.default_rng(seed)
    n, d = x.shape
    w = rng.normal(scale=1.0, size=d)
    b = 0.0
    losses = []
    eps = 1e-12
    for _ in range(iterations):
        p = _sigmoid(x @ w + b)
        loss = float(-(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)).mean())
        losses.append(loss)
        grad_w = x.T @ (p - y) / n
        grad_b = float((p - y).mean())
        w -= lr * grad_w
        b -= lr * grad_b
    p = _sigmoid(x @ w + b)
    final = float(-(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)).mean())
    return BGDResult(weights=w, bias=b, final_loss=final, losses=losses, seed=seed)


def best_of_restarts(results: list[BGDResult]) -> BGDResult:
    """Pick the restart with the lowest final loss (ties → lowest seed)."""
    if not results:
        raise ValueError("no results to choose from")
    return min(results, key=lambda r: (r.final_loss, r.seed))
