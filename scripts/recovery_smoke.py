#!/usr/bin/env python
"""End-to-end crash/recovery smoke for the always-on service.

Drives the same daemon + client CLIs an operator uses:

1. A *baseline* daemon runs a two-tenant workload to completion and
   records every output's md5.
2. A second daemon runs the same workload, but the manager process is
   ``kill -9``-ed while one tenant's tasks are still in flight.
3. ``repro-service run`` over the same state dir reclaims the stale
   pidfile, replays the journal, reuses the crashed life's port, and
   the first life's workers (spawned with a reconnect window) rejoin.
4. Both tenants reattach by session token; every output — completed
   before the crash or finished by the second life — must be
   byte-identical to the baseline.
5. The shared transaction log must show both lives as segments of one
   file and **zero** re-executions of tasks whose outputs survived.

Exit status 0 only if every check passes.  Needs PYTHONPATH=src.
"""

import hashlib
import json
import os
import shutil
import signal
import subprocess
import sys
import time

from repro.observe.txnlog import read_transactions
from repro.service.client import ServiceClient

SLOW = 6  # seconds each of bob's in-flight tasks sleeps


def _wait_for_state(state_dir, not_pid=None, timeout=60.0):
    """Poll for service.json, skipping a crashed prior life's stale
    copy (``not_pid``) until the new daemon reclaims and rewrites it."""
    path = os.path.join(state_dir, "service.json")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(path) as f:
                state = json.load(f)
        except (OSError, json.JSONDecodeError):
            state = None
        if state is not None and state.get("pid") != not_pid:
            return state
        time.sleep(0.2)
    raise SystemExit(f"daemon in {state_dir} never wrote service.json")


def _start_daemon(state_dir, *extra, not_pid=None):
    # --detach double-forks, so the daemon is never this script's
    # child: no zombie for stop's pid-liveness polling to trip on
    subprocess.run(
        [sys.executable, "-m", "repro.service.daemon", "run",
         "--state-dir", state_dir, "--cores", "2", "--detach", *extra],
        check=True,
    )
    return _wait_for_state(state_dir, not_pid=not_pid)


def _stop_daemon(state_dir):
    subprocess.run(
        [sys.executable, "-m", "repro.service.daemon", "stop",
         "--state-dir", state_dir, "--timeout", "60", "--quiet-missing"],
        check=False,
    )


def _wait_pid_gone(pid, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.2)
    raise SystemExit(f"pid {pid} still alive after {timeout}s")


def _wait_for_event(log_path, kind, timeout=90.0):
    """Poll the (tailable) transaction log until ``kind`` appears."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            _, events = read_transactions(log_path)
        except OSError:
            events = []
        if any(e.kind == kind for e in events):
            return
        time.sleep(0.5)
    raise SystemExit(f"event {kind!r} never appeared in {log_path}")


def _alice_workload(client):
    """Fast fan-out: finishes well before the crash."""
    shared = client.declare_buffer(b"recovery smoke shared input\n")
    accepted = [
        client.submit(
            f"cat shared.txt > out.txt && echo alice-{i} >> out.txt",
            inputs=[("shared.txt", shared["cache_name"])],
            outputs=["out.txt"],
        )
        for i in range(3)
    ]
    for reply in accepted:
        client.wait(reply["task_id"], timeout=60)
    return accepted


def _bob_submit(client):
    """Slow tasks: still in flight when the manager dies."""
    shared = client.declare_buffer(b"recovery smoke shared input\n")
    return [
        client.submit(
            f"cat shared.txt > out.txt && sleep {SLOW} && echo bob-{i} >> out.txt",
            inputs=[("shared.txt", shared["cache_name"])],
            outputs=["out.txt"],
        )
        for i in range(3)
    ]


def _md5s(client, accepted):
    return [
        hashlib.md5(client.fetch(r["outputs"]["out.txt"], timeout=60)).hexdigest()
        for r in accepted
    ]


def baseline(host_port):
    host, port = host_port
    with ServiceClient(host, port, "alice") as alice:
        a_accepted = _alice_workload(alice)
        a_md5s = _md5s(alice, a_accepted)
    with ServiceClient(host, port, "bob") as bob:
        b_accepted = _bob_submit(bob)
        for reply in b_accepted:
            bob.wait(reply["task_id"], timeout=120)
        b_md5s = _md5s(bob, b_accepted)
    return a_md5s, b_md5s


def main():
    for d in ("smoke-base", "smoke-svc"):
        shutil.rmtree(d, ignore_errors=True)

    print("== baseline: uninterrupted two-tenant run ==")
    base_state = _start_daemon("smoke-base", "--workers", "2")
    try:
        base_a, base_b = baseline((base_state["host"], base_state["port"]))
    finally:
        _stop_daemon("smoke-base")
        _wait_pid_gone(base_state["pid"])
    print(f"baseline md5s: alice={base_a} bob={base_b}")

    print("== crash run: kill -9 mid-flight, restart over the journal ==")
    state = _start_daemon(
        "smoke-svc", "--workers", "2", "--worker-reconnect", "120",
        "--recovery-grace", "30",
    )
    host, port, pid = state["host"], state["port"], state["pid"]

    alice = ServiceClient(host, port, "alice")
    alice_token = alice.session
    a_accepted = _alice_workload(alice)
    pre_crash_a = _md5s(alice, a_accepted)
    assert pre_crash_a == base_a, (pre_crash_a, base_a)

    bob = ServiceClient(host, port, "bob")
    bob_token = bob.session
    b_accepted = _bob_submit(bob)
    time.sleep(1.5)  # let the slow tasks reach the workers

    print(f"kill -9 {pid} (manager mid-run)")
    os.kill(pid, signal.SIGKILL)
    _wait_pid_gone(pid)
    alice.close()
    bob.close()

    # restart over the same state dir: reclaims the stale pidfile,
    # replays the journal, rebinds the crashed life's port; the first
    # life's workers are still alive and rejoin, so spawn no doubles
    state2 = _start_daemon(
        "smoke-svc", "--workers", "0", "--recovery-grace", "30",
        not_pid=pid,
    )
    log_path = os.path.join("smoke-svc", "service.jsonl")
    try:
        assert state2["port"] == port, (state2["port"], port)
        # outputs are fetchable once the surviving workers have rejoined
        # and re-announced their caches
        _wait_for_event(log_path, "replica_readopted")

        alice = ServiceClient(host, port, "alice", session=alice_token)
        assert alice.recovered, "pre-crash session not restored"
        post_a = _md5s(alice, a_accepted)
        assert post_a == base_a, (post_a, base_a)
        alice.close()
        print("alice: outputs byte-identical across the crash")

        bob = ServiceClient(host, port, "bob", session=bob_token)
        assert bob.recovered
        for reply in b_accepted:
            bob.wait(reply["task_id"], timeout=180)
        post_b = _md5s(bob, b_accepted)
        assert post_b == base_b, (post_b, base_b)
        bob.close()
        print("bob: in-flight work finished by the second life, byte-identical")
    finally:
        _stop_daemon("smoke-svc")
        _wait_pid_gone(state2["pid"])

    print("== transaction log: two segments, zero re-executions ==")
    header, events = read_transactions(log_path)
    assert header["segments"] == 2, header
    restart_at = next(
        i for i, e in enumerate(events) if e.kind == "manager_restart"
    )
    pre, post = events[:restart_at], events[restart_at:]
    survived = {
        e.task for e in pre if e.kind == "task_end" and e.category != "library"
    }
    restarted = {e.task for e in post if e.kind == "task_start"}
    assert survived, "no task finished before the crash"
    reexecuted = survived & restarted
    assert not reexecuted, f"survived tasks re-executed: {sorted(reexecuted)}"
    assert any(e.kind == "recovery_complete" for e in post)
    assert any(e.kind == "replica_readopted" for e in post)
    print(
        f"{len(survived)} survived task(s), {len(restarted)} post-restart "
        f"start(s), 0 re-executions"
    )
    print("recovery smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
