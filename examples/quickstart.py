#!/usr/bin/env python3
"""Quickstart: declare files, run command tasks and Python tasks.

Starts a manager and two local worker processes, then exercises the
core TaskVine concepts from the paper:

* a BufferFile input presented in the task's private sandbox,
* a TempFile output that stays in the cluster until fetched,
* a PythonTask whose function ships to the worker and returns a value.

Run with::

    python examples/quickstart.py
"""

import repro
from _cluster import start_workers


def fib(n):
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def main():
    m = repro.Manager()
    start_workers(m, count=2)
    print(f"manager listening on {m.host}:{m.port} with {len(m.workers)} workers")

    # -- a Unix command task with explicit data bindings ----------------
    poem = m.declare_buffer(b"the vine grows\nwhere data flows\n")
    upper = m.declare_temp()
    task = repro.Task("tr a-z A-Z < poem.txt > loud.txt")
    task.add_input(poem, "poem.txt")
    task.add_output(upper, "loud.txt")
    m.submit(task)

    # -- Python tasks: functions shipped to workers ------------------
    py_tasks = [repro.PythonTask(fib, n) for n in (10, 20, 30)]
    for t in py_tasks:
        m.submit(t)

    for finished in m.run_until_done(timeout=120):
        print(f"  {finished.task_id}: {finished.state.value}")

    print("command output:", m.fetch_bytes(upper).decode().strip())
    print("fib results:", [t.output() for t in py_tasks])
    m.close()


if __name__ == "__main__":
    main()
