#!/usr/bin/env python3
"""Batch gradient descent through the serverless model (paper §4.2 BGD).

Installs a library hosting the BGD function on every worker — paying
interpreter/import startup once per worker — then fires many
FunctionCalls with different random initial models and keeps the best
final error, exactly the randomized-restart pattern of the paper's BGD
workflow.

Run with::

    python examples/bgd_serverless.py
"""

import repro
from _cluster import start_workers

N_RESTARTS = 16


def gradient_descent(seed, iterations=150):
    """One BGD restart; returns (seed, final_loss)."""
    from repro.apps.bgd import make_regression, run_bgd_linear

    x, y = make_regression(n_samples=400, n_features=12, noise=0.1, seed=7)
    result = run_bgd_linear(x, y, iterations=iterations, lr=0.05, seed=seed)
    return {"seed": seed, "final_loss": result.final_loss}


def main():
    m = repro.Manager()
    start_workers(m, count=2, cores=4)

    m.create_library("bgd", [gradient_descent], function_slots=4)
    m.install_library("bgd")

    calls = [repro.FunctionCall("bgd", "gradient_descent", seed) for seed in range(N_RESTARTS)]
    for fc in calls:
        m.submit(fc)
    m.run_until_done(timeout=300)

    results = [fc.output() for fc in calls if fc.state == repro.TaskState.DONE]
    results.sort(key=lambda r: r["final_loss"])
    print(f"completed {len(results)}/{N_RESTARTS} restarts")
    for r in results[:5]:
        print(f"  seed {r['seed']:3d}: final loss {r['final_loss']:.5f}")
    best = results[0]
    print(f"best restart: seed {best['seed']} with loss {best['final_loss']:.5f}")
    ready = len(m.log.events("library_ready"))
    print(f"library instances deployed: {ready} (startup paid once per worker, "
          f"not once per call)")
    m.close()


if __name__ == "__main__":
    main()
