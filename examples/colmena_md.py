#!/usr/bin/env python3
"""AI-guided molecular search (the Colmena-XTB shape) on TaskVine.

Alternates rounds of (a) molecular-dynamics relaxation tasks fanned out
to workers and (b) surrogate-model training + inference at the manager
that decides which candidates to simulate next — the steering loop the
paper's Colmena application runs at scale.

Run with::

    python examples/colmena_md.py
"""

import numpy as np

import repro
from _cluster import start_workers
from repro.apps.minimd import MLP, fingerprint, random_cluster, simulate, train

ROUNDS = 2
CANDIDATES_PER_ROUND = 8
SIMULATE_TOP = 4


def relax(seed):
    """Simulation task: relax one candidate cluster, return features."""
    from repro.apps.minimd import fingerprint, random_cluster, simulate

    pos = random_cluster(9, seed=seed)
    result = simulate(pos, steps=300, seed=seed)
    return {
        "seed": seed,
        "energy": result.potential_energy,
        "fingerprint": fingerprint(result.positions).tolist(),
    }


def main():
    m = repro.Manager()
    start_workers(m, count=2, cores=4)

    rng = np.random.default_rng(0)
    training_x, training_y = [], []
    next_seeds = list(range(SIMULATE_TOP))
    best = None

    for round_no in range(ROUNDS):
        # fan out simulations for the chosen candidates
        tasks = [repro.PythonTask(relax, seed) for seed in next_seeds]
        for t in tasks:
            t.set_category("simulation")
            m.submit(t)
        m.run_until_done(timeout=300)
        for t in tasks:
            out = t.output()
            training_x.append(out["fingerprint"])
            training_y.append(out["energy"])
            if best is None or out["energy"] < best["energy"]:
                best = out
        print(
            f"round {round_no}: simulated {len(tasks)}, "
            f"best energy so far {best['energy']:.3f} (seed {best['seed']})"
        )

        # steer: train the surrogate, rank unseen candidates by prediction
        x = np.array(training_x)
        y = np.array(training_y)
        y_norm = (y - y.mean()) / (y.std() + 1e-9)
        model = MLP(n_inputs=x.shape[1], hidden=24, seed=round_no)
        report = train(model, x, y_norm, epochs=200, lr=0.05)
        pool = rng.integers(100, 10_000, size=CANDIDATES_PER_ROUND)
        features = np.array(
            [fingerprint(simulate(random_cluster(9, seed=int(s)), steps=20).positions)
             for s in pool]
        )
        ranked = sorted(zip(model.predict(features), pool))
        next_seeds = [int(s) for _, s in ranked[:SIMULATE_TOP]]
        print(
            f"  surrogate loss {report.final_loss:.3f}; "
            f"next candidates {next_seeds}"
        )

    print(f"final best: energy {best['energy']:.3f} from seed {best['seed']}")
    m.close()


if __name__ == "__main__":
    main()
