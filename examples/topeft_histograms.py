#!/usr/bin/env python3
"""HEP histogram analysis with in-cluster accumulation (TopEFT shape).

Processes synthetic collision-event batches into partial histograms and
merges them up a reduction tree — with every intermediate result kept
as a TempFile in worker storage, never travelling back to the manager
until the single final merge is fetched (the Fig. 13b execution mode).

Run with::

    python examples/topeft_histograms.py
"""

import repro
from _cluster import start_workers
from repro.apps.minihist import generate_batch, to_bytes

N_CHUNKS = 8
FAN_IN = 4


def process_chunk(events_path, out_path):
    """Processor: read one event batch, write its partial histograms."""
    from repro.apps.minihist import from_bytes, process

    with open(events_path, "rb") as f:
        batch = from_bytes(f.read())
    result = process(batch, selection_pt=25.0)
    with open(out_path, "wb") as f:
        f.write(result.to_bytes())
    return result.n_events


def merge_parts(part_paths, out_path):
    """Accumulator: merge partial histogram sets into one."""
    from repro.apps.minihist import HistogramSet, accumulate

    parts = []
    for path in part_paths:
        with open(path, "rb") as f:
            parts.append(HistogramSet.from_bytes(f.read()))
    merged = accumulate(parts)
    with open(out_path, "wb") as f:
        f.write(merged.to_bytes())
    return len(merged.hists)


def main():
    m = repro.Manager()
    start_workers(m, count=2, cores=4)

    datasets = ["data", "ttbar", "wjets", "zjets"]
    # processing layer: one PythonTask per chunk
    partials = []
    for i in range(N_CHUNKS):
        batch = generate_batch(datasets[i % len(datasets)], 20_000, seed=i)
        events = m.declare_buffer(to_bytes(batch), cache="workflow")
        part = m.declare_temp()
        t = repro.PythonTask(process_chunk, "events.npz", "hists.bin")
        t.add_input(events, "events.npz")
        t.add_output(part, "hists.bin")
        t.set_category("process")
        m.submit(t)
        partials.append(part)

    # accumulation tree over TempFiles: data never leaves the cluster
    level = 0
    while len(partials) > 1:
        level += 1
        next_level = []
        for j in range(0, len(partials), FAN_IN):
            group = partials[j : j + FAN_IN]
            if len(group) == 1:
                next_level.append(group[0])
                continue
            merged = m.declare_temp()
            names = [f"part{k}.bin" for k in range(len(group))]
            t = repro.PythonTask(merge_parts, names, "merged.bin")
            for name, part in zip(names, group):
                t.add_input(part, name)
            t.add_output(merged, "merged.bin")
            t.set_category("accumulate")
            m.submit(t)
            next_level.append(merged)
        partials = next_level

    m.run_until_done(timeout=300)
    final = partials[0]
    from repro.apps.minihist import HistogramSet

    result = HistogramSet.from_bytes(m.fetch_bytes(final))
    print(f"reduction depth: {level} levels")
    print(f"final result: {len(result.hists)} histograms over {result.n_events} selected events")
    for (dataset, variable), hist in sorted(result.hists.items()):
        if variable == "pt":
            print(f"  {dataset:8s} pt: total weight {hist.total:10.1f}")
    retrievals = [e for e in m.log.events("transfer_end")]
    print(f"intermediate results retrieved to manager during the run: 0 (by design)")
    m.close()


if __name__ == "__main__":
    main()
