#!/usr/bin/env python3
"""Regenerate the paper's figure panels as SVG files.

Runs scaled-down versions of every evaluation scenario on the simulator
and writes Fig-9/11/12/13-style task and worker views::

    python examples/render_figures.py [output_dir]

(Defaults to ``./figures``.  Full-scale versions run via
``pytest benchmarks/ --benchmark-only``.)
"""

import os
import sys

from repro.sim.svgplot import svg_task_view, svg_worker_view
from repro.sim.workloads import (
    bgd_workflow,
    blast_cluster,
    blast_workflow,
    colmena_workflow,
    distribution_workflow,
    topeft_workflow,
)


def main() -> int:
    out = sys.argv[1] if len(sys.argv) > 1 else "figures"
    os.makedirs(out, exist_ok=True)
    path = lambda name: os.path.join(out, name)

    print("Fig 9: BLAST cold vs hot cache ...")
    cluster = blast_cluster(n_workers=25)
    cold = blast_workflow(cluster, n_tasks=250, seed=0)
    hot = blast_workflow(cluster, n_tasks=250, seed=1)
    svg_worker_view(cold.log, path("fig09a_cold.svg"),
                    t0=cold.started, horizon=cold.finished, title="Fig 9a cold")
    svg_worker_view(hot.log, path("fig09b_hot.svg"),
                    t0=hot.started, horizon=hot.finished, title="Fig 9b hot")
    print(f"  cold {cold.makespan:.0f}s vs hot {hot.makespan:.0f}s (virtual)")

    print("Fig 11: transfer methods ...")
    for mode in ("url", "unmanaged", "managed"):
        r = distribution_workflow(
            mode, n_workers=120, server_bps=5e9, worker_bps=4e8,
            transfer_latency=1.0,
        )
        svg_worker_view(
            r.stats.log, path(f"fig11_{mode}.svg"),
            title=f"Fig 11 {mode}",
        )
        print(f"  {mode:>10s}: {r.makespan:.1f}s")

    print("Fig 12 a/d: TopEFT ...")
    t = topeft_workflow(in_cluster=True, n_chunks=128, n_workers=32,
                        worker_ramp=5.0, seed=0)
    svg_task_view(t.stats.log, path("fig12a_topeft_tasks.svg"), title="Fig 12a")
    svg_worker_view(t.stats.log, path("fig12d_topeft_workers.svg"), title="Fig 12d")

    print("Fig 12 b/e: Colmena ...")
    c = colmena_workflow(peer_transfers=True, n_inference=60,
                         n_simulation=240, n_workers=30)
    svg_worker_view(c.stats.log, path("fig12e_colmena_workers.svg"), title="Fig 12e")
    print(f"  shared-FS loads {c.sharedfs_loads}, peer {c.peer_loads}")

    print("Fig 12 c/f: BGD serverless ...")
    b = bgd_workflow(n_calls=400, n_workers=40)
    svg_task_view(b.stats.log, path("fig12c_bgd_tasks.svg"), title="Fig 12c")
    svg_worker_view(b.stats.log, path("fig12f_bgd_workers.svg"), title="Fig 12f")

    print("Fig 13: shared vs in-cluster storage ...")
    for label, in_cluster in (("b_incluster", True), ("a_shared", False)):
        r = topeft_workflow(in_cluster=in_cluster, n_chunks=128, n_workers=32,
                            hist_mb=25.0, growth=4.0, manager_bps=0.125e9, seed=0)
        svg_task_view(r.stats.log, path(f"fig13{label}.svg"),
                      title=f"Fig 13{label}")
        print(f"  {label}: {r.stats.makespan:.0f}s")

    written = sorted(os.listdir(out))
    print(f"\n{len(written)} SVG panels in {out}/:")
    for name in written:
        print(f"  {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
