#!/usr/bin/env python3
"""The BLAST workflow from paper Fig. 3, end to end on real processes.

Builds a synthetic genome database, packs it as a tarball "archival
asset", and runs many query tasks that each invoke the mini-BLAST
executable against the database.  TaskVine mechanics on display:

* the tarball is a ``worker``-lifetime file with a content-derived
  cache name, so reruns find it already cached;
* ``declare_untar`` unpacks it *once per worker* via a mini task, and
  every task on that worker shares the unpacked directory;
* per-query BufferFiles are ``task``-lifetime and garbage-collected as
  soon as their task completes.

Run with::

    python examples/blast_workflow.py
"""

import sys
import tarfile
import tempfile
from pathlib import Path

import repro
from _cluster import start_workers
from repro.apps.miniblast import build_db, generate_sequences, mutate, save_db

N_QUERIES = 12


def build_archive(root: Path) -> tuple[Path, dict]:
    """Create the database tarball the workflow will consume."""
    sequences = generate_sequences(30, 600, seed=11)
    db = build_db(sequences, k=11)
    db_dir = root / "landmark"
    save_db(db, str(db_dir))
    tar_path = root / "landmark.tar"
    with tarfile.open(tar_path, "w") as tar:
        tar.add(db_dir, arcname="landmark")
    return tar_path, sequences


def main():
    root = Path(tempfile.mkdtemp(prefix="blast-example-"))
    tar_path, sequences = build_archive(root)

    m = repro.Manager()
    start_workers(m, count=2, cores=4)

    tarball = m.declare_local(str(tar_path), cache="worker")
    database = m.declare_untar(tarball, cache="worker")
    print(f"database asset: {tarball.cache_name}")

    names = sorted(sequences)
    tasks = []
    for i in range(N_QUERIES):
        subject = names[i % len(names)]
        fragment = mutate(sequences[subject][50:200], rate=0.03, seed=i)
        query = m.declare_buffer(f"q{i} {fragment}\n".encode(), cache="task")
        t = repro.Task(
            f"{sys.executable} -m repro.apps.miniblast.cli "
            "--db db/landmark --query query.txt"
        )
        t.add_input(query, "query.txt")
        t.add_input(database, "db")
        t.set_category("blast")
        tasks.append((t, subject))
        m.submit(t)

    m.run_until_done(timeout=300)
    correct = 0
    for t, subject in tasks:
        top = t.result.output.split("\t") if t.result.output else []
        found = len(top) > 1 and top[1] == subject
        correct += found
        print(f"  {t.task_id}: expected {subject} -> {'HIT' if found else 'miss'}")
    print(f"{correct}/{len(tasks)} queries located their source sequence")
    stages = len(m.log.events("stage_start"))
    print(f"database unpacked {stages} time(s) for {len(tasks)} tasks")
    m.close()


if __name__ == "__main__":
    main()
