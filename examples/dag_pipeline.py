#!/usr/bin/env python3
"""A dataflow pipeline through the DAG adapter (paper §6 direction).

Builds a map/reduce-style genomics quality pipeline as a graph of
Python functions — the Parsl/Dask-flavoured layer over TaskVine tasks:
sequence batches are scored in parallel, per-batch summaries merge up
a tree, and a final report node consumes the merged summary.

Run with::

    python examples/dag_pipeline.py
"""

import repro
from _cluster import start_workers
from repro.adapters.dag import TaskGraph

N_BATCHES = 6


def score_batch(batch_id, n_sequences=200, length=120):
    """Compute GC-content statistics for one synthetic batch."""
    from repro.apps.miniblast import generate_sequences

    sequences = generate_sequences(n_sequences, length, seed=batch_id)
    gc = [
        (seq.count("G") + seq.count("C")) / len(seq)
        for seq in sequences.values()
    ]
    return {
        "batch": batch_id,
        "n": len(gc),
        "gc_sum": sum(gc),
        "gc_min": min(gc),
        "gc_max": max(gc),
    }


def merge(left, right):
    """Combine two batch summaries."""
    return {
        "batch": f"{left['batch']}+{right['batch']}",
        "n": left["n"] + right["n"],
        "gc_sum": left["gc_sum"] + right["gc_sum"],
        "gc_min": min(left["gc_min"], right["gc_min"]),
        "gc_max": max(left["gc_max"], right["gc_max"]),
    }


def report(summary):
    """Format the final quality report."""
    mean = summary["gc_sum"] / summary["n"]
    return (
        f"{summary['n']} sequences: GC content "
        f"mean {mean:.3f}, range [{summary['gc_min']:.3f}, {summary['gc_max']:.3f}]"
    )


def main():
    m = repro.Manager()
    start_workers(m, count=2, cores=4)

    g = TaskGraph(m)
    leaves = [g.add(score_batch, i) for i in range(N_BATCHES)]
    # merge pairwise up a tree — the graph executes leaves in parallel
    level = leaves
    while len(level) > 1:
        level = [
            g.add(merge, level[i], level[i + 1]) if i + 1 < len(level) else level[i]
            for i in range(0, len(level), 2)
        ]
    final = g.add(report, level[0])
    print(final.result())
    print(f"graph executed {len(g.nodes)} nodes across {len(m.workers)} workers")
    m.close()


if __name__ == "__main__":
    main()
