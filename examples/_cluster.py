"""Shared helper for examples: spawn local workers for a manager.

Workers are separate OS processes running the real worker (the same
thing ``repro-worker --manager host:port`` starts), each with its own
cache directory — the paper's architecture compressed onto one machine.
"""

from __future__ import annotations

import atexit
import subprocess
import sys
import tempfile
import time


def start_workers(manager, count=2, cores=4, workdir_root=None, disk=4000):
    """Launch ``count`` worker processes and wait for them to register."""
    root = workdir_root or tempfile.mkdtemp(prefix="repro-workers-")
    procs = []
    for i in range(count):
        cmd = [
            sys.executable,
            "-m",
            "repro.worker.cli",
            "--manager",
            f"{manager.host}:{manager.port}",
            "--workdir",
            f"{root}/w{i}",
            "--cores",
            str(cores),
            "--disk",
            str(disk),
        ]
        procs.append(subprocess.Popen(cmd))

    def cleanup():
        for p in procs:
            if p.poll() is None:
                p.terminate()

    atexit.register(cleanup)
    deadline = time.time() + 30
    while time.time() < deadline:
        with manager._lock:
            if len(manager.workers) >= count:
                return procs
        time.sleep(0.05)
    raise TimeoutError("workers failed to register")
