"""Unit tests for the disk-backed memo store and its CLI."""

import json
import os

import pytest

from repro.memo.cli import main as memo_main
from repro.memo.store import MemoOutput, MemoStore
from repro.util.hashing import hash_bytes


def one_output(name="memo-md5-abc", size=11, md5=None):
    return MemoOutput(sandbox="out.txt", cache_name=name, size=size, md5=md5)


def test_record_and_reload(tmp_path):
    store = MemoStore(tmp_path / "memo")
    store.record("m1", "command", "echo hi > out.txt", "alice", [one_output()], now=1.0)
    store.touch("m1", now=2.0)

    again = MemoStore(tmp_path / "memo")
    assert len(again) == 1
    e = again.get("m1")
    assert e is not None
    assert e.kind == "command"
    assert e.tenant == "alice"
    assert e.hits == 1 and e.last_used == 2.0
    assert e.output_names() == ["memo-md5-abc"]


def test_record_overwrites_previous_binding(tmp_path):
    store = MemoStore(tmp_path / "memo")
    store.record("m1", "command", "c", "t", [one_output(size=1)], now=1.0)
    store.record("m1", "command", "c", "t", [one_output(size=99)], now=2.0)
    assert len(store) == 1
    assert store.get("m1").outputs[0].size == 99


def test_payload_roundtrip_and_verify(tmp_path):
    store = MemoStore(tmp_path / "memo")
    md5 = store.store_payload("memo-md5-abc", b"result bytes")
    assert md5 == hash_bytes(b"result bytes")
    assert store.has_payload("memo-md5-abc")
    assert store.verify_payload("memo-md5-abc", md5)
    # never trusted without a digest; never verified against the wrong one
    assert not store.verify_payload("memo-md5-abc", None)
    assert not store.verify_payload("memo-md5-abc", "0" * 32)
    # corruption is detected
    with open(store.payload_path("memo-md5-abc"), "wb") as f:
        f.write(b"tampered")
    assert not store.verify_payload("memo-md5-abc", md5)
    store.drop_payload("memo-md5-abc")
    assert not store.has_payload("memo-md5-abc")


def test_payload_path_rejects_traversal(tmp_path):
    store = MemoStore(tmp_path / "memo")
    for bad in ("../escape", "a/b", ".", ".."):
        with pytest.raises(ValueError):
            store.payload_path(bad)


def test_set_output_md5(tmp_path):
    store = MemoStore(tmp_path / "memo")
    store.record("m1", "command", "c", "t", [one_output()], now=1.0)
    store.set_output_md5("m1", "memo-md5-abc", "d" * 32)
    assert MemoStore(tmp_path / "memo").get("m1").outputs[0].md5 == "d" * 32


def test_remove_drops_unreferenced_payloads_only(tmp_path):
    store = MemoStore(tmp_path / "memo")
    store.store_payload("shared", b"s")
    store.store_payload("only-m1", b"x")
    store.record("m1", "command", "c", "t",
                 [one_output("shared"), one_output("only-m1")], now=1.0)
    store.record("m2", "command", "c2", "t", [one_output("shared")], now=1.0)
    assert store.remove("m1")
    assert not store.has_payload("only-m1")
    assert store.has_payload("shared")  # m2 still references it
    assert not store.remove("m1")  # already gone


def test_gc_by_age_and_count_and_orphans(tmp_path):
    store = MemoStore(tmp_path / "memo")
    for i, when in enumerate((10.0, 20.0, 30.0)):
        store.record(f"m{i}", "command", "c", "t",
                     [one_output(f"memo-md5-{i}")], now=when)
    store.store_payload("orphan", b"nobody references me")
    removed = store.gc(max_age=50.0, now=70.0)  # m0 (age 60) expires
    assert removed == ["m0"]
    assert not store.has_payload("orphan")  # orphans always collected
    removed = store.gc(max_entries=1, now=70.0)  # keep newest only
    assert removed == ["m1"]
    assert len(store) == 1 and "m2" in store


def test_torn_index_starts_fresh(tmp_path):
    root = tmp_path / "memo"
    store = MemoStore(root)
    store.record("m1", "command", "c", "t", [one_output()], now=1.0)
    with open(root / "index.json", "w") as f:
        f.write('{"v": 1, "entries": {truncated')
    assert len(MemoStore(root)) == 0


def test_unknown_schema_not_misread(tmp_path):
    root = tmp_path / "memo"
    MemoStore(root).record("m1", "command", "c", "t", [one_output()], now=1.0)
    with open(root / "index.json") as f:
        data = json.load(f)
    data["v"] = 999
    with open(root / "index.json", "w") as f:
        json.dump(data, f)
    assert len(MemoStore(root)) == 0


def test_stats(tmp_path):
    store = MemoStore(tmp_path / "memo")
    store.record("m1", "python", "@pytask", "alice",
                 [one_output(size=100)], now=1.0)
    store.store_payload("memo-md5-abc", b"x" * 7)
    store.touch("m1", now=2.0)
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["result_bytes"] == 100
    assert stats["hits"] == 1
    assert stats["payloads"] == 1 and stats["payload_bytes"] == 7
    assert stats["tenants"] == ["alice"]


# -- CLI --------------------------------------------------------------------


def seeded_store(tmp_path):
    store = MemoStore(tmp_path / "memo")
    store.record("m1", "command", "echo one", "alice", [one_output()], now=1.0)
    store.record("m2", "command", "echo two", "bob",
                 [one_output("memo-md5-def", size=5)], now=2.0)
    return str(tmp_path / "memo")


def test_cli_ls_and_stats_json(tmp_path, capsys):
    root = seeded_store(tmp_path)
    assert memo_main(["--dir", root, "--json", "ls"]) == 0
    entries = json.loads(capsys.readouterr().out)
    assert {e["merkle"] for e in entries} == {"m1", "m2"}
    assert memo_main(["--dir", root, "--json", "stats"]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 2


def test_cli_invalidate(tmp_path, capsys):
    root = seeded_store(tmp_path)
    assert memo_main(["--dir", root, "--json", "invalidate", "m1"]) == 0
    assert json.loads(capsys.readouterr().out)["removed"] == ["m1"]
    assert memo_main(["--dir", root, "--json", "invalidate", "m1"]) == 1
    assert memo_main(["--dir", root, "--json", "invalidate", "--all"]) == 0
    assert len(MemoStore(root)) == 0
    assert memo_main(["--dir", root, "invalidate"]) == 2  # merkle required


def test_cli_gc(tmp_path, capsys):
    root = seeded_store(tmp_path)
    assert memo_main(["--dir", root, "--json", "gc", "--max-entries", "1"]) == 0
    assert json.loads(capsys.readouterr().out)["removed"] == ["m1"]
    assert len(MemoStore(root)) == 1
