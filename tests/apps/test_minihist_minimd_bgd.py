"""Tests for the minihist, minimd, and bgd application substrates."""

import numpy as np
import pytest

from repro.apps.bgd import (
    best_of_restarts,
    make_classification,
    make_regression,
    run_bgd_linear,
    run_bgd_logistic,
)
from repro.apps.minihist import (
    HistogramSet,
    accumulate,
    from_bytes,
    generate_batch,
    preprocess,
    process,
    to_bytes,
)
from repro.apps.minihist.processor import Histogram
from repro.apps.minimd import (
    MLP,
    fingerprint,
    lj_energy,
    random_cluster,
    simulate,
    train,
)


# -- minihist ------------------------------------------------------------


def test_generate_batch_deterministic_and_typed():
    a = generate_batch("data", 1000, seed=4)
    b = generate_batch("data", 1000, seed=4)
    assert np.array_equal(a.pt, b.pt)
    assert not a.is_mc
    assert np.all(a.weight == 1.0)
    mc = generate_batch("ttbar", 1000, seed=4)
    assert mc.is_mc
    assert mc.weight.std() > 0


def test_batch_round_trip_bytes():
    batch = generate_batch("ttbar", 500, seed=1)
    again = from_bytes(to_bytes(batch))
    assert again.dataset == "ttbar"
    assert np.allclose(again.pt, batch.pt)
    assert np.allclose(again.weight, batch.weight)


def test_preprocess_metadata():
    batch = generate_batch("data", 200, seed=0)
    meta = preprocess(batch)
    assert meta["dataset"] == "data"
    assert meta["n_events"] == 200
    assert meta["sum_weights"] == pytest.approx(200.0)


def test_process_selection_and_weights():
    batch = generate_batch("ttbar", 5000, seed=2)
    out = process(batch, selection_pt=25.0)
    expected = int((batch.pt >= 25.0).sum())
    assert out.n_events == expected
    pt_hist = out.hists[("ttbar", "pt")]
    selected_weight = batch.weight[batch.pt >= 25.0]
    in_range = selected_weight[batch.pt[batch.pt >= 25.0] < 300.0]
    assert pt_hist.total == pytest.approx(float(in_range.sum()))


def test_accumulate_merges_and_grows():
    partials = [
        process(generate_batch(ds, 1000, seed=i))
        for i, ds in enumerate(["data", "ttbar", "wjets"])
    ]
    merged = accumulate(partials)
    # union of keys: growth with the number of distinct datasets
    assert len(merged.hists) == 3 * 4
    assert merged.n_events == sum(p.n_events for p in partials)
    assert len(to_bytes_size := merged.to_bytes()) > len(partials[0].to_bytes())


def test_accumulate_conserves_totals():
    parts = [process(generate_batch("data", 1000, seed=i)) for i in range(4)]
    merged = accumulate(parts)
    key = ("data", "eta")
    assert merged.hists[key].total == pytest.approx(
        sum(p.hists[key].total for p in parts)
    )


def test_accumulate_empty_and_serialization():
    assert accumulate([]).n_events == 0
    blob = accumulate([process(generate_batch("data", 10, seed=0))]).to_bytes()
    assert HistogramSet.from_bytes(blob).n_events >= 0
    with pytest.raises(Exception):
        HistogramSet.from_bytes(b"junk")


def test_histogram_binning_mismatch_rejected():
    a = Histogram.new(0, 1, 10)
    b = Histogram.new(0, 2, 10)
    with pytest.raises(ValueError):
        a + b


# -- minimd -----------------------------------------------------------------


def test_cluster_generation_safe_distances():
    pos = random_cluster(13, seed=5)
    assert pos.shape == (13, 3)
    delta = pos[:, None, :] - pos[None, :, :]
    dist = np.sqrt((delta**2).sum(-1)) + np.eye(13) * 10
    assert dist.min() > 0.5


def test_lj_energy_two_atoms_at_minimum():
    # LJ minimum at r = 2^(1/6) σ with energy −ε
    r = 2 ** (1 / 6)
    pos = np.array([[0.0, 0.0, 0.0], [r, 0.0, 0.0]])
    assert lj_energy(pos) == pytest.approx(-1.0, abs=1e-9)


def test_simulation_relaxes_energy():
    pos = random_cluster(8, seed=3)
    start = lj_energy(pos)
    result = simulate(pos, steps=400, dt=0.002, seed=3)
    assert result.potential_energy < start
    assert result.steps == 400
    assert np.isfinite(result.total_energy)


def test_simulation_deterministic():
    pos = random_cluster(6, seed=1)
    a = simulate(pos, steps=50, seed=2)
    b = simulate(pos, steps=50, seed=2)
    assert np.allclose(a.positions, b.positions)


def test_fingerprint_invariances():
    pos = random_cluster(10, seed=8)
    fp = fingerprint(pos)
    assert fp.shape == (16,)
    assert fp.sum() == pytest.approx(1.0)
    shifted = pos + np.array([5.0, -3.0, 2.0])
    assert np.allclose(fingerprint(shifted), fp)


def test_surrogate_learns_energies():
    x_rows, y_rows = [], []
    for i in range(40):
        pos = random_cluster(7, seed=i)
        result = simulate(pos, steps=100, seed=i)
        x_rows.append(fingerprint(result.positions))
        y_rows.append(result.potential_energy)
    x = np.array(x_rows)
    y = np.array(y_rows)
    y_norm = (y - y.mean()) / (y.std() + 1e-9)
    model = MLP(n_inputs=x.shape[1], hidden=24, seed=0)
    report = train(model, x, y_norm, epochs=300, lr=0.05)
    assert report.final_loss < report.losses[0]
    assert report.final_loss < 0.9  # meaningfully below unit variance


# -- bgd ----------------------------------------------------------------------


def test_bgd_linear_converges():
    x, y = make_regression(400, 8, noise=0.05, seed=0)
    result = run_bgd_linear(x, y, iterations=300, lr=0.05, seed=1)
    assert result.final_loss < 0.05
    assert result.losses[0] > result.final_loss


def test_bgd_logistic_converges():
    x, y = make_classification(400, 6, seed=0)
    result = run_bgd_logistic(x, y, iterations=300, lr=0.5, seed=1)
    preds = (x @ result.weights + result.bias) > 0
    accuracy = (preds == y.astype(bool)).mean()
    assert accuracy > 0.85


def test_bgd_different_seeds_different_trajectories():
    x, y = make_regression(100, 5, seed=0)
    a = run_bgd_linear(x, y, iterations=5, seed=1)
    b = run_bgd_linear(x, y, iterations=5, seed=2)
    assert a.losses[0] != b.losses[0]


def test_best_of_restarts():
    x, y = make_regression(200, 5, seed=0)
    results = [run_bgd_linear(x, y, iterations=50, seed=s) for s in range(5)]
    best = best_of_restarts(results)
    assert best.final_loss == min(r.final_loss for r in results)
    with pytest.raises(ValueError):
        best_of_restarts([])
