"""Tests for the gapped Smith-Waterman refinement stage."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.miniblast import build_db, generate_sequences, search
from repro.apps.miniblast.align import (
    GAP,
    MATCH,
    MISMATCH,
    refine_hit,
    smith_waterman,
)


def test_identical_sequences_align_perfectly():
    a = smith_waterman("ACGTACGT", "ACGTACGT")
    assert a.score == 8 * MATCH
    assert a.identity == 1.0
    assert a.gaps == 0
    assert a.query_aligned == "ACGTACGT"


def test_substring_found_within_longer_subject():
    a = smith_waterman("GGCC", "AAAAGGCCTTTT")
    assert a.score == 4 * MATCH
    assert a.subject_start == 4
    assert a.subject_end == 8


def test_single_mismatch_scoring():
    a = smith_waterman("ACGTACGT", "ACGAACGT")
    # either align through the mismatch or take the best exact block
    assert a.score == max(7 * MATCH + MISMATCH, 4 * MATCH)


def test_insertion_produces_gap():
    # query has one extra base relative to the subject
    query = "ACGTTTACGT"
    subject = "ACGTTACGT"
    a = smith_waterman(query, subject)
    assert a.gaps == 1
    assert a.score == 9 * MATCH + GAP
    assert "-" in a.subject_aligned


def test_empty_inputs():
    assert smith_waterman("", "ACGT").score == 0
    assert smith_waterman("ACGT", "").score == 0


def test_local_alignment_ignores_flanking_noise():
    core = "ACGTACGTACGT"
    a = smith_waterman("TTTT" + core + "AAAA", "GGGG" + core + "CCCC")
    assert a.score >= len(core) * MATCH
    assert core in a.query_aligned.replace("-", "")


def test_gapped_beats_ungapped_on_indel(tmp_path):
    """The refinement stage recovers alignments the X-drop cannot."""
    seqs = generate_sequences(5, 300, seed=3)
    db = build_db(seqs, k=11)
    subject_name = "seq00002"
    original = seqs[subject_name][50:200]
    # delete 3 bases mid-fragment: an indel, fatal for ungapped extension
    query = original[:70] + original[73:]
    hits = search(db, query, max_hits=3)
    assert hits, "seeding should still find the flanks"
    top = hits[0]
    refined = refine_hit(query, seqs[subject_name], top)
    assert refined.score > top.score
    assert refined.gaps >= 3
    assert refined.identity > 0.95


def test_refine_hit_coordinates_subject_absolute():
    subject = "T" * 100 + "ACGTACGTACGTACGT" + "T" * 100
    query = "ACGTACGTACGTACGT"

    class FakeHit:
        subject_start = 100
        subject_end = 116

    refined = refine_hit(query, subject, FakeHit())
    assert refined.subject_start == 100
    assert refined.subject_end == 116
    assert refined.score == len(query) * MATCH


dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


@settings(max_examples=60, deadline=None)
@given(dna, dna)
def test_property_score_nonnegative_and_symmetricish(a, b):
    x = smith_waterman(a, b)
    y = smith_waterman(b, a)
    assert x.score >= 0
    assert x.score == y.score  # local alignment score is symmetric


@settings(max_examples=60, deadline=None)
@given(dna)
def test_property_self_alignment_is_maximal(seq):
    a = smith_waterman(seq, seq)
    assert a.score == len(seq) * MATCH
    assert a.identity == 1.0


@settings(max_examples=40, deadline=None)
@given(dna, dna)
def test_property_aligned_strings_equal_length(a, b):
    x = smith_waterman(a, b)
    assert len(x.query_aligned) == len(x.subject_aligned)
    # stripping gaps recovers substrings of the originals
    assert x.query_aligned.replace("-", "") in a
    assert x.subject_aligned.replace("-", "") in b
