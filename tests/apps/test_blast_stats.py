"""Tests for Karlin-Altschul bit scores and E-values."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.miniblast import build_db, generate_sequences, search
from repro.apps.miniblast.search import MATCH_SCORE, MISMATCH_SCORE
from repro.apps.miniblast.stats import (
    KarlinAltschul,
    compute_lambda,
    evaluate_hits,
)


def test_lambda_satisfies_normalization():
    lam = compute_lambda(MATCH_SCORE, MISMATCH_SCORE)
    total = 0.25 * math.exp(lam * MATCH_SCORE) + 0.75 * math.exp(lam * MISMATCH_SCORE)
    assert total == pytest.approx(1.0, abs=1e-9)
    assert lam > 0


def test_lambda_rejects_positive_expected_score():
    with pytest.raises(ValueError):
        compute_lambda(match=2, mismatch=0)  # expected score > 0


def test_bit_score_monotone_in_raw_score():
    params = KarlinAltschul.for_scores()
    bits = [params.bit_score(s) for s in (10, 50, 100, 200)]
    assert bits == sorted(bits)


def test_e_value_scales_with_database_size():
    params = KarlinAltschul.for_scores()
    small = params.e_value(100, query_len=100, db_len=10_000)
    large = params.e_value(100, query_len=100, db_len=10_000_000)
    assert large == pytest.approx(small * 1000)


def test_long_exact_match_is_significant():
    seqs = generate_sequences(10, 500, seed=2)
    db = build_db(seqs, k=11)
    query = seqs["seq00004"][100:220]
    hits = search(db, query)
    scored = evaluate_hits(hits, len(query), db)
    assert scored
    top = scored[0]
    assert top.hit.subject == "seq00004"
    assert top.significant
    assert top.e_value < 1e-20  # a 120-base exact match is unambiguous


def test_marginal_hits_filtered_by_max_e():
    seqs = generate_sequences(10, 500, seed=3)
    db = build_db(seqs, k=11)
    # a foreign query produces only chance seed hits with low scores
    foreign = generate_sequences(1, 200, seed=777)["seq00000"]
    hits = search(db, foreign, max_hits=50)
    strict = evaluate_hits(hits, len(foreign), db, max_e=1e-6)
    loose = evaluate_hits(hits, len(foreign), db, max_e=1e6)
    assert len(strict) <= len(loose)
    assert all(s.e_value <= 1e-6 for s in strict)


def test_sorted_most_significant_first():
    seqs = generate_sequences(10, 400, seed=4)
    db = build_db(seqs, k=11)
    query = seqs["seq00001"][50:200]
    scored = evaluate_hits(search(db, query, max_hits=20), len(query), db, max_e=1e9)
    evalues = [s.e_value for s in scored]
    assert evalues == sorted(evalues)


@settings(max_examples=30, deadline=None)
@given(st.integers(20, 400), st.integers(1000, 10**7))
def test_property_evalue_positive_and_decreasing_in_score(qlen, dblen):
    params = KarlinAltschul.for_scores()
    e_low = params.e_value(30, qlen, dblen)
    e_high = params.e_value(120, qlen, dblen)
    assert e_low > e_high > 0
