"""Tests for the EFT-style weight variations (minihist)."""

import numpy as np
import pytest

from repro.apps.minihist import accumulate, generate_batch
from repro.apps.minihist.variations import (
    WeightSurface,
    coupling_scan,
    process_with_variations,
)


@pytest.fixture(scope="module")
def batch():
    return generate_batch("ttbar", 2000, seed=5)


@pytest.fixture(scope="module")
def surface(batch):
    return WeightSurface.for_batch(batch, n_couplings=4, seed=1)


def test_sm_point_recovers_base_weights(batch, surface):
    sm = surface.weights_at(np.zeros(4))
    assert np.allclose(sm, batch.weight)


def test_weights_vary_with_couplings(batch, surface):
    shifted = surface.weights_at(np.array([1.0, 0, 0, 0]))
    assert not np.allclose(shifted, batch.weight)
    assert np.all(shifted >= 0.0)  # clipped physical weights


def test_weights_shape_validated(surface):
    with pytest.raises(ValueError):
        surface.weights_at(np.zeros(3))


def test_coupling_scan_structure():
    scan = coupling_scan(n_couplings=4, points_per_axis=3)
    # 1 SM point + 4 axes x 2 magnitudes x 2 signs
    assert len(scan) == 1 + 4 * 2 * 2
    assert np.allclose(scan[0], 0.0)
    for p in scan[1:]:
        assert np.count_nonzero(p) == 1  # one axis at a time


def test_process_with_variations_key_growth(batch, surface):
    scan = coupling_scan(4, points_per_axis=2)
    out = process_with_variations(batch, surface, scan)
    # 4 variables per variation point
    assert len(out.hists) == len(scan) * 4
    # output size grows ~linearly with the number of variations
    small = process_with_variations(batch, surface, scan[:3])
    assert len(out.to_bytes()) > 2 * len(small.to_bytes()) * 0.8


def test_variation_totals_differ_from_sm(batch, surface):
    scan = [np.zeros(4), np.array([2.0, 0, 0, 0])]
    out = process_with_variations(batch, surface, scan)
    sm_total = out.hists[(f"{batch.dataset}/v0", "pt")].total
    shifted_total = out.hists[(f"{batch.dataset}/v1", "pt")].total
    assert sm_total != pytest.approx(shifted_total)


def test_variation_sets_accumulate(batch, surface):
    scan = coupling_scan(4, points_per_axis=2)
    parts = [
        process_with_variations(generate_batch("ttbar", 500, seed=i),
                                WeightSurface.for_batch(generate_batch("ttbar", 500, seed=i), seed=i),
                                scan)
        for i in range(3)
    ]
    merged = accumulate(parts)
    assert merged.n_events == sum(p.n_events for p in parts)
    key = ("ttbar/v0", "pt")
    assert merged.hists[key].total == pytest.approx(
        sum(p.hists[key].total for p in parts)
    )
