"""Tests for the BLAST-like search substrate."""

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.miniblast import (
    build_db,
    generate_sequences,
    load_db,
    mutate,
    save_db,
    search,
)
from repro.apps.miniblast.search import MATCH_SCORE, format_hits


@pytest.fixture(scope="module")
def db():
    seqs = generate_sequences(20, 400, seed=7)
    return build_db(seqs, k=11)


def test_generate_deterministic():
    a = generate_sequences(3, 50, seed=1)
    b = generate_sequences(3, 50, seed=1)
    c = generate_sequences(3, 50, seed=2)
    assert a == b != c
    assert all(set(s) <= set("ACGT") for s in a.values())


def test_exact_substring_found(db):
    subject = "seq00003"
    fragment = db.sequences[subject][100:180]
    hits = search(db, fragment)
    assert hits
    top = hits[0]
    assert top.subject == subject
    assert top.score == len(fragment) * MATCH_SCORE
    assert top.subject_start <= 100 and top.subject_end >= 180


def test_mutated_query_still_finds_source(db):
    subject = "seq00010"
    fragment = mutate(db.sequences[subject][50:200], rate=0.05, seed=3)
    hits = search(db, fragment)
    assert hits
    assert hits[0].subject == subject


def test_unrelated_query_scores_low(db):
    foreign = generate_sequences(1, 150, seed=999)["seq00000"]
    hits = search(db, foreign, min_score=100)
    # chance 11-mer collisions are possible but long high-scoring
    # alignments to random foreign sequence are not
    assert all(h.score < 150 * MATCH_SCORE // 2 for h in hits)


def test_query_shorter_than_k_empty(db):
    assert search(db, "ACGT") == []


def test_hits_sorted_and_bounded(db):
    fragment = db.sequences["seq00001"][0:300]
    hits = search(db, fragment, max_hits=3)
    assert len(hits) <= 3
    scores = [h.score for h in hits]
    assert scores == sorted(scores, reverse=True)


def test_min_score_filters(db):
    fragment = db.sequences["seq00002"][10:60]
    all_hits = search(db, fragment, max_hits=100)
    strong = search(db, fragment, max_hits=100, min_score=90)
    assert {h.score for h in strong} <= {h.score for h in all_hits}
    assert all(h.score >= 90 for h in strong)


def test_db_round_trip(tmp_path, db):
    directory = tmp_path / "landmark"
    save_db(db, str(directory))
    loaded = load_db(str(directory))
    assert loaded.k == db.k
    assert loaded.sequences == db.sequences
    fragment = db.sequences["seq00005"][30:120]
    assert search(loaded, fragment)[0].subject == "seq00005"


def test_format_hits_tabular(db):
    fragment = db.sequences["seq00000"][0:60]
    text = format_hits("q1", search(db, fragment, max_hits=2))
    lines = text.strip().splitlines()
    assert lines
    assert all(line.split("\t")[0] == "q1" for line in lines)
    assert format_hits("q", []) == ""


def test_cli_end_to_end(tmp_path, db):
    directory = tmp_path / "db"
    save_db(db, str(directory))
    query_file = tmp_path / "queries.txt"
    query_file.write_text(
        f"good {db.sequences['seq00004'][40:140]}\n"
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.apps.miniblast.cli",
            "--db", str(directory), "--query", str(query_file),
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "seq00004" in proc.stdout


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=19), st.integers(min_value=0, max_value=200))
def test_property_any_long_fragment_is_its_own_best_hit(db, idx, start):
    name = f"seq{idx:05d}"
    fragment = db.sequences[name][start : start + 80]
    if len(fragment) < 80:
        return
    hits = search(db, fragment)
    assert hits and hits[0].subject == name
    assert hits[0].score == 80 * MATCH_SCORE


def test_cli_evalue_report(tmp_path, db):
    from repro.apps.miniblast import save_db

    directory = tmp_path / "db-e"
    save_db(db, str(directory))
    query_file = tmp_path / "q.txt"
    query_file.write_text(f"q {db.sequences['seq00006'][20:140]}\n")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.apps.miniblast.cli",
            "--db", str(directory), "--query", str(query_file), "--evalues",
        ],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    top = proc.stdout.splitlines()[0].split("\t")
    assert top[1] == "seq00006"
    assert float(top[4]) < 1e-10  # E-value column
