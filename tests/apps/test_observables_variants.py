"""Tests for minimd observables and bgd optimizer variants."""

import numpy as np
import pytest

from repro.apps.bgd import make_regression
from repro.apps.bgd.variants import (
    compare_optimizers,
    run_momentum,
    run_nesterov,
    run_sgd,
)
from repro.apps.minimd import random_cluster, simulate
from repro.apps.minimd.observables import (
    analyze,
    coordination_numbers,
    radius_of_gyration,
    rdf,
)


# -- observables ----------------------------------------------------------


def test_rdf_shape_and_peak_for_lattice_pair():
    # two atoms at distance 1: all pair mass lands in one bin
    pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    centers, g = rdf(pos, nbins=25, r_max=5.0)
    assert centers.shape == g.shape == (25,)
    assert centers[np.argmax(g)] == pytest.approx(1.0, abs=0.2)


def test_coordination_counts_neighbours():
    pos = np.array(
        [[0, 0, 0], [1, 0, 0], [0, 1, 0], [10, 10, 10]], dtype=float
    )
    coord = coordination_numbers(pos, cutoff=1.5)
    assert list(coord) == [2, 2, 2, 0]


def test_radius_of_gyration_scales():
    pos = random_cluster(10, seed=2)
    rg1 = radius_of_gyration(pos)
    rg2 = radius_of_gyration(pos * 2.0)
    assert rg2 == pytest.approx(2.0 * rg1)
    # translation invariant
    assert radius_of_gyration(pos + 7.0) == pytest.approx(rg1)


def test_relaxation_increases_coordination():
    pos = random_cluster(12, seed=4, spread=2.5)
    before = analyze(pos)
    result = simulate(pos, steps=600, dt=0.002, seed=4)
    after = analyze(result.positions)
    assert after.mean_coordination >= before.mean_coordination
    assert after.n_atoms == 12
    assert after.first_shell_peak > 0


def test_report_compactness_heuristic():
    # a dense icosahedron-ish relaxed cluster should look compact
    result = simulate(random_cluster(13, seed=0), steps=800, seed=0)
    report = analyze(result.positions)
    assert report.max_coordination >= report.mean_coordination
    assert isinstance(report.is_compact(threshold=2.0), bool)


# -- optimizer variants ---------------------------------------------------


@pytest.fixture(scope="module")
def dataset():
    return make_regression(300, 8, noise=0.05, seed=1)


def test_sgd_converges(dataset):
    x, y = dataset
    result = run_sgd(x, y, iterations=400, lr=0.05, seed=0)
    assert result.final_loss < 0.1
    assert result.losses[0] > result.final_loss


def test_momentum_beats_plain_bgd_early(dataset):
    x, y = dataset
    from repro.apps.bgd import run_bgd_linear

    plain = run_bgd_linear(x, y, iterations=60, lr=0.01, seed=0)
    mom = run_momentum(x, y, iterations=60, lr=0.01, seed=0)
    assert mom.final_loss < plain.final_loss


def test_nesterov_converges(dataset):
    x, y = dataset
    result = run_nesterov(x, y, iterations=200, lr=0.01, seed=0)
    assert result.final_loss < 0.1


def test_compare_optimizers_runs_all(dataset):
    x, y = dataset
    results = compare_optimizers(x, y, iterations=100, seed=0)
    assert set(results) == {"bgd", "sgd", "momentum", "nesterov"}
    assert all(np.isfinite(r.final_loss) for r in results.values())
    assert all(len(r.losses) == 100 for r in results.values())
