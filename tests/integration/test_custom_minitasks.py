"""Reproduction of paper Fig. 6: user-defined mini tasks.

A MiniTask "adds support for XRootD data transfers with user provided
credentials": the transfer command, the credential input, and an
environment variable are packaged as a task whose product is a normal
cached file.  We reproduce the exact structure with a stand-in fetch
command: the credential is a ``task``-lifetime file (never cached
long-term), the fetched data is cached and shared like any other file.
"""

from repro.core.files import CacheLevel
from repro.core.task import MiniTask, Task, TaskState


def declare_fetch_with_credential(manager, source_file, proxy_file):
    """The Fig. 6 pattern: a custom transfer method as a mini task."""
    mini = MiniTask(
        # refuse to run without the credential, then "transfer" the data
        '[ "$X509_USER_PROXY" = "proxy509.pem" ] && '
        "[ -s proxy509.pem ] && cp remote-data output"
    )
    mini.add_input(source_file, "remote-data")
    mini.add_input(proxy_file, "proxy509.pem")
    mini.set_env("X509_USER_PROXY", "proxy509.pem")
    mini.set_output_name("output")
    return manager.declare_minitask(mini)


def test_fig6_custom_transfer_minitask(cluster, tmp_path):
    m = cluster.manager
    payload = tmp_path / "dataset.bin"
    payload.write_bytes(b"physics-events" * 1000)
    source = m.declare_url(f"file://{payload}")
    proxy = m.declare_buffer(b"-----BEGIN CREDENTIAL-----", cache=CacheLevel.TASK)
    fetched = declare_fetch_with_credential(m, source, proxy)

    tasks = []
    for i in range(4):
        t = Task("wc -c < events")
        t.add_input(fetched, "events")
        tasks.append(t)
        m.submit(t)
    m.run_until_done(timeout=120)
    assert all(t.state == TaskState.DONE for t in tasks)
    expected = str(len(b"physics-events" * 1000))
    assert all(expected in t.result.output for t in tasks)
    # the custom transfer ran at most once per worker; its product is a
    # first-class cached file shared by all four tasks
    stages = m.log.events("stage_start")
    assert 1 <= len(stages) <= 2
    assert fetched.cache_name.startswith("task-md5-")


def test_fig6_minitask_fails_without_credential(cluster, tmp_path):
    """The guarded command refuses to produce output without the proxy."""
    m = cluster.manager
    payload = tmp_path / "d.bin"
    payload.write_bytes(b"x")
    source = m.declare_url(f"file://{payload}")
    mini = MiniTask(
        '[ "$X509_USER_PROXY" = "proxy509.pem" ] && cp remote-data output'
    )
    mini.add_input(source, "remote-data")
    # no credential input and no env var: the stage must fail, and the
    # task depending on it fails once transfer retries are exhausted
    mini.set_output_name("output")
    broken = m.declare_minitask(mini)
    t = Task("cat events").add_input(broken, "events")
    m.submit(t)
    m.run_until_done(timeout=120)
    assert t.state == TaskState.FAILED
    assert "unavailable" in (t.result.failure or "")
