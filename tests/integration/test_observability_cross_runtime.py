"""Both runtimes stream the same transaction-log schema for one DAG.

The shared control plane emits every lifecycle event, and each runtime
attaches the same :class:`TransactionLogWriter` sink — so running the
same workflow on real worker processes and on the simulator must leave
behind two files with the identical header schema and the identical
*structure* of task and transfer records, differing only in wall-clock
timestamps and runtime-assigned identifiers.
"""

from repro.core.control_plane import source_kind
from repro.core.task import Task, TaskState
from repro.observe.txnlog import (
    TXN_SCHEMA_VERSION,
    load_event_log,
    read_transactions,
)
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager
from tests.integration.conftest import Cluster

N_TASKS = 6


def _structure(events):
    """The runtime-independent shape of a transaction log.

    Task ids are process-global counters and worker ids are
    connection-order names, so both are normalized by order of first
    appearance before comparing across runtimes.  ``@retrieve``
    bring-backs are runtime bookkeeping (the simulator models manager
    retrieval, the real runtime streams results in-band) and excluded.
    """
    task_alias: dict[str, str] = {}
    per_task: dict[str, list[str]] = {}
    transfer_kinds: dict[str, int] = {}
    cached = 0
    for e in events:
        if e.task is not None:
            alias = task_alias.setdefault(e.task, f"t{len(task_alias)}")
            per_task.setdefault(alias, []).append(e.kind)
        if e.kind == "transfer_end" and e.category != "@retrieve":
            kind = source_kind(e.category)
            transfer_kinds[kind] = transfer_kinds.get(kind, 0) + 1
        if e.kind == "file_cached":
            cached += 1
    # recovery kinds record environment-dependent transient hiccups in
    # the real runtime (a slow fetch retried, say) and are not part of
    # the DAG's deterministic shape
    recovery = {
        "file_deleted", "transfer_failed", "task_requeued",
        "file_regenerated", "worker_blocklist", "fault_injected",
    }
    return {
        "kinds_present": sorted({e.kind for e in events} - recovery),
        "per_task": per_task,
        "transfer_kinds": transfer_kinds,
        "files_cached": cached,
        "workers_joined": len({e.worker for e in events
                               if e.kind == "worker_join"}),
    }


def _submit_dag(m, shared, submit):
    """N fan-out tasks over one shared input; returns the tasks."""
    tasks = []
    for i in range(N_TASKS):
        t = Task(f"cat data > /dev/null && echo {i}")
        t.add_input(shared, "data")
        tasks.append(t)
        submit(t)
    return tasks


def _real_txn_log(tmp_path):
    path = str(tmp_path / "real_txn.jsonl")
    c = Cluster(tmp_path, n_workers=2, txn_log_path=path)
    try:
        m = c.manager
        shared = m.declare_buffer(b"shared-dataset" * 100)
        tasks = _submit_dag(m, shared, m.submit)
        m.run_until_done(timeout=120)
        assert all(t.state == TaskState.DONE for t in tasks)
    finally:
        c.stop()  # closes the manager, flushing workflow_done
    return path


def _sim_txn_log(tmp_path):
    path = str(tmp_path / "sim_txn.jsonl")
    cluster = SimCluster()
    cluster.add_workers(2, cores=4)
    m = SimManager(cluster, txn_log_path=path)
    shared = m.declare_dataset("shared-dataset", 1400)
    tasks = _submit_dag(m, shared, lambda t: m.submit(t, duration=0.5))
    m.run()  # finalize=True closes the writer after workflow_done
    assert all(t.state == TaskState.DONE for t in tasks)
    return path


def test_real_and_sim_emit_schema_identical_transaction_logs(tmp_path):
    real_path = _real_txn_log(tmp_path)
    sim_path = _sim_txn_log(tmp_path)

    real_header, real_events = read_transactions(real_path, strict=True)
    sim_header, sim_events = read_transactions(sim_path, strict=True)

    # identical schema, distinct runtime tags
    assert real_header["v"] == sim_header["v"] == TXN_SCHEMA_VERSION
    assert real_header["fields"] == sim_header["fields"]
    assert real_header["runtime"] == "real"
    assert sim_header["runtime"] == "sim"

    # identical movement/lifecycle structure after id normalization
    real_shape = _structure(real_events)
    sim_shape = _structure(sim_events)
    assert real_shape == sim_shape

    # the shape is the one this DAG demands: every task ran start->end,
    # and the shared input reached each of the two workers exactly once
    assert real_shape["per_task"] == {
        f"t{i}": ["task_start", "task_end"] for i in range(N_TASKS)
    }
    assert real_shape["transfer_kinds"] == {"manager": 2}
    assert real_shape["workers_joined"] == 2
    assert real_events[-1].kind == sim_events[-1].kind == "workflow_done"


def test_transaction_log_replays_into_event_analyses(tmp_path):
    """A log loaded from disk feeds the same analyses as the live log."""
    from repro.core.events import completion_series, makespan, task_rows

    path = _sim_txn_log(tmp_path)
    log = load_event_log(path)
    rows = task_rows(log)
    assert len(rows) == N_TASKS
    assert makespan(log) > 0
    series = completion_series(log, points=4)
    assert series[-1][1] == N_TASKS


def test_both_runtimes_populate_the_same_core_metrics(tmp_path):
    """The ControlPlane instruments fire identically under both ports."""
    # sim side
    cluster = SimCluster()
    cluster.add_workers(2, cores=4)
    sm = SimManager(cluster)
    shared = sm.declare_dataset("shared-dataset", 1400)
    _submit_dag(sm, shared, lambda t: sm.submit(t, duration=0.5))
    sm.run(finalize=False)
    sim_snap = sm.metrics.snapshot()

    # real side
    c = Cluster(tmp_path, n_workers=2)
    try:
        m = c.manager
        buf = m.declare_buffer(b"shared-dataset" * 100)
        tasks = _submit_dag(m, buf, m.submit)
        m.run_until_done(timeout=120)
        assert all(t.state == TaskState.DONE for t in tasks)
        real_snap = m.metrics.snapshot()
    finally:
        c.stop()

    for snap in (real_snap, sim_snap):
        assert snap["pump.latency_seconds"]["count"] > 0
        # hit/miss is judged per input at dispatch time, so the two
        # must account for every placement; at least the two first
        # placements (one per empty worker) cannot be local hits
        hits = snap["cache.hits"]["value"]
        misses = snap["cache.misses"]["value"]
        assert hits + misses == N_TASKS
        assert misses >= 2
        assert snap["transfers.in_flight"]["max"] >= 1
        assert snap["transfers.in_flight"]["value"] == 0
