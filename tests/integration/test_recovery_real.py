"""Crash-safe manager, real runtime: journal replay, worker rejoin,
client reattach.

A manager with a journal dies abruptly (``Manager.crash()`` — the
in-process analogue of ``kill -9``: no GC, no SHUTDOWN, no farewell);
a second life over the same journal directory and port restores the
control plane, the workers' reconnect loops re-register with their
cached inventory, and work resumes without re-executing anything whose
outputs survived on worker disks.
"""

import pytest

from repro.core.manager import Manager
from repro.core.task import Task, TaskState
from repro.observe.txnlog import read_transactions
from repro.service.client import ClientError, ServiceClient

from tests.integration.conftest import Cluster, EventWaiter


def _journaled_cluster(tmp_path, n_workers=2):
    return Cluster(
        tmp_path,
        n_workers=n_workers,
        # workers outlive the manager: retry for up to a minute
        reconnect=60.0,
        journal_dir=str(tmp_path / "journal"),
        txn_log_path=str(tmp_path / "txn.jsonl"),
        recovery_grace=30.0,
    )


def _restart(cluster, tmp_path, port):
    """Second manager life over the same journal dir and port."""
    mgr2 = Manager(
        port=port,
        journal_dir=str(tmp_path / "journal"),
        txn_log_path=str(tmp_path / "txn.jsonl"),
        recovery_grace=30.0,
    )
    # the cluster teardown must close the live life, not the dead one
    cluster.manager = mgr2
    cluster.events = EventWaiter(mgr2)
    return mgr2


def test_crash_restart_resumes_without_reexecution(tmp_path):
    c = _journaled_cluster(tmp_path, n_workers=2)
    try:
        mgr = c.manager
        fin = mgr.declare_buffer(b"seed\n")
        t1 = Task("cat in.txt > a.txt")
        t1.add_input(fin, "in.txt")
        a = mgr.declare_temp()
        t1.add_output(a, "a.txt")
        mgr.submit(t1)
        done = mgr.run_until_done(timeout=60)
        assert [t.state for t in done] == [TaskState.DONE]
        a_name = a.cache_name
        port = mgr.port

        mgr.crash()

        mgr2 = _restart(c, tmp_path, port)
        assert mgr2.recovered
        c.events.wait_event("recovery_complete", timeout=60)

        # both workers reconnect and re-announce their caches (recovery
        # only waits for workers the journal expects — the replica
        # holder — so the other may rejoin moments later); the completed
        # task's output was re-adopted, not regenerated
        c.events.wait_for(
            lambda: len(list(mgr2.log.events("worker_rejoined"))) == 2,
            timeout=60,
            describe="both workers rejoined",
        )
        assert any(e.file == a_name for e in mgr2.log.events("replica_readopted"))
        assert not any(e.task == t1.task_id for e in mgr2.log.events("task_start"))

        # downstream work in the new life consumes the surviving output
        fa = mgr2.registry.by_name(a_name)
        t2 = Task("cat a.txt a.txt > b.txt")
        t2.add_input(fa, "a.txt")
        b = mgr2.declare_temp()
        t2.add_output(b, "b.txt")
        mgr2.submit(t2)
        done2 = mgr2.run_until_done(timeout=60)
        assert all(t.state == TaskState.DONE for t in done2)
        assert mgr2.fetch_bytes(b, timeout=60) == b"seed\nseed\n"

        # the transaction log shows both lives and exactly one
        # execution of the task whose output survived the crash
        header, events = read_transactions(str(tmp_path / "txn.jsonl"))
        assert header["segments"] == 2
        starts = [e for e in events if e.kind == "task_start" and e.task == t1.task_id]
        assert len(starts) == 1
        assert any(e.kind == "manager_restart" for e in events)
    finally:
        c.stop()


def test_pending_work_is_restored_and_finished_by_the_next_life(tmp_path):
    c = _journaled_cluster(tmp_path, n_workers=1)
    try:
        mgr = c.manager
        fin = mgr.declare_buffer(b"x\n")
        t1 = Task("sleep 5 && cat in.txt > a.txt")
        t1.add_input(fin, "in.txt")
        a = mgr.declare_temp()
        t1.add_output(a, "a.txt")
        mgr.submit(t1)
        # crash while the task is still in flight: nothing of it survives
        c.events.wait_event("task_start", timeout=60)
        port = mgr.port
        mgr.crash()

        mgr2 = _restart(c, tmp_path, port)
        assert mgr2.recovered
        c.events.wait_event("recovery_complete", timeout=60)
        # the journaled submit is pending again — the restored task is
        # a fresh stub re-dispatched from its recorded spec
        restored = mgr2.tasks[t1.task_id]
        assert restored.command.endswith("cat in.txt > a.txt")
        done = mgr2.run_until_done(timeout=120)
        assert restored.state == TaskState.DONE
        assert mgr2.fetch_bytes(restored.outputs[0][1], timeout=60) == b"x\n"
        assert restored in done
    finally:
        c.stop()


def test_client_reattach_after_manager_restart(tmp_path):
    c = _journaled_cluster(tmp_path, n_workers=1)
    try:
        mgr = c.manager
        client = ServiceClient(mgr.host, mgr.port, "roam")
        token = client.session
        declared = client.declare_buffer(b"hello")
        accepted = client.submit(
            "cat in.txt > out.txt",
            inputs=[("in.txt", declared["cache_name"])],
            outputs=["out.txt"],
        )
        result = client.wait(accepted["task_id"], timeout=60)
        assert result["exit_code"] == 0
        port = mgr.port

        mgr.crash()  # takes the client's socket down with it
        client.close()

        mgr2 = _restart(c, tmp_path, port)
        c.events.wait_event("recovery_complete", timeout=60)
        assert any(
            e.category == "roam" for e in mgr2.log.events("session_restored")
        )

        # the pre-crash token reattaches; the welcome owns up to the
        # completion notice that died with the previous life
        again = ServiceClient(mgr2.host, port, "roam", session=token)
        try:
            assert again.session == token
            assert again.recovered is True
            assert again.missed >= 1
            # the session is fully live: pre-crash output is fetchable
            # (served by the rejoined worker) and new work runs
            out_name = accepted["outputs"]["out.txt"]
            assert again.fetch(out_name, timeout=60) == b"hello"
            fresh = again.submit("echo again > out.txt", outputs=["out.txt"])
            assert again.wait(fresh["task_id"], timeout=60)["exit_code"] == 0
        finally:
            again.close()

        # forged tokens are still refused after a restart
        with pytest.raises(ClientError, match="session"):
            ServiceClient(mgr2.host, port, "intruder", session="bogus-token")
    finally:
        c.stop()
